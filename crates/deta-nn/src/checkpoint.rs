//! Model checkpointing: serialize flat parameters to a small binary
//! format with integrity checking.
//!
//! FL sessions run for many rounds; operators snapshot the global model
//! between rounds and restore it after restarts. The format is
//! deliberately simple: a magic header, version, parameter count, the
//! little-endian f32 payload, and a SHA-256 trailer over everything
//! before it.

use crate::Sequential;
use deta_crypto::sha256::sha256;

const MAGIC: &[u8; 8] = b"DETACKPT";
const VERSION: u32 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic or truncated header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(u32),
    /// Payload length inconsistent with the declared count.
    BadLength,
    /// The integrity digest does not match.
    BadDigest,
    /// The parameter count does not match the target model.
    ModelMismatch {
        /// Parameters in the checkpoint.
        checkpoint: usize,
        /// Parameters in the model.
        model: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "bad checkpoint header"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadLength => write!(f, "checkpoint length mismatch"),
            CheckpointError::BadDigest => write!(f, "checkpoint integrity check failed"),
            CheckpointError::ModelMismatch { checkpoint, model } => {
                write!(f, "checkpoint has {checkpoint} params, model has {model}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Encodes flat parameters into checkpoint bytes.
pub fn encode(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 8 + params.len() * 4 + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    let digest = sha256(&out);
    out.extend_from_slice(&digest);
    out
}

/// Decodes checkpoint bytes back into flat parameters.
///
/// # Errors
///
/// Returns a [`CheckpointError`] for malformed, truncated, or corrupted
/// input.
pub fn decode(bytes: &[u8]) -> Result<Vec<f32>, CheckpointError> {
    if bytes.len() < 8 + 4 + 8 + 32 || &bytes[..8] != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let payload_end = 20usize
        .checked_add(count.checked_mul(4).ok_or(CheckpointError::BadLength)?)
        .ok_or(CheckpointError::BadLength)?;
    if bytes.len() != payload_end + 32 {
        return Err(CheckpointError::BadLength);
    }
    let digest = sha256(&bytes[..payload_end]);
    if digest != bytes[payload_end..] {
        return Err(CheckpointError::BadDigest);
    }
    let params = bytes[20..payload_end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(params)
}

/// Saves a model's trainable parameters to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(model: &Sequential, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(&model.flat_params()))
}

/// Restores a model's trainable parameters from a file.
///
/// # Errors
///
/// Returns I/O errors or [`CheckpointError`] (boxed) on format problems.
pub fn load(
    model: &mut Sequential,
    path: &std::path::Path,
) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    let params = decode(&bytes)?;
    if params.len() != model.param_count() {
        return Err(Box::new(CheckpointError::ModelMismatch {
            checkpoint: params.len(),
            model: model.param_count(),
        }));
    }
    model.set_flat_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use deta_crypto::DetRng;

    #[test]
    fn encode_decode_roundtrip() {
        let params: Vec<f32> = (0..257).map(|i| (i as f32).sin()).collect();
        assert_eq!(decode(&encode(&params)).unwrap(), params);
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut bytes = encode(&[1.0, 2.0, 3.0]);
        bytes[25] ^= 1;
        assert_eq!(decode(&bytes), Err(CheckpointError::BadDigest));
    }

    #[test]
    fn corrupted_digest_rejected() {
        let mut bytes = encode(&[1.0, 2.0, 3.0]);
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert_eq!(decode(&bytes), Err(CheckpointError::BadDigest));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&[1.0, 2.0, 3.0]);
        for cut in [0usize, 7, 19, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut bytes = encode(&[1.0]);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CheckpointError::BadHeader));
        let mut bytes = encode(&[1.0]);
        bytes[8] = 9;
        // Digest no longer matches either, but version is checked first.
        assert_eq!(decode(&bytes), Err(CheckpointError::BadVersion(9)));
    }

    #[test]
    fn save_load_model_roundtrip() {
        let dir = std::env::temp_dir().join("deta-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut rng = DetRng::from_u64(1);
        let model = mlp(&[4, 8, 2], &mut rng);
        let original = model.flat_params();
        save(&model, &path).unwrap();
        let mut other = mlp(&[4, 8, 2], &mut DetRng::from_u64(2));
        assert_ne!(other.flat_params(), original);
        load(&mut other, &path).unwrap();
        assert_eq!(other.flat_params(), original);
    }

    #[test]
    fn load_into_wrong_model_rejected() {
        let dir = std::env::temp_dir().join("deta-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        let mut rng = DetRng::from_u64(1);
        let model = mlp(&[4, 8, 2], &mut rng);
        save(&model, &path).unwrap();
        let mut other = mlp(&[4, 9, 2], &mut rng);
        assert!(load(&mut other, &path).is_err());
    }
}
