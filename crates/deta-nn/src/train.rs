//! Local training and evaluation loops.
//!
//! These functions are the "party side" compute of federated learning:
//! each FL party calls [`train_local`] on its private shard and shares only
//! the resulting model update.

use crate::loss::{accuracy, softmax_cross_entropy};
use crate::{Sequential, Sgd};
use deta_tensor::Tensor;

/// A labeled dataset with flat features.
#[derive(Clone, Debug)]
pub struct LabeledData {
    /// Features, shape `[n, d]`.
    pub features: Tensor,
    /// Class labels, length `n`.
    pub labels: Vec<usize>,
}

impl LabeledData {
    /// Creates a dataset, validating dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not 2-D or label count mismatches.
    pub fn new(features: Tensor, labels: Vec<usize>) -> LabeledData {
        assert_eq!(features.shape().len(), 2, "features must be [n, d]");
        assert_eq!(features.shape()[0], labels.len(), "label count mismatch");
        LabeledData { features, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.features.shape()[1]
    }

    /// Extracts examples `[start, end)` as a batch.
    pub fn slice(&self, start: usize, end: usize) -> (Tensor, &[usize]) {
        let d = self.dim();
        let batch = Tensor::from_vec(
            self.features.data()[start * d..end * d].to_vec(),
            &[end - start, d],
        );
        (batch, &self.labels[start..end])
    }
}

/// Statistics from one local training call.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainStats {
    /// Mean loss over all processed batches.
    pub loss: f32,
    /// Mean training accuracy over all processed batches.
    pub accuracy: f32,
    /// Number of examples processed (counting repeats across epochs).
    pub examples: usize,
}

/// Trains `model` on `data` for `epochs` epochs of minibatch SGD.
///
/// Returns statistics averaged over all batches.
///
/// # Panics
///
/// Panics if `batch_size == 0` or `data` is empty.
pub fn train_local(
    model: &mut Sequential,
    data: &LabeledData,
    epochs: usize,
    batch_size: usize,
    lr: f32,
) -> TrainStats {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut opt = Sgd::new(lr);
    let mut total_loss = 0.0f64;
    let mut total_acc = 0.0f64;
    let mut batches = 0usize;
    let mut examples = 0usize;
    for _ in 0..epochs {
        let mut start = 0;
        while start < data.len() {
            let end = (start + batch_size).min(data.len());
            let (x, y) = data.slice(start, end);
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, y);
            model.zero_grad();
            model.backward(&grad);
            opt.step(model);
            total_loss += loss as f64;
            total_acc += accuracy(&logits, y) as f64;
            batches += 1;
            examples += end - start;
            start = end;
        }
    }
    TrainStats {
        loss: (total_loss / batches as f64) as f32,
        accuracy: (total_acc / batches as f64) as f32,
        examples,
    }
}

/// Computes the mean gradient of the loss on a single batch without
/// updating the model (the FedSGD party-side computation).
pub fn batch_gradient(model: &mut Sequential, x: &Tensor, labels: &[usize]) -> (f32, Vec<f32>) {
    let logits = model.forward(x, true);
    let (loss, grad) = softmax_cross_entropy(&logits, labels);
    model.zero_grad();
    model.backward(&grad);
    (loss, model.flat_grads())
}

/// Evaluates mean loss and accuracy over a dataset.
pub fn evaluate(model: &mut Sequential, data: &LabeledData, batch_size: usize) -> (f32, f32) {
    assert!(!data.is_empty());
    let mut total_loss = 0.0f64;
    let mut correct = 0.0f64;
    let mut start = 0;
    while start < data.len() {
        let end = (start + batch_size).min(data.len());
        let (x, y) = data.slice(start, end);
        let logits = model.forward(&x, false);
        let (loss, _) = softmax_cross_entropy(&logits, y);
        total_loss += loss as f64 * (end - start) as f64;
        correct += accuracy(&logits, y) as f64 * (end - start) as f64;
        start = end;
    }
    let n = data.len() as f64;
    ((total_loss / n) as f32, (correct / n) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use deta_crypto::DetRng;

    /// Builds a linearly separable two-class problem.
    fn toy_data(n: usize, seed: u64) -> LabeledData {
        let mut rng = DetRng::from_u64(seed);
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(2) as usize;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            feats.push(cx + rng.next_gaussian() as f32 * 0.3);
            feats.push(cx + rng.next_gaussian() as f32 * 0.3);
            labels.push(class);
        }
        LabeledData::new(Tensor::from_vec(feats, &[n, 2]), labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = DetRng::from_u64(1);
        let mut model = mlp(&[2, 16, 2], &mut rng);
        let data = toy_data(200, 2);
        let (loss_before, acc_before) = evaluate(&mut model, &data, 50);
        let stats = train_local(&mut model, &data, 5, 20, 0.1);
        let (loss_after, acc_after) = evaluate(&mut model, &data, 50);
        assert!(loss_after < loss_before, "{loss_after} !< {loss_before}");
        assert!(acc_after > acc_before.max(0.9), "{acc_after}");
        assert_eq!(stats.examples, 200 * 5);
    }

    #[test]
    fn batch_gradient_matches_manual() {
        let mut rng = DetRng::from_u64(3);
        let mut model = mlp(&[2, 4, 2], &mut rng);
        let data = toy_data(10, 4);
        let (x, y) = data.slice(0, 10);
        let (_, g1) = batch_gradient(&mut model, &x, y);
        let (_, g2) = batch_gradient(&mut model, &x, y);
        // Gradient computation must not mutate the model.
        assert_eq!(g1, g2);
        assert_eq!(g1.len(), model.param_count());
    }

    #[test]
    fn evaluate_on_perfect_model_is_high_accuracy() {
        let mut rng = DetRng::from_u64(5);
        let mut model = mlp(&[2, 16, 2], &mut rng);
        let data = toy_data(100, 6);
        train_local(&mut model, &data, 10, 10, 0.2);
        let (_, acc) = evaluate(&mut model, &data, 32);
        assert!(acc > 0.95, "acc={acc}");
    }

    #[test]
    fn slice_extracts_correct_rows() {
        let data = toy_data(10, 7);
        let (x, y) = data.slice(3, 7);
        assert_eq!(x.shape(), &[4, 2]);
        assert_eq!(y.len(), 4);
        assert_eq!(x.data()[0], data.features.data()[6]);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let mut rng = DetRng::from_u64(8);
        let mut model = mlp(&[2, 2], &mut rng);
        let empty = LabeledData::new(Tensor::zeros(&[0, 2]), vec![]);
        train_local(&mut model, &empty, 1, 4, 0.1);
    }
}
