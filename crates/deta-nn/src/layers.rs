//! Layer implementations: linear, convolution, activations, pooling.
//!
//! All layers operate on batched inputs with a flat feature layout:
//! `[batch, features]`, where convolutional layers interpret `features` as
//! NCHW `C * H * W` according to their stored geometry.

use crate::Layer;
use deta_crypto::DetRng;
use deta_tensor::{col2im, im2col, ConvGeom, Tensor};

/// A fully connected layer `y = x W^T + b`.
pub struct Linear {
    /// Weights, shape `[out, in]`.
    w: Tensor,
    /// Bias, shape `[out]`.
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cached_input: Option<Tensor>,
    frozen: bool,
}

impl Linear {
    /// Creates a layer with Kaiming-style initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut DetRng) -> Linear {
        let std = (2.0 / in_dim as f32).sqrt();
        Linear {
            w: Tensor::randn(&[out_dim, in_dim], std, rng),
            b: Tensor::zeros(&[out_dim]),
            gw: Tensor::zeros(&[out_dim, in_dim]),
            gb: Tensor::zeros(&[out_dim]),
            cached_input: None,
            frozen: false,
        }
    }

    /// Marks the layer as frozen (excluded from training).
    pub fn freeze(mut self) -> Linear {
        self.frozen = true;
        self
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[0]
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        debug_assert_eq!(input.shape().len(), 2);
        debug_assert_eq!(input.shape()[1], self.in_dim());
        if train {
            self.cached_input = Some(input.clone());
        }
        // y = x W^T + b.
        let mut y = input.matmul_nt(&self.w);
        let (batch, out) = (y.shape()[0], y.shape()[1]);
        let yd = y.data_mut();
        let bd = self.b.data();
        for r in 0..batch {
            for c in 0..out {
                yd[r * out + c] += bd[c];
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward without forward(train=true)");
        // dW = dY^T X, db = column sums of dY, dX = dY W.
        self.gw.axpy(1.0, &grad_out.matmul_tn(&x));
        self.gb.axpy(1.0, &grad_out.sum_rows());
        grad_out.matmul(&self.w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn zero_grad(&mut self) {
        self.gw.scale_mut(0.0);
        self.gb.scale_mut(0.0);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn frozen(&self) -> bool {
        self.frozen
    }
}

/// A 2-D convolution layer (square kernel, NCHW layout, im2col lowering).
pub struct Conv2d {
    geom: ConvGeom,
    out_c: usize,
    /// Weights, shape `[out_c, in_c * k * k]`.
    w: Tensor,
    /// Bias, shape `[out_c]`.
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    /// Cached im2col matrices, one per batch image.
    cached_cols: Vec<Tensor>,
    frozen: bool,
}

impl Conv2d {
    /// Creates a convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        out_c: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut DetRng,
    ) -> Conv2d {
        let geom = ConvGeom {
            in_c,
            in_h,
            in_w,
            k,
            stride,
            pad,
        };
        let fan_in = in_c * k * k;
        let std = (2.0 / fan_in as f32).sqrt();
        Conv2d {
            geom,
            out_c,
            w: Tensor::randn(&[out_c, fan_in], std, rng),
            b: Tensor::zeros(&[out_c]),
            gw: Tensor::zeros(&[out_c, fan_in]),
            gb: Tensor::zeros(&[out_c]),
            cached_cols: Vec::new(),
            frozen: false,
        }
    }

    /// Marks the layer as frozen (excluded from training).
    pub fn freeze(mut self) -> Conv2d {
        self.frozen = true;
        self
    }

    /// Output feature count per image (`out_c * out_h * out_w`).
    pub fn out_features(&self) -> usize {
        self.out_c * self.geom.cols()
    }

    /// Output spatial dimensions `(out_c, out_h, out_w)`.
    pub fn out_dims(&self) -> (usize, usize, usize) {
        (self.out_c, self.geom.out_h(), self.geom.out_w())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.shape()[0];
        let feat = self.geom.in_c * self.geom.in_h * self.geom.in_w;
        debug_assert_eq!(input.shape()[1], feat, "conv input feature mismatch");
        let cols_n = self.geom.cols();
        let mut out = vec![0.0f32; batch * self.out_c * cols_n];
        if train {
            self.cached_cols.clear();
        }
        for bi in 0..batch {
            let img = Tensor::from_vec(input.data()[bi * feat..(bi + 1) * feat].to_vec(), &[feat]);
            let cols = im2col(&img, &self.geom);
            // y = W * cols + b, shape [out_c, cols_n].
            let mut y = self.w.matmul(&cols);
            {
                let yd = y.data_mut();
                for c in 0..self.out_c {
                    let bias = self.b.data()[c];
                    for v in &mut yd[c * cols_n..(c + 1) * cols_n] {
                        *v += bias;
                    }
                }
            }
            out[bi * self.out_c * cols_n..(bi + 1) * self.out_c * cols_n].copy_from_slice(y.data());
            if train {
                self.cached_cols.push(cols);
            }
        }
        Tensor::from_vec(out, &[batch, self.out_c * cols_n])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.shape()[0];
        assert_eq!(
            self.cached_cols.len(),
            batch,
            "backward without matching forward(train=true)"
        );
        let cols_n = self.geom.cols();
        let feat = self.geom.in_c * self.geom.in_h * self.geom.in_w;
        let mut grad_in = vec![0.0f32; batch * feat];
        for bi in 0..batch {
            let gy = Tensor::from_vec(
                grad_out.data()[bi * self.out_c * cols_n..(bi + 1) * self.out_c * cols_n].to_vec(),
                &[self.out_c, cols_n],
            );
            let cols = &self.cached_cols[bi];
            // dW += gy * cols^T.
            self.gw.axpy(1.0, &gy.matmul_nt(cols));
            // db += row sums of gy.
            {
                let gbd = self.gb.data_mut();
                for (c, g) in gbd.iter_mut().enumerate().take(self.out_c) {
                    *g += gy.data()[c * cols_n..(c + 1) * cols_n].iter().sum::<f32>();
                }
            }
            // dCols = W^T gy; dX = col2im(dCols).
            let dcols = self.w.matmul_tn(&gy);
            let dimg = col2im(&dcols, &self.geom);
            grad_in[bi * feat..(bi + 1) * feat].copy_from_slice(dimg.data());
        }
        self.cached_cols.clear();
        Tensor::from_vec(grad_in, &[batch, feat])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn zero_grad(&mut self) {
        self.gw.scale_mut(0.0);
        self.gb.scale_mut(0.0);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn frozen(&self) -> bool {
        self.frozen
    }
}

/// ReLU activation.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Relu {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("backward without forward(train=true)");
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Tanh activation (used by the attack-facing LeNet variant, which must be
/// twice differentiable as the DLG paper requires).
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Tanh {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let y = input.map(f32::tanh);
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("backward without forward(train=true)");
        grad_out.zip_with(&y, |g, t| g * (1.0 - t * t))
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// 2x2 max pooling with stride 2 over NCHW features.
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    /// Cached winner indices per batch element.
    argmax: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a pooling layer for inputs of shape `[C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is odd.
    pub fn new(c: usize, h: usize, w: usize) -> MaxPool2d {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "MaxPool2d requires even H and W"
        );
        MaxPool2d {
            c,
            h,
            w,
            argmax: None,
        }
    }

    /// Output feature count per image.
    pub fn out_features(&self) -> usize {
        self.c * (self.h / 2) * (self.w / 2)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.shape()[0];
        let feat = self.c * self.h * self.w;
        debug_assert_eq!(input.shape()[1], feat);
        let (oh, ow) = (self.h / 2, self.w / 2);
        let out_feat = self.c * oh * ow;
        let mut out = vec![0.0f32; batch * out_feat];
        let mut winners = vec![0usize; batch * out_feat];
        let data = input.data();
        for bi in 0..batch {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_v = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = bi * feat + (c * self.h + iy) * self.w + ix;
                                if data[idx] > best_v {
                                    best_v = data[idx];
                                    best_i = idx;
                                }
                            }
                        }
                        let oidx = bi * out_feat + (c * oh + oy) * ow + ox;
                        out[oidx] = best_v;
                        winners[oidx] = best_i;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(winners);
        }
        Tensor::from_vec(out, &[batch, out_feat])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let winners = self
            .argmax
            .take()
            .expect("backward without forward(train=true)");
        let batch = grad_out.shape()[0];
        let feat = self.c * self.h * self.w;
        let mut grad_in = vec![0.0f32; batch * feat];
        for (o, &win) in grad_out.data().iter().zip(winners.iter()) {
            grad_in[win] += o;
        }
        Tensor::from_vec(grad_in, &[batch, feat])
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// 2x2 average pooling with stride 2 over NCHW features.
pub struct AvgPool2d {
    c: usize,
    h: usize,
    w: usize,
}

impl AvgPool2d {
    /// Creates a pooling layer for inputs of shape `[C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is odd.
    pub fn new(c: usize, h: usize, w: usize) -> AvgPool2d {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "AvgPool2d requires even H and W"
        );
        AvgPool2d { c, h, w }
    }

    /// Output feature count per image.
    pub fn out_features(&self) -> usize {
        self.c * (self.h / 2) * (self.w / 2)
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let batch = input.shape()[0];
        let feat = self.c * self.h * self.w;
        debug_assert_eq!(input.shape()[1], feat);
        let (oh, ow) = (self.h / 2, self.w / 2);
        let out_feat = self.c * oh * ow;
        let mut out = vec![0.0f32; batch * out_feat];
        let data = input.data();
        for bi in 0..batch {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                acc += data[bi * feat + (c * self.h + iy) * self.w + ix];
                            }
                        }
                        out[bi * out_feat + (c * oh + oy) * ow + ox] = acc / 4.0;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, out_feat])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.shape()[0];
        let feat = self.c * self.h * self.w;
        let (oh, ow) = (self.h / 2, self.w / 2);
        let out_feat = self.c * oh * ow;
        let mut grad_in = vec![0.0f32; batch * feat];
        let god = grad_out.data();
        for bi in 0..batch {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = god[bi * out_feat + (c * oh + oy) * ow + ox] / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                grad_in[bi * feat + (c * self.h + iy) * self.w + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(grad_in, &[batch, feat])
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// A no-op layer marking the conv-to-dense boundary.
///
/// The flat NCHW layout makes flattening a no-op; this layer exists so
/// model definitions read like their PyTorch counterparts.
#[derive(Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten marker layer.
    pub fn new() -> Flatten {
        Flatten
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sequential;

    /// Numerically checks `d loss / d param` for every parameter of a
    /// model against backprop, where `loss = sum(model(x) * probe)`.
    fn gradient_check(mut model: Sequential, in_dim: usize) {
        let mut rng = DetRng::from_u64(99);
        let x = Tensor::randn(&[2, in_dim], 1.0, &mut rng);
        let out = model.forward(&x, true);
        let probe = Tensor::randn(out.shape(), 1.0, &mut rng);
        model.zero_grad();
        model.backward(&probe);
        let analytic = model.flat_grads();
        let params = model.flat_params();
        let eps = 1e-3f32;
        // Check a deterministic sample of parameters to bound runtime.
        let step = (params.len() / 25).max(1);
        for i in (0..params.len()).step_by(step) {
            let mut plus = params.clone();
            plus[i] += eps;
            model.set_flat_params(&plus);
            let fp: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut minus = params.clone();
            minus[i] -= eps;
            model.set_flat_params(&minus);
            let fm: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[i];
            let denom = numeric.abs().max(a.abs()).max(1.0);
            assert!(
                (numeric - a).abs() / denom < 2e-2,
                "param {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = DetRng::from_u64(1);
        gradient_check(Sequential::new().push(Linear::new(6, 4, &mut rng)), 6);
    }

    #[test]
    fn mlp_gradient_check() {
        let mut rng = DetRng::from_u64(2);
        let m = Sequential::new()
            .push(Linear::new(6, 10, &mut rng))
            .push(Tanh::new())
            .push(Linear::new(10, 4, &mut rng));
        gradient_check(m, 6);
    }

    #[test]
    fn relu_mlp_gradient_check() {
        let mut rng = DetRng::from_u64(3);
        let m = Sequential::new()
            .push(Linear::new(5, 12, &mut rng))
            .push(Relu::new())
            .push(Linear::new(12, 3, &mut rng));
        gradient_check(m, 5);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = DetRng::from_u64(4);
        let m = Sequential::new().push(Conv2d::new(2, 3, 6, 6, 3, 1, 1, &mut rng));
        gradient_check(m, 2 * 6 * 6);
    }

    #[test]
    fn conv_strided_gradient_check() {
        let mut rng = DetRng::from_u64(5);
        // Tanh (not ReLU) keeps the function smooth so the finite
        // difference converges to the analytic gradient.
        let m = Sequential::new()
            .push(Conv2d::new(1, 4, 8, 8, 3, 2, 1, &mut rng))
            .push(Tanh::new())
            .push(Linear::new(4 * 4 * 4, 3, &mut rng));
        gradient_check(m, 64);
    }

    #[test]
    fn maxpool_gradient_check() {
        let mut rng = DetRng::from_u64(6);
        let m = Sequential::new()
            .push(Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng))
            .push(MaxPool2d::new(2, 4, 4))
            .push(Linear::new(2 * 2 * 2, 2, &mut rng));
        gradient_check(m, 16);
    }

    #[test]
    fn avgpool_gradient_check() {
        let mut rng = DetRng::from_u64(7);
        let m = Sequential::new()
            .push(AvgPool2d::new(1, 4, 4))
            .push(Linear::new(4, 2, &mut rng));
        gradient_check(m, 16);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_max() {
        let mut p = MaxPool2d::new(1, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[1, 4]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::from_vec(vec![1.0], &[1, 1]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let mut p = AvgPool2d::new(1, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[1, 4]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn frozen_layers_excluded_from_flat_params() {
        let mut rng = DetRng::from_u64(8);
        let m = Sequential::new()
            .push(Linear::new(4, 4, &mut rng).freeze())
            .push(Linear::new(4, 2, &mut rng));
        assert_eq!(m.param_count(), 4 * 2 + 2);
        assert_eq!(m.flat_params().len(), 10);
    }

    #[test]
    fn conv_output_dims() {
        let mut rng = DetRng::from_u64(9);
        let c = Conv2d::new(3, 16, 32, 32, 3, 1, 1, &mut rng);
        assert_eq!(c.out_dims(), (16, 32, 32));
        assert_eq!(c.out_features(), 16 * 32 * 32);
    }

    #[test]
    fn batch_independence() {
        // Running a batch of 2 must equal running the two samples alone.
        let mut rng = DetRng::from_u64(10);
        let mut m = Sequential::new()
            .push(Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng))
            .push(Relu::new())
            .push(Linear::new(2 * 16, 3, &mut rng));
        let mut rng2 = DetRng::from_u64(11);
        let a = Tensor::randn(&[1, 16], 1.0, &mut rng2);
        let b = Tensor::randn(&[1, 16], 1.0, &mut rng2);
        let mut both = a.data().to_vec();
        both.extend_from_slice(b.data());
        let batch = Tensor::from_vec(both, &[2, 16]);
        let ya = m.forward(&a, false);
        let yb = m.forward(&b, false);
        let yab = m.forward(&batch, false);
        for j in 0..3 {
            assert!((ya.at2(0, j) - yab.at2(0, j)).abs() < 1e-5);
            assert!((yb.at2(0, j) - yab.at2(1, j)).abs() < 1e-5);
        }
    }
}
