//! The model zoo used by the DeTA evaluation.
//!
//! The paper trains: an 8-layer ConvNet on MNIST (Figure 5), a 23-layer
//! ConvNet on CIFAR-10 (Figure 6), and a VGG-16 transfer model on
//! RVL-CDIP (Figure 7). These constructors rebuild the same architecture
//! *shapes* at CPU-simulation scale; image sizes are parameters so the
//! benchmark harness can trade fidelity for runtime.

use crate::layers::{Conv2d, Linear, MaxPool2d, Relu, Tanh};
use crate::residual::Residual;
use crate::Sequential;
use deta_crypto::DetRng;

/// A plain multi-layer perceptron with Tanh activations.
///
/// Used by the gradient-inversion experiments, which need a smooth (twice
/// differentiable) model as in the DLG paper.
///
/// # Panics
///
/// Panics if fewer than two dimensions are given.
pub fn mlp(dims: &[usize], rng: &mut DetRng) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut m = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        m = m.push(Linear::new(w[0], w[1], rng));
        if i + 2 < dims.len() {
            m = m.push(Tanh::new());
        }
    }
    m
}

/// The 8-layer MNIST ConvNet from the paper's Figure 5 experiments.
///
/// `hw` is the (square) input resolution; channels default to 1.
pub fn convnet8(in_c: usize, hw: usize, classes: usize, rng: &mut DetRng) -> Sequential {
    assert!(
        hw.is_multiple_of(4),
        "convnet8 needs resolution divisible by 4"
    );
    let h2 = hw / 2;
    let h4 = hw / 4;
    Sequential::new()
        .push(Conv2d::new(in_c, 8, hw, hw, 3, 1, 1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(8, hw, hw))
        .push(Conv2d::new(8, 16, h2, h2, 3, 1, 1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(16, h2, h2))
        .push(Linear::new(16 * h4 * h4, 64, rng))
        .push(Relu::new())
        .push(Linear::new(64, classes, rng))
}

/// The 23-layer CIFAR-10 ConvNet from the paper's Figure 6 experiments.
pub fn convnet23(in_c: usize, hw: usize, classes: usize, rng: &mut DetRng) -> Sequential {
    assert!(
        hw.is_multiple_of(8),
        "convnet23 needs resolution divisible by 8"
    );
    let h2 = hw / 2;
    let h4 = hw / 4;
    let h8 = hw / 8;
    Sequential::new()
        // Block 1.
        .push(Conv2d::new(in_c, 16, hw, hw, 3, 1, 1, rng))
        .push(Relu::new())
        .push(Conv2d::new(16, 16, hw, hw, 3, 1, 1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(16, hw, hw))
        // Block 2.
        .push(Conv2d::new(16, 32, h2, h2, 3, 1, 1, rng))
        .push(Relu::new())
        .push(Conv2d::new(32, 32, h2, h2, 3, 1, 1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(32, h2, h2))
        // Block 3.
        .push(Conv2d::new(32, 64, h4, h4, 3, 1, 1, rng))
        .push(Relu::new())
        .push(Conv2d::new(64, 64, h4, h4, 3, 1, 1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(64, h4, h4))
        // Head.
        .push(Linear::new(64 * h8 * h8, 128, rng))
        .push(Relu::new())
        .push(Linear::new(128, classes, rng))
}

/// A VGG-lite transfer model for the RVL-CDIP experiments.
///
/// The paper fine-tunes a pre-trained VGG-16 after replacing the last
/// three fully connected layers. Here the convolutional feature extractor
/// is *frozen* (simulating the pre-trained backbone: its weights exist but
/// are excluded from training and from the flat parameter vector), and the
/// three-layer classifier head is trainable.
pub fn vgg_lite(in_c: usize, hw: usize, classes: usize, rng: &mut DetRng) -> Sequential {
    assert!(
        hw.is_multiple_of(4),
        "vgg_lite needs resolution divisible by 4"
    );
    let h2 = hw / 2;
    let h4 = hw / 4;
    Sequential::new()
        // Frozen "pre-trained" feature extractor.
        .push(Conv2d::new(in_c, 16, hw, hw, 3, 1, 1, rng).freeze())
        .push(Relu::new())
        .push(MaxPool2d::new(16, hw, hw))
        .push(Conv2d::new(16, 32, h2, h2, 3, 1, 1, rng).freeze())
        .push(Relu::new())
        .push(MaxPool2d::new(32, h2, h2))
        // Replaced, trainable 3-layer classifier head.
        .push(Linear::new(32 * h4 * h4, 128, rng))
        .push(Relu::new())
        .push(Linear::new(128, 64, rng))
        .push(Relu::new())
        .push(Linear::new(64, classes, rng))
}

/// A small residual network: stem conv, two residual conv blocks with a
/// pooling stage between them, and a linear head.
///
/// Stands in for the ResNet-18 class of architectures the paper's IG
/// experiments target, at CPU scale.
pub fn resnet_lite(in_c: usize, hw: usize, classes: usize, rng: &mut DetRng) -> Sequential {
    assert!(hw.is_multiple_of(2), "resnet_lite needs even resolution");
    let h2 = hw / 2;
    let block = |c: usize, s: usize, rng: &mut DetRng| {
        Residual::new(
            Sequential::new()
                .push(Conv2d::new(c, c, s, s, 3, 1, 1, rng))
                .push(Tanh::new()),
        )
    };
    Sequential::new()
        .push(Conv2d::new(in_c, 8, hw, hw, 3, 1, 1, rng))
        .push(Relu::new())
        .push(block(8, hw, rng))
        .push(MaxPool2d::new(8, hw, hw))
        .push(block(8, h2, rng))
        .push(Linear::new(8 * h2 * h2, classes, rng))
}

/// The small LeNet-style smooth ConvNet used in the DLG/iDLG experiments.
///
/// Uses Tanh activations and strided convolutions (no pooling), matching
/// the twice-differentiable architecture the attacks require.
pub fn lenet_dlg(in_c: usize, hw: usize, classes: usize, rng: &mut DetRng) -> Sequential {
    assert!(
        hw.is_multiple_of(4),
        "lenet_dlg needs resolution divisible by 4"
    );
    let h2 = hw / 2;
    let h4 = hw / 4;
    Sequential::new()
        .push(Conv2d::new(in_c, 8, hw, hw, 3, 2, 1, rng))
        .push(Tanh::new())
        .push(Conv2d::new(8, 8, h2, h2, 3, 2, 1, rng))
        .push(Tanh::new())
        .push(Linear::new(8 * h4 * h4, classes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_tensor::Tensor;

    #[test]
    fn mlp_shapes_and_layers() {
        let mut rng = DetRng::from_u64(1);
        let mut m = mlp(&[10, 20, 5], &mut rng);
        // Linear, Tanh, Linear.
        assert_eq!(m.len(), 3);
        let y = m.forward(&Tensor::zeros(&[2, 10]), false);
        assert_eq!(y.shape(), &[2, 5]);
        assert_eq!(m.param_count(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn convnet8_forward_shape() {
        let mut rng = DetRng::from_u64(2);
        let mut m = convnet8(1, 28, 10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 28 * 28]), false);
        assert_eq!(y.shape(), &[2, 10]);
        assert!(m.param_count() > 10_000);
    }

    #[test]
    fn convnet23_forward_shape() {
        let mut rng = DetRng::from_u64(3);
        let mut m = convnet23(3, 16, 10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[1, 3 * 16 * 16]), false);
        assert_eq!(y.shape(), &[1, 10]);
        // The paper's model has 23 layers; ours counts 17 boxed layers
        // (conv/relu/pool/linear), which is the same depth class.
        assert!(m.len() >= 15);
    }

    #[test]
    fn vgg_lite_freezes_backbone() {
        let mut rng = DetRng::from_u64(4);
        let mut m = vgg_lite(3, 16, 16, &mut rng);
        let y = m.forward(&Tensor::zeros(&[1, 3 * 16 * 16]), false);
        assert_eq!(y.shape(), &[1, 16]);
        // Only the head is trainable.
        let head = 32 * 4 * 4 * 128 + 128 + 128 * 64 + 64 + 64 * 16 + 16;
        assert_eq!(m.param_count(), head);
    }

    #[test]
    fn lenet_dlg_forward_shape() {
        let mut rng = DetRng::from_u64(5);
        let mut m = lenet_dlg(3, 16, 100, &mut rng);
        let y = m.forward(&Tensor::zeros(&[1, 3 * 16 * 16]), false);
        assert_eq!(y.shape(), &[1, 100]);
    }

    #[test]
    fn models_are_deterministic() {
        let p1 = convnet8(1, 12, 10, &mut DetRng::from_u64(7)).flat_params();
        let p2 = convnet8(1, 12, 10, &mut DetRng::from_u64(7)).flat_params();
        assert_eq!(p1, p2);
    }
}
