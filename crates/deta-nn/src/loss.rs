//! Softmax cross-entropy loss.

use deta_tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch.
///
/// `logits` has shape `[batch, classes]`; `labels` holds class indices.
/// Returns `(loss, grad_logits)` where the gradient is already divided by
/// the batch size (so downstream gradients are per-batch means).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2);
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "label count mismatch");
    let probs = logits.softmax_rows();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let p = probs.at2(i, label).max(1e-12);
        loss -= p.ln();
        gd[i * classes + label] -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    grad.scale_mut(scale);
    (loss * scale, grad)
}

/// Computes classification accuracy of `logits` against `labels`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch);
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn confident_wrong_prediction_high_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss > 10.0);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        let probs = logits.softmax_rows();
        assert!((grad.at2(0, 0) - probs.at2(0, 0)).abs() < 1e-6);
        assert!((grad.at2(0, 2) - (probs.at2(0, 2) - 1.0)).abs() < 1e-6);
        // Gradient rows sum to ~0.
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn numeric_gradient_check() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.3], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "logit {i}: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_correct() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 0, 1]) - 0.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[0, 0, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
