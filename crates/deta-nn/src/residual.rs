//! Residual (skip) connections.
//!
//! The paper's Inverting-Gradients experiments target ResNet-18;
//! [`Residual`] brings the skip-connection structure into this stack so
//! the model zoo can express a ResNet-lite. A residual block computes
//! `y = x + f(x)` where `f` is an inner [`Sequential`] whose output shape
//! must equal its input shape.

use crate::{Layer, Sequential};
use deta_tensor::Tensor;

/// A residual block: `y = x + inner(x)`.
pub struct Residual {
    inner: Sequential,
    frozen: bool,
}

impl Residual {
    /// Wraps an inner stack whose output shape equals its input shape.
    pub fn new(inner: Sequential) -> Residual {
        Residual {
            inner,
            frozen: false,
        }
    }

    /// Marks the whole block as frozen.
    pub fn freeze(mut self) -> Residual {
        self.frozen = true;
        self
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let fx = self.inner.forward(input, train);
        assert_eq!(
            fx.shape(),
            input.shape(),
            "residual inner stack must preserve shape"
        );
        fx.add(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // d/dx (x + f(x)) = I + f'(x): the gradient flows through both the
        // skip path and the inner stack.
        let inner_grad = self.inner.backward(grad_out);
        inner_grad.add(grad_out)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner
            .layers()
            .iter()
            .filter(|l| !l.frozen())
            .flat_map(|l| l.params())
            .collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner
            .layers_mut()
            .iter_mut()
            .filter(|l| !l.frozen())
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.inner
            .layers()
            .iter()
            .filter(|l| !l.frozen())
            .flat_map(|l| l.grads())
            .collect()
    }

    fn zero_grad(&mut self) {
        self.inner.zero_grad();
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn frozen(&self) -> bool {
        self.frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear, Tanh};
    use deta_crypto::DetRng;

    #[test]
    fn identity_inner_doubles_input() {
        // An empty inner stack makes the block y = x + x.
        let mut block = Residual::new(Sequential::new());
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
        let y = block.forward(&x, false);
        assert_eq!(y.data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn skip_path_carries_gradient() {
        let mut rng = DetRng::from_u64(1);
        let inner = Sequential::new()
            .push(Linear::new(4, 4, &mut rng))
            .push(Tanh::new());
        let mut block = Residual::new(inner);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let _y = block.forward(&x, true);
        let g = block.backward(&Tensor::full(&[2, 4], 1.0));
        // Even if the inner gradient were zero, the skip contributes 1.
        assert!(g.data().iter().all(|&v| v.is_finite()));
        assert!(g.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradient_check_residual_mlp() {
        let mut rng = DetRng::from_u64(2);
        let inner = Sequential::new()
            .push(Linear::new(5, 5, &mut rng))
            .push(Tanh::new());
        let mut model = Sequential::new()
            .push(Residual::new(inner))
            .push(Linear::new(5, 2, &mut rng));
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let out = model.forward(&x, true);
        let probe = Tensor::randn(out.shape(), 1.0, &mut rng);
        model.zero_grad();
        model.backward(&probe);
        let analytic = model.flat_grads();
        let params = model.flat_params();
        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(3) {
            let mut plus = params.clone();
            plus[i] += eps;
            model.set_flat_params(&plus);
            let fp: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut minus = params.clone();
            minus[i] -= eps;
            model.set_flat_params(&minus);
            let fm: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1.0);
            assert!(
                (numeric - analytic[i]).abs() / denom < 2e-2,
                "param {i}: {numeric} vs {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn residual_conv_block_trains() {
        use crate::models::resnet_lite;
        use crate::train::{evaluate, train_local, LabeledData};
        let mut rng = DetRng::from_u64(3);
        let mut model = resnet_lite(1, 8, 3, &mut rng);
        // A separable 3-class toy problem on 8x8 images.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        let mut drng = DetRng::from_u64(4);
        for i in 0..120 {
            let class = i % 3;
            for p in 0..64 {
                let base = if p % 3 == class { 0.9 } else { 0.1 };
                feats.push(base + drng.next_f32() * 0.1);
            }
            labels.push(class);
        }
        let data = LabeledData::new(Tensor::from_vec(feats, &[120, 64]), labels);
        train_local(&mut model, &data, 4, 16, 0.1);
        let (_, acc) = evaluate(&mut model, &data, 60);
        assert!(
            acc > 0.8,
            "resnet-lite should learn the toy task, acc={acc}"
        );
    }

    #[test]
    #[should_panic]
    fn shape_changing_inner_panics() {
        let mut rng = DetRng::from_u64(5);
        let inner = Sequential::new().push(Linear::new(4, 3, &mut rng));
        let mut block = Residual::new(inner);
        block.forward(&Tensor::zeros(&[1, 4]), false);
    }

    #[test]
    fn frozen_block_excluded_from_params() {
        let mut rng = DetRng::from_u64(6);
        let inner = Sequential::new().push(Linear::new(4, 4, &mut rng));
        let model = Sequential::new()
            .push(Residual::new(inner).freeze())
            .push(Linear::new(4, 2, &mut rng));
        assert_eq!(model.param_count(), 4 * 2 + 2);
    }

    #[test]
    fn conv_residual_gradient_check() {
        let mut rng = DetRng::from_u64(7);
        let inner = Sequential::new()
            .push(Conv2d::new(2, 2, 4, 4, 3, 1, 1, &mut rng))
            .push(Tanh::new());
        let mut model = Sequential::new()
            .push(Residual::new(inner))
            .push(Linear::new(2 * 16, 2, &mut rng));
        let x = Tensor::randn(&[1, 32], 0.5, &mut rng);
        let out = model.forward(&x, true);
        let probe = Tensor::randn(out.shape(), 1.0, &mut rng);
        model.zero_grad();
        model.backward(&probe);
        let analytic = model.flat_grads();
        let params = model.flat_params();
        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(7) {
            let mut plus = params.clone();
            plus[i] += eps;
            model.set_flat_params(&plus);
            let fp: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut minus = params.clone();
            minus[i] -= eps;
            model.set_flat_params(&minus);
            let fm: f32 = model
                .forward(&x, false)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1.0);
            assert!(
                (numeric - analytic[i]).abs() / denom < 2e-2,
                "param {i}: {numeric} vs {}",
                analytic[i]
            );
        }
    }
}
