//! From-scratch CPU neural network stack.
//!
//! This crate provides the training substrate for the DeTA reproduction:
//! explicit forward/backward layers over [`deta_tensor::Tensor`], a
//! [`Sequential`] container, softmax cross-entropy loss, SGD, and the model
//! zoo used in the paper's evaluation (an 8-layer MNIST ConvNet, a 23-layer
//! CIFAR ConvNet, a VGG-lite transfer model, and the small LeNet used by
//! the gradient-inversion attack experiments).
//!
//! The central artifact for federated learning is the **flat parameter
//! vector**: [`Sequential::flat_params`] serializes every trainable weight
//! into one `Vec<f32>` in a deterministic order, and
//! [`Sequential::set_flat_params`] restores it. DeTA's model mapper
//! partitions and shuffles exactly this vector.

pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod residual;
pub mod train;

pub use layers::{AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Tanh};
pub use loss::softmax_cross_entropy;
pub use optim::Sgd;
pub use residual::Residual;

use deta_tensor::Tensor;

/// A differentiable layer with explicit forward and backward passes.
///
/// `forward` caches whatever activations the backward pass needs;
/// `backward` consumes the cached state, accumulates parameter gradients
/// internally, and returns the gradient with respect to the layer input.
pub trait Layer: Send {
    /// Computes the layer output for a batch.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out`, returning the input gradient.
    ///
    /// Must be called after a `forward` with `train = true`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable views of the trainable parameters (may be empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable views of the accumulated parameter gradients,
    /// parallel to [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self);

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the parameters are frozen (excluded from updates and from
    /// the flat parameter vector). Used for transfer learning.
    fn frozen(&self) -> bool {
        false
    }
}

/// A feed-forward stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass over all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs the backward pass over all layers in reverse.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable (non-frozen) parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !l.frozen())
            .flat_map(|l| l.params())
            .map(|p| p.numel())
            .sum()
    }

    /// Serializes all trainable parameters into one flat vector.
    ///
    /// The order is deterministic: layers in sequence, each layer's
    /// parameters in its declared order, row-major within each tensor.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            if layer.frozen() {
                continue;
            }
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Restores trainable parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` does not equal [`Sequential::param_count`].
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut off = 0;
        for layer in &mut self.layers {
            if layer.frozen() {
                continue;
            }
            for p in layer.params_mut() {
                let n = p.numel();
                p.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            }
        }
    }

    /// Serializes all accumulated gradients (trainable layers only) into a
    /// flat vector parallel to [`Sequential::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            if layer.frozen() {
                continue;
            }
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Applies an SGD-style update `p -= lr * g` from a flat gradient.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn apply_flat_grads(&mut self, flat: &[f32], lr: f32) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat gradient length mismatch"
        );
        let mut off = 0;
        for layer in &mut self.layers {
            if layer.frozen() {
                continue;
            }
            for p in layer.params_mut() {
                let n = p.numel();
                for (w, g) in p.data_mut().iter_mut().zip(&flat[off..off + n]) {
                    *w -= lr * g;
                }
                off += n;
            }
        }
    }

    /// Iterates over layers (for inspection).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_crypto::DetRng;

    fn tiny_model(rng: &mut DetRng) -> Sequential {
        Sequential::new()
            .push(Linear::new(4, 8, rng))
            .push(Relu::new())
            .push(Linear::new(8, 3, rng))
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = DetRng::from_u64(1);
        let mut m = tiny_model(&mut rng);
        let flat = m.flat_params();
        assert_eq!(flat.len(), m.param_count());
        assert_eq!(flat.len(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut changed = flat.clone();
        for v in &mut changed {
            *v += 1.0;
        }
        m.set_flat_params(&changed);
        assert_eq!(m.flat_params(), changed);
    }

    #[test]
    #[should_panic]
    fn set_flat_params_wrong_len_panics() {
        let mut rng = DetRng::from_u64(1);
        let mut m = tiny_model(&mut rng);
        m.set_flat_params(&[0.0; 3]);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = DetRng::from_u64(2);
        let mut m = tiny_model(&mut rng);
        let x = Tensor::zeros(&[5, 4]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn apply_flat_grads_updates() {
        let mut rng = DetRng::from_u64(3);
        let mut m = tiny_model(&mut rng);
        let before = m.flat_params();
        let grads = vec![1.0f32; before.len()];
        m.apply_flat_grads(&grads, 0.5);
        let after = m.flat_params();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = DetRng::from_u64(4);
        let mut m = tiny_model(&mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = m.forward(&x, true);
        m.backward(&Tensor::full(y.shape(), 1.0));
        assert!(m.flat_grads().iter().any(|&g| g != 0.0));
        m.zero_grad();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn determinism_across_construction() {
        let mut r1 = DetRng::from_u64(5);
        let mut r2 = DetRng::from_u64(5);
        let m1 = tiny_model(&mut r1);
        let m2 = tiny_model(&mut r2);
        assert_eq!(m1.flat_params(), m2.flat_params());
    }
}
