//! Optimizers.

use crate::Sequential;

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Option<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// Enables momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Sgd {
        self.momentum = momentum;
        self
    }

    /// Applies one update step from the model's accumulated gradients.
    pub fn step(&mut self, model: &mut Sequential) {
        let grads = model.flat_grads();
        if self.momentum == 0.0 {
            model.apply_flat_grads(&grads, self.lr);
            return;
        }
        let v = self.velocity.get_or_insert_with(|| vec![0.0; grads.len()]);
        assert_eq!(v.len(), grads.len(), "model size changed mid-training");
        for (vi, gi) in v.iter_mut().zip(grads.iter()) {
            *vi = self.momentum * *vi + gi;
        }
        let update = v.clone();
        model.apply_flat_grads(&update, self.lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use deta_crypto::DetRng;
    use deta_tensor::Tensor;

    fn setup() -> Sequential {
        let mut rng = DetRng::from_u64(1);
        Sequential::new().push(Linear::new(2, 1, &mut rng))
    }

    fn run_one_step(model: &mut Sequential, opt: &mut Sgd) {
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = model.forward(&x, true);
        model.zero_grad();
        model.backward(&Tensor::full(y.shape(), 1.0));
        opt.step(model);
    }

    #[test]
    fn sgd_descends() {
        let mut model = setup();
        let mut opt = Sgd::new(0.1);
        let before = model.flat_params();
        run_one_step(&mut model, &mut opt);
        let after = model.flat_params();
        // Gradient of sum(y) w.r.t. W is x = (1, 1), w.r.t. b is 1.
        assert!((before[0] - 0.1 - after[0]).abs() < 1e-6);
        assert!((before[2] - 0.1 - after[2]).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let mut m1 = setup();
        let mut m2 = setup();
        let mut plain = Sgd::new(0.1);
        let mut momentum = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..3 {
            run_one_step(&mut m1, &mut plain);
            run_one_step(&mut m2, &mut momentum);
        }
        // With constant gradients, momentum moves strictly farther.
        let p1 = m1.flat_params();
        let p2 = m2.flat_params();
        assert!(p2[0] < p1[0]);
    }
}
