//! TCP-bridge drills: a hand-rolled rogue client (built from the public
//! wire primitives, free to violate the discipline `run_node` enforces)
//! replays frames, reorders frames, and impersonates an aggregator seat
//! against a live [`SocketHub`].

use crate::Drill;
use deta_crypto::{DetRng, SigningKey};
use deta_socket::wire::auth_transcript;
use deta_socket::{
    encode_frame, hub_verifying_key, party_link_key, FrameDecoder, HubSeat, SocketError,
    SocketFrame, SocketHub,
};
use deta_transport::secure::{HandshakeInitiator, SecureChannel};
use deta_transport::{Endpoint, LinkModel, Network, RecvError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const SEED: u64 = 0xD0D0;

/// A hub with one connectable party seat and one plain hub-network
/// endpoint (`agg-0`) kept for delivery assertions.
fn start_hub() -> (SocketHub, Network, Endpoint, SigningKey) {
    let network = Network::new(LinkModel::lan());
    let agg = network.register("agg-0");
    let link = party_link_key(SEED, "party-0");
    let seats = vec![HubSeat {
        name: "party-0".to_string(),
        key: link.verifying_key(),
        endpoint: network.register("party-0"),
    }];
    let hub = SocketHub::bind(network.clone(), seats, SEED).expect("hub bind");
    (hub, network, agg, link)
}

/// A minimal bridge-protocol client that can misbehave at will.
struct Rogue {
    stream: TcpStream,
    decoder: FrameDecoder,
    channel: SecureChannel,
}

impl Rogue {
    /// Handshakes and authenticates as `name`; `None` when the hub
    /// refuses the auth proof.
    fn connect(addr: SocketAddr, name: &str, link: &SigningKey) -> Option<Rogue> {
        let mut rng = DetRng::from_u64(SEED)
            .fork(b"rogue-client")
            .fork(name.as_bytes());
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("read timeout");
        let mut decoder = FrameDecoder::new();
        let init = HandshakeInitiator::new(&mut rng);
        let mut s = stream.try_clone().expect("clone stream");
        s.write_all(&encode_frame(init.hello())).expect("hello");
        let response = read_raw(&mut s, &mut decoder).expect("handshake response");
        let channel = init
            .complete(&response, &hub_verifying_key(SEED))
            .expect("handshake");
        let mut rogue = Rogue {
            stream,
            decoder,
            channel,
        };
        let Some(SocketFrame::Challenge { nonce }) = rogue.recv() else {
            panic!("hub must open with a challenge");
        };
        let proof = link.sign(&auth_transcript(&nonce, name));
        rogue.send(&SocketFrame::AuthProof {
            name: name.to_string(),
            sig: proof.to_bytes(),
        });
        match rogue.recv() {
            Some(SocketFrame::Welcome) => {}
            _ => return None,
        }
        // The hub aligns clocks right after Welcome and refuses data
        // until the probe is echoed; even a rogue must answer it.
        let Some(SocketFrame::ClockProbe { t_hub_ns }) = rogue.recv() else {
            panic!("hub must probe the clock after Welcome");
        };
        rogue.send(&SocketFrame::ClockEcho {
            t_hub_ns,
            t_peer_ns: deta_telemetry::now_ns(),
        });
        Some(rogue)
    }

    fn send(&mut self, frame: &SocketFrame) {
        let record = self.channel.seal_msg(&frame.encode());
        self.stream
            .write_all(&encode_frame(&record))
            .expect("rogue send");
    }

    /// A data frame sealed as a *fresh* record but carrying an arbitrary
    /// logical sequence number — a byte-level-valid replay.
    fn send_data(&mut self, dst: &str, seq: u64, payload: &[u8]) {
        self.send(&SocketFrame::Data {
            src: "party-0".to_string(),
            dst: dst.to_string(),
            seq,
            payload: payload.to_vec(),
        });
    }

    fn recv(&mut self) -> Option<SocketFrame> {
        let record = read_raw(&mut self.stream, &mut self.decoder)?;
        let plain = self.channel.open_msg(&record).expect("open record");
        Some(SocketFrame::decode(&plain).expect("decode frame"))
    }
}

/// Short-polls until one complete frame or EOF.
fn read_raw(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Option<Vec<u8>> {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = decoder.try_next().expect("well-formed stream") {
            return Some(frame);
        }
        assert!(Instant::now() < deadline, "hub went silent");
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::ConnectionReset => return None,
            Err(e) => panic!("rogue read failed: {e}"),
        }
    }
}

/// Polls until the hub records its first structured error.
fn wait_error(hub: &SocketHub) -> Result<SocketError, String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(e) = hub.first_error() {
            return Ok(e);
        }
        if Instant::now() >= deadline {
            return Err("the hub recorded no error".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The TCP-bridge drill set.
pub fn drills() -> Vec<Drill> {
    vec![
        Drill {
            id: "socket-frame-replay",
            claim: "the bridge rejects a re-sealed copy of an old logical \
                    frame and names the offending link (deta-socket \
                    replay window)",
            attack: "an authenticated peer re-sends its first upload \
                     frame, sealed as a fresh record",
            run: frame_replay,
        },
        Drill {
            id: "socket-frame-reorder",
            claim: "the bridge delivers frames strictly in per-link \
                    order; a future sequence number is rejected, not \
                    buffered",
            attack: "an authenticated peer opens its link with seq 5, \
                     hiding frames 0..5",
            run: frame_reorder,
        },
        Drill {
            id: "socket-reconnect-impersonation",
            claim: "a parked seat can only be resumed by the identity \
                    that opened it; a reconnect attempt under a \
                    different key is refused and the session survives \
                    for the real owner (deta-socket resume auth)",
            attack: "after a party's link drops mid-session, a rogue \
                     process reconnects to its parked seat answering \
                     the challenge with a self-generated key",
            run: reconnect_impersonation,
        },
        Drill {
            id: "socket-resume-replay",
            claim: "the per-link replay window survives a reconnect; a \
                    resumed peer re-sending an already-delivered frame \
                    is rejected with a structured error naming the link \
                    (deta-socket resume resync)",
            attack: "a party reconnects after an abrupt drop, completes \
                     the Resume/ResumeAck exchange, then re-sends its \
                     first upload frame sealed as a fresh record",
            run: resume_replay,
        },
        Drill {
            id: "socket-rogue-aggregator",
            claim: "an aggregator seat on the hub is bound to its \
                    attested token identity; a rogue binary without that \
                    identity never comes online (deta-socket auth)",
            attack: "a rogue process claims the agg-1 seat and answers \
                     the hub's challenge with a self-generated key",
            run: rogue_aggregator,
        },
    ]
}

fn frame_replay() -> Result<String, String> {
    let (hub, _network, agg, link) = start_hub();
    let mut rogue = Rogue::connect(hub.addr(), "party-0", &link).ok_or("auth refused")?;
    rogue.send_data("agg-0", 0, b"upload");
    agg.recv_timeout(Duration::from_secs(2))
        .map_err(|e| format!("honest frame not delivered: {e}"))?;
    rogue.send_data("agg-0", 0, b"upload");
    let err = wait_error(&hub)?;
    let observed = format!("SocketError::Replay — {err}");
    match err {
        SocketError::Replay {
            link,
            seq: 0,
            expected: 1,
        } if link == "party-0->agg-0" => {}
        other => return Err(format!("wrong rejection: {other}")),
    }
    if !matches!(
        agg.recv_timeout(Duration::from_millis(200)),
        Err(RecvError::Timeout)
    ) {
        return Err("the replayed frame was delivered".to_string());
    }
    hub.join();
    Ok(format!("{observed}; the duplicate was never delivered"))
}

fn frame_reorder() -> Result<String, String> {
    let (hub, _network, agg, link) = start_hub();
    let mut rogue = Rogue::connect(hub.addr(), "party-0", &link).ok_or("auth refused")?;
    rogue.send_data("agg-0", 5, b"late");
    let err = wait_error(&hub)?;
    let observed = format!("SocketError::Replay — {err}");
    match err {
        SocketError::Replay {
            link,
            seq: 5,
            expected: 0,
        } if link == "party-0->agg-0" => {}
        other => return Err(format!("wrong rejection: {other}")),
    }
    if !matches!(
        agg.recv_timeout(Duration::from_millis(200)),
        Err(RecvError::Timeout)
    ) {
        return Err("the out-of-order frame was delivered".to_string());
    }
    hub.join();
    Ok(format!("{observed}; the frame was never delivered"))
}

fn reconnect_impersonation() -> Result<String, String> {
    let (hub, network, agg, link) = start_hub();
    let mut rogue = Rogue::connect(hub.addr(), "party-0", &link).ok_or("auth refused")?;
    rogue.send_data("agg-0", 0, b"upload");
    agg.recv_timeout(Duration::from_secs(2))
        .map_err(|e| format!("honest frame not delivered: {e}"))?;
    // Abrupt loss: no Bye, so the hub parks the seat for reconnection.
    drop(rogue);
    std::thread::sleep(Duration::from_millis(200));
    if network.is_closed("party-0") {
        return Err("an abrupt drop closed the seat instead of parking it".to_string());
    }
    // The impostor tries to claim the parked seat with its own key.
    let rng = DetRng::from_u64(SEED);
    let self_generated = SigningKey::generate(&mut rng.fork(b"impostor"));
    if Rogue::connect(hub.addr(), "party-0", &self_generated).is_some() {
        return Err("an impostor resumed the parked party-0 seat".to_string());
    }
    let err = wait_error(&hub)?;
    let observed = format!("SocketError::Auth — {err}");
    match err {
        SocketError::Auth { peer, .. } if peer == "party-0" => {}
        other => return Err(format!("wrong rejection: {other}")),
    }
    // The session must survive the failed takeover: the real owner
    // reconnects and the link picks up at the next sequence number.
    let mut owner =
        Rogue::connect(hub.addr(), "party-0", &link).ok_or("the real owner could not resume")?;
    owner.send_data("agg-0", 1, b"resumed");
    agg.recv_timeout(Duration::from_secs(2))
        .map_err(|e| format!("post-resume frame not delivered: {e}"))?;
    hub.join();
    Ok(format!("{observed}; the real owner resumed and delivered"))
}

fn resume_replay() -> Result<String, String> {
    let (hub, _network, agg, link) = start_hub();
    let mut rogue = Rogue::connect(hub.addr(), "party-0", &link).ok_or("auth refused")?;
    rogue.send_data("agg-0", 0, b"upload-0");
    rogue.send_data("agg-0", 1, b"upload-1");
    for seq in 0..2u64 {
        agg.recv_timeout(Duration::from_secs(2))
            .map_err(|e| format!("honest frame {seq} not delivered: {e}"))?;
    }
    // Abrupt loss, then a reconnect that completes the explicit
    // Resume/ResumeAck exchange under the legitimate key.
    drop(rogue);
    std::thread::sleep(Duration::from_millis(200));
    let mut rogue = Rogue::connect(hub.addr(), "party-0", &link).ok_or("reconnect auth refused")?;
    rogue.send(&SocketFrame::Resume {
        src: "party-0".to_string(),
        windows: Vec::new(),
    });
    match rogue.recv() {
        Some(SocketFrame::ResumeAck { windows }) => {
            let expected = ("party-0".to_string(), "agg-0".to_string(), 2u64);
            if !windows.contains(&expected) {
                return Err(format!(
                    "ResumeAck must report next=2 for party-0->agg-0, got {windows:?}"
                ));
            }
        }
        other => return Err(format!("expected a ResumeAck, got {other:?}")),
    }
    // The attack: re-send the already-delivered first frame as if the
    // outage had reset the link's history.
    rogue.send_data("agg-0", 0, b"upload-0");
    let err = wait_error(&hub)?;
    let observed = format!("SocketError::Replay — {err}");
    match err {
        SocketError::Replay {
            link,
            seq: 0,
            expected: 2,
        } if link == "party-0->agg-0" => {}
        other => return Err(format!("wrong rejection: {other}")),
    }
    if !matches!(
        agg.recv_timeout(Duration::from_millis(200)),
        Err(RecvError::Timeout)
    ) {
        return Err("the replayed frame was delivered after resume".to_string());
    }
    hub.join();
    Ok(format!("{observed}; the window outlived the outage"))
}

fn rogue_aggregator() -> Result<String, String> {
    // The agg-1 seat is keyed by its attested token identity, which the
    // rogue does not hold.
    let network = Network::new(LinkModel::lan());
    let rng = DetRng::from_u64(SEED);
    let attested = SigningKey::generate(&mut rng.fork(b"agg-1-identity"));
    let seats = vec![HubSeat {
        name: "agg-1".to_string(),
        key: attested.verifying_key(),
        endpoint: network.register("agg-1"),
    }];
    let hub = SocketHub::bind(network.clone(), seats, SEED).map_err(|e| format!("bind: {e}"))?;
    let self_generated = SigningKey::generate(&mut rng.fork(b"rogue"));
    if Rogue::connect(hub.addr(), "agg-1", &self_generated).is_some() {
        return Err("a rogue binary was welcomed onto the agg-1 seat".to_string());
    }
    let err = wait_error(&hub)?;
    let observed = format!("SocketError::Auth — {err}");
    match err {
        SocketError::Auth { peer, .. } if peer == "agg-1" => {}
        other => return Err(format!("wrong rejection: {other}")),
    }
    if network.is_closed("agg-1") {
        return Err("the failed impostor closed the real seat's mailbox".to_string());
    }
    hub.join();
    Ok(format!("{observed}; the seat stayed live for its owner"))
}
