//! Secure-channel record drills: replay, reorder, and tamper at the
//! record layer of an established party ↔ aggregator channel.

use crate::Drill;
use deta_crypto::{DetRng, SigningKey};
use deta_transport::secure::{respond, HandshakeInitiator, SecureChannel, TransportError};

/// An honestly established channel pair (initiator view, responder
/// view), as after a successful Phase II handshake.
fn channel_pair(seed: u64) -> (SecureChannel, SecureChannel) {
    let rng = DetRng::from_u64(seed);
    let identity = SigningKey::generate(&mut rng.fork(b"identity"));
    let init = HandshakeInitiator::new(&mut rng.fork(b"init"));
    let (reply, responder) =
        respond(init.hello(), &identity, &mut rng.fork(b"resp")).expect("well-formed hello");
    let initiator = init
        .complete(&reply, &identity.verifying_key())
        .expect("honest handshake completes");
    (initiator, responder)
}

/// The record-layer drill set.
pub fn drills() -> Vec<Drill> {
    vec![
        Drill {
            id: "channel-record-replay",
            claim: "a sealed record cannot be delivered twice: the AEAD \
                    nonce is the receive counter, so replays fail \
                    authentication (DESIGN.md transport layer)",
            attack: "an on-path attacker re-delivers a captured upload \
                     record byte-for-byte",
            run: record_replay,
        },
        Drill {
            id: "channel-record-reorder",
            claim: "records are bound to their position in the stream; \
                    out-of-order delivery is rejected, not buffered",
            attack: "an on-path attacker delivers record 2 before \
                     record 1",
            run: record_reorder,
        },
        Drill {
            id: "channel-record-tamper",
            claim: "any bit flip in a sealed record is detected, and a \
                    failed open does not desynchronize the channel",
            attack: "an on-path attacker flips one ciphertext byte and \
                     forwards the record",
            run: record_tamper,
        },
    ]
}

fn record_replay() -> Result<String, String> {
    let (mut tx, mut rx) = channel_pair(0xC41);
    let first = tx.seal_msg(b"fragment-upload-1");
    rx.open_msg(&first)
        .map_err(|e| format!("honest delivery failed: {e}"))?;
    match rx.open_msg(&first) {
        Err(e @ TransportError::BadRecord) => {
            // The reject must not advance the window: honest traffic
            // continues.
            let second = tx.seal_msg(b"fragment-upload-2");
            rx.open_msg(&second)
                .map_err(|e| format!("replay reject desynchronized the channel: {e}"))?;
            Ok(format!(
                "TransportError::BadRecord — {e}: the replayed record \
                 reuses a spent nonce; honest traffic continues"
            ))
        }
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a replayed record was accepted twice".to_string()),
    }
}

fn record_reorder() -> Result<String, String> {
    let (mut tx, mut rx) = channel_pair(0xC42);
    let first = tx.seal_msg(b"fragment-upload-1");
    let second = tx.seal_msg(b"fragment-upload-2");
    match rx.open_msg(&second) {
        Err(e @ TransportError::BadRecord) => {
            // In-order delivery still works after the reject.
            rx.open_msg(&first)
                .map_err(|e| format!("reorder reject desynchronized the channel: {e}"))?;
            rx.open_msg(&second)
                .map_err(|e| format!("in-order redelivery failed: {e}"))?;
            Ok(format!(
                "TransportError::BadRecord — {e}: record 2 ahead of \
                 record 1 fails its sequence-bound nonce; in-order \
                 delivery then succeeds"
            ))
        }
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("an out-of-order record was accepted".to_string()),
    }
}

fn record_tamper() -> Result<String, String> {
    let (mut tx, mut rx) = channel_pair(0xC43);
    let sealed = tx.seal_msg(b"fragment-upload-1");
    let mut mangled = sealed.clone();
    let mid = mangled.len() / 2;
    mangled[mid] ^= 0x40;
    match rx.open_msg(&mangled) {
        Err(e @ TransportError::BadRecord) => {
            rx.open_msg(&sealed)
                .map_err(|e| format!("tamper reject desynchronized the channel: {e}"))?;
            Ok(format!(
                "TransportError::BadRecord — {e}: one flipped ciphertext \
                 byte breaks AEAD authentication; the intact record still \
                 opens"
            ))
        }
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a tampered record passed authentication".to_string()),
    }
}
