//! Phase I / Phase II attestation drills: counterfeit hardware, tampered
//! aggregator images, rogue aggregator binaries with forged tokens, and
//! replayed challenge responses.

use crate::Drill;
use deta_core::agg::AggKind;
use deta_core::aggregator::{AggRole, AggregatorNode};
use deta_core::mapper::ModelMapper;
use deta_core::party::{Party, PartyConfig, PartyError};
use deta_core::proxy::{AttestationProxy, TOKEN_SECRET_LABEL};
use deta_core::session::SyncMode;
use deta_core::transform::{TransformConfig, Transformer};
use deta_crypto::{DetRng, SigningKey};
use deta_datasets::DatasetSpec;
use deta_nn::models::mlp;
use deta_sev_sim::{AmdRas, GuestImage, Platform, SealedSecret, SevError};
use deta_transport::secure::{respond, HandshakeInitiator, TransportError};
use deta_transport::{LinkModel, Network};
use std::collections::HashMap;

/// The reference aggregator image the proxy attests against.
fn image() -> GuestImage {
    GuestImage::new(b"deta-ovmf-v1".to_vec(), b"deta-aggregator-v1".to_vec())
}

/// The Phase I / Phase II drill set.
pub fn drills() -> Vec<Drill> {
    vec![
        Drill {
            id: "phase1-counterfeit-platform",
            claim: "Phase I only provisions CVMs whose attestation report \
                    chains to a genuine AMD root (paper §4.1, step 1)",
            attack: "a counterfeit platform with a self-endorsed chip key \
                     launches the correct image and requests provisioning",
            run: counterfeit_platform,
        },
        Drill {
            id: "phase1-tampered-image",
            claim: "Phase I only provisions the *measured* aggregator \
                    build; a modified binary cannot receive the token key \
                    (paper §4.1, step 1)",
            attack: "a genuine platform launches an aggregator image with \
                     collusion code baked in and requests provisioning",
            run: tampered_image,
        },
        Drill {
            id: "phase2-forged-token",
            claim: "Phase II lets a party detect an aggregator that never \
                    passed Phase I, even one running on real hardware \
                    (paper §4.1, step 2)",
            attack: "a rogue aggregator binary joins setup with a \
                     self-injected forged token key and answers the \
                     party's challenge with it",
            run: forged_token,
        },
        Drill {
            id: "phase2-replayed-response",
            claim: "a captured Phase II challenge response cannot be \
                    replayed into another handshake: the signature binds \
                    the full transcript (DESIGN.md transport layer)",
            attack: "an attacker records a valid handshake response and \
                     replays it to a fresh party handshake",
            run: replayed_response,
        },
    ]
}

fn counterfeit_platform() -> Result<String, String> {
    let rng = DetRng::from_u64(0xA71);
    let ras = AmdRas::new(&mut rng.fork(b"ras"));
    let mut proxy = AttestationProxy::new(ras.root_certs(), image(), rng.fork(b"ap"));
    let mut fake = Platform::counterfeit("EPYC-CLONE", &mut rng.fork(b"fake"));
    match proxy.verify_and_provision(&mut fake, &image()) {
        Err(SevError::BadCertChain(why)) => Ok(format!(
            "SevError::BadCertChain — certificate chain invalid: {why}"
        )),
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a counterfeit platform was provisioned".to_string()),
    }
}

fn tampered_image() -> Result<String, String> {
    let rng = DetRng::from_u64(0xA72);
    let ras = AmdRas::new(&mut rng.fork(b"ras"));
    let mut proxy = AttestationProxy::new(ras.root_certs(), image(), rng.fork(b"ap"));
    let mut platform = Platform::genuine(&ras, "EPYC-7642-001", &mut rng.fork(b"plat"));
    let evil = GuestImage::new(
        b"deta-ovmf-v1".to_vec(),
        b"deta-aggregator-v1-collusion".to_vec(),
    );
    match proxy.verify_and_provision(&mut platform, &evil) {
        Err(e @ SevError::MeasurementMismatch { .. }) => Ok(format!(
            "SevError::MeasurementMismatch — {e}: the collusion build's \
             digest differs from the reference image"
        )),
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a tampered aggregator image was provisioned".to_string()),
    }
}

/// Builds the impostor scenario from live session parts: a genuine
/// `agg-0` is provisioned (its token lands in the proxy directory), but
/// the endpoint a party reaches is a rogue binary holding a forged,
/// self-injected token.
fn forged_token() -> Result<String, String> {
    let mut rng = DetRng::from_u64(0xA73);
    let ras = AmdRas::new(&mut rng.fork(b"ras"));
    let mut proxy = AttestationProxy::new(ras.root_certs(), image(), rng.fork(b"ap"));
    let mut platform = Platform::genuine(&ras, "EPYC-7642-001", &mut rng.fork(b"plat"));
    let genuine = proxy
        .verify_and_provision(&mut platform, &image())
        .map_err(|e| format!("genuine provisioning failed: {e}"))?;

    // The rogue binary runs the right image on real hardware, but its
    // token was injected outside the attestation flow.
    let (mut ctx, report) = platform.launch_measure(&image());
    let forged = SigningKey::generate(&mut rng.fork(b"forged"));
    let blob = SealedSecret::seal_to(&report, TOKEN_SECRET_LABEL, &forged.to_bytes(), &mut rng)
        .map_err(|e| format!("sealing the forged token failed: {e}"))?;
    ctx.inject_secret(&blob, &report.nonce)
        .map_err(|e| format!("injecting the forged token failed: {e}"))?;
    let rogue_cvm = ctx.finish();

    let net = Network::new(LinkModel::lan());
    let mut rogue = AggregatorNode::new(
        "agg-0",
        rogue_cvm,
        net.register("agg-0"),
        AggKind::IterativeAveraging.build(),
        AggRole::Initiator { followers: vec![] },
        rng.fork(b"agg"),
    )
    .map_err(|e| format!("rogue node failed to start: {e:?}"))?;

    let spec = DatasetSpec::mnist_like().at_resolution(8);
    let data = spec.generate(20, 1);
    let model = mlp(&[spec.dim(), 8, spec.classes], &mut rng.fork(b"model"));
    let mapper = ModelMapper::generate(model.param_count(), 1, None, &mut rng.fork(b"m"));
    let transformer = Transformer::new(mapper, [0u8; 32], TransformConfig::none());
    let mut party = Party::new(
        "party-0",
        net.register("party-0"),
        model,
        data,
        transformer,
        vec!["agg-0".to_string()],
        PartyConfig {
            local_epochs: 1,
            batch_size: 8,
            lr: 0.1,
            mode: SyncMode::FedAvg,
            n_parties: 1,
            grad_scale: 1.0,
            ldp: None,
        },
        rng.fork(b"party"),
    );
    // The party trusts what the *proxy* published for agg-0.
    let mut directory = HashMap::new();
    directory.insert("agg-0".to_string(), genuine.token_key.clone());
    party.send_hellos(&directory);
    rogue.pump();
    match party.complete_handshakes() {
        Err(e @ PartyError::AuthenticationFailed(_)) => Ok(format!(
            "PartyError::AuthenticationFailed — {e}: the forged token \
             does not match the proxy-published key"
        )),
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(()) => Err("the party registered with a rogue aggregator".to_string()),
    }
}

fn replayed_response() -> Result<String, String> {
    let rng = DetRng::from_u64(0xA74);
    let identity = SigningKey::generate(&mut rng.fork(b"identity"));
    let peer = identity.verifying_key();

    // A legitimate handshake the attacker records.
    let victim_a = HandshakeInitiator::new(&mut rng.fork(b"victim-a"));
    let (reply, _responder) = respond(victim_a.hello(), &identity, &mut rng.fork(b"resp"))
        .map_err(|e| format!("honest respond failed: {e}"))?;
    victim_a
        .complete(&reply, &peer)
        .map_err(|e| format!("honest handshake failed: {e}"))?;

    // The same bytes replayed into a fresh handshake.
    let victim_b = HandshakeInitiator::new(&mut rng.fork(b"victim-b"));
    match victim_b.complete(&reply, &peer) {
        Err(e @ TransportError::BadAuthentication) => Ok(format!(
            "TransportError::BadAuthentication — {e}: the replayed \
             response signs the recorded transcript, not this handshake"
        )),
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a replayed challenge response opened a channel".to_string()),
    }
}
