//! Failover drill: a token key breached out of a *retired* aggregator
//! incarnation must be dead — parties authenticate the replacement
//! incarnation against the fresh proxy-published key, so the stolen key
//! answers for nobody.

use crate::common;
use crate::Drill;
use deta_core::proxy::TOKEN_SECRET_LABEL;
use deta_core::session::DetaConfig;
use deta_crypto::{DetRng, SigningKey};
use deta_nn::models::mlp;
use deta_runtime::{FailoverPolicy, RuntimeConfig, StallFault, ThreadedSession};
use deta_transport::secure::{respond, HandshakeInitiator, TransportError};
use std::time::Duration;

/// The incarnation-retirement drill set.
pub fn drills() -> Vec<Drill> {
    vec![Drill {
        id: "failover-token-reuse",
        claim: "failover re-attests the replacement aggregator and \
                rotates its token; keys of the retired incarnation are \
                dead even if later breached (recovery layer, paper §4.1 \
                applied per incarnation)",
        attack: "after agg-1 is retired by a failover, an attacker \
                 breaches the dead CVM, extracts its token signing key, \
                 and answers a fresh party handshake with it",
        run: retired_token_is_dead,
    }]
}

fn retired_token_is_dead() -> Result<String, String> {
    let (shards, test, dim, classes) = common::fl_data(3);
    let mut cfg = DetaConfig::deta(3, 2);
    cfg.n_aggregators = 2;
    cfg.seed = 5;
    let rt = RuntimeConfig {
        round_deadline: Duration::from_secs(2),
        tick: Duration::from_millis(10),
        retry_initial: Duration::from_secs(3600),
        retry_max: Duration::from_secs(3600),
        stalls: vec![StallFault {
            node: "agg-1".to_string(),
            round: 1,
        }],
        failover: FailoverPolicy::Restart,
        ..RuntimeConfig::default()
    };
    let mut session =
        ThreadedSession::setup(cfg, &move |rng| mlp(&[dim, 12, classes], rng), shards, rt)
            .map_err(|e| format!("setup failed: {e}"))?;
    session
        .run(&test)
        .map_err(|e| format!("restart failover failed to heal: {e}"))?;
    if session.failover_count() == 0 {
        return Err("no failover occurred; nothing was retired".to_string());
    }
    let retired_name = session
        .retired_agg_names()
        .first()
        .cloned()
        .ok_or("failover retired no incarnation")?;
    let replacement_name = format!("{retired_name}#r1");
    let directory = session.token_directory();
    let retired_vk = directory
        .get(&retired_name)
        .cloned()
        .ok_or("retired incarnation missing from the token directory")?;
    let fresh_vk = directory
        .get(&replacement_name)
        .cloned()
        .ok_or("replacement incarnation missing from the token directory")?;
    if retired_vk.to_bytes() == fresh_vk.to_bytes() {
        return Err("failover reused the retired incarnation's token".to_string());
    }

    // Breach the dead CVM, as the paper's adversary may.
    let node = session
        .recovered_aggregator_named(&retired_name)
        .ok_or("retired incarnation unreachable for breach")?;
    let dump = node.cvm().breach();
    let stolen_bytes = dump
        .secrets
        .iter()
        .find(|(label, _)| label == TOKEN_SECRET_LABEL)
        .map(|(_, bytes)| bytes.clone())
        .ok_or("breach dump held no token material")?;
    let stolen = SigningKey::from_bytes(&stolen_bytes).ok_or("stolen material did not parse")?;
    if stolen.verifying_key().to_bytes() != retired_vk.to_bytes() {
        return Err("breach did not yield the retired incarnation's key".to_string());
    }
    session
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;

    // Mount: the attacker answers a fresh party handshake with the
    // stolen key; the party expects the replacement's published token.
    let rng = DetRng::from_u64(0xF41);
    let init = HandshakeInitiator::new(&mut rng.fork(b"party"));
    let (reply, _chan) = respond(init.hello(), &stolen, &mut rng.fork(b"attacker"))
        .map_err(|e| format!("attacker respond failed: {e}"))?;
    match init.complete(&reply, &fresh_vk) {
        Err(e @ TransportError::BadAuthentication) => Ok(format!(
            "TransportError::BadAuthentication — {e}: {retired_name}'s \
             breached key cannot answer for {replacement_name}; the \
             directory holds distinct keys for both incarnations"
        )),
        Err(e) => Err(format!("wrong rejection: {e}")),
        Ok(_) => Err("a retired incarnation's stolen token still authenticates".to_string()),
    }
}
