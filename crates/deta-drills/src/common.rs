//! Shared fixtures for drills that drive full FL sessions: a small
//! deterministic MNIST-like deployment matching the repo's integration
//! tests, and the parameter-distance metric the poisoning gates use.

use deta_datasets::{iid_partition, DatasetSpec};
use deta_nn::train::LabeledData;

/// A small MNIST-like workload split across `parties` shards, plus a
/// held-out test set and the model dimensions.
pub fn fl_data(parties: usize) -> (Vec<LabeledData>, LabeledData, usize, usize) {
    let spec = DatasetSpec::mnist_like().at_resolution(8);
    let train = spec.generate(80, 1);
    let test = spec.generate(40, 2);
    (
        iid_partition(&train, parties, 3),
        test,
        spec.dim(),
        spec.classes,
    )
}

/// Relative L2 distance `‖a − b‖ / ‖b‖` between two parameter vectors
/// (`b` is the reference). Infinite when the vectors disagree in length.
pub fn rel_l2(a: &[f32], b: &[f32]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        diff += (f64::from(*x) - f64::from(*y)).powi(2);
        norm += f64::from(*y).powi(2);
    }
    if norm == 0.0 {
        return if diff == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (diff / norm).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_l2_basics() {
        assert_eq!(rel_l2(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_l2(&[2.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert_eq!(rel_l2(&[1.0], &[1.0, 2.0]), f64::INFINITY);
    }
}
