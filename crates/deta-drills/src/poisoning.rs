//! Active model-poisoning drills: malicious parties mount sign-flip,
//! boosting, and collusion attacks against live sessions twice — once
//! under plain FedAvg, once under a robust rule — with the *same seed*.
//! The drill passes only when the numeric gates show FedAvg measurably
//! corrupted while the robust rule holds the aggregate near its clean
//! run. Rejection is asserted, not eyeballed.

use crate::common;
use crate::Drill;
use deta_attacks::PoisonKind;
use deta_core::agg::AggKind;
use deta_core::session::{DetaConfig, DetaSession};
use deta_nn::models::mlp;

const PARTIES: usize = 6;
const SEED: u64 = 33;

/// Final state of one 2-round run: an honest replica's parameters and
/// the end-of-run test accuracy.
struct RunOutcome {
    params: Vec<f32>,
    accuracy: f32,
}

/// Runs the standard drill deployment (6 parties, 3 aggregators,
/// partition + shuffle, 3 rounds) under `algorithm`, with `poisoners`
/// mounting `poison`. Enough data and local training that the clean
/// runs reach well-above-chance accuracy, giving the accuracy gate
/// headroom.
fn run_fl(
    algorithm: AggKind,
    poisoners: &[usize],
    poison: Option<PoisonKind>,
) -> Result<RunOutcome, String> {
    let spec = deta_datasets::DatasetSpec::mnist_like().at_resolution(8);
    let train = spec.generate(240, 1);
    let test = spec.generate(80, 2);
    let shards = deta_datasets::iid_partition(&train, PARTIES, 3);
    let (dim, classes) = (spec.dim(), spec.classes);
    let mut cfg = DetaConfig::deta(PARTIES, 3);
    cfg.algorithm = algorithm;
    cfg.seed = SEED;
    cfg.local_epochs = 2;
    cfg.lr = 0.3;
    let mut session = DetaSession::setup(cfg, &move |rng| mlp(&[dim, 16, classes], rng), shards)
        .map_err(|e| format!("setup failed: {e:?}"))?;
    if let Some(kind) = poison {
        for &i in poisoners {
            session.party_mut(i).set_update_tamper(kind.tamper());
        }
    }
    let metrics = session.run(&test);
    let last = metrics.last().ok_or("no rounds completed")?;
    Ok(RunOutcome {
        // Replicas are synchronized after each round; read an honest one.
        params: session.party_params(PARTIES - 1),
        accuracy: last.test_accuracy,
    })
}

/// Same-seed quartet: clean and poisoned runs under FedAvg and under the
/// robust rule.
struct Quartet {
    drift_mean: f64,
    drift_robust: f64,
    acc_drop_mean: f32,
    acc_drop_robust: f32,
}

fn quartet(robust: AggKind, poisoners: &[usize], poison: PoisonKind) -> Result<Quartet, String> {
    let clean_mean = run_fl(AggKind::IterativeAveraging, &[], None)?;
    let bad_mean = run_fl(AggKind::IterativeAveraging, poisoners, Some(poison))?;
    let clean_robust = run_fl(robust, &[], None)?;
    let bad_robust = run_fl(robust, poisoners, Some(poison))?;
    Ok(Quartet {
        drift_mean: common::rel_l2(&bad_mean.params, &clean_mean.params),
        drift_robust: common::rel_l2(&bad_robust.params, &clean_robust.params),
        acc_drop_mean: clean_mean.accuracy - bad_mean.accuracy,
        acc_drop_robust: clean_robust.accuracy - bad_robust.accuracy,
    })
}

impl Quartet {
    /// The shared numeric gate: the poison must drag FedAvg's final
    /// parameters far from its clean run while the robust rule stays
    /// close, with a wide margin between the two drifts.
    fn assert_rejected(&self, rule: &str, accuracy_gate: bool) -> Result<String, String> {
        let detail = format!(
            "update-distance gate: FedAvg drift {:.3} vs {rule} drift {:.3} \
             (relative L2 of final parameters, poisoned vs clean, same seed); \
             accuracy drop {:.3} vs {:.3}",
            self.drift_mean, self.drift_robust, self.acc_drop_mean, self.acc_drop_robust,
        );
        if self.drift_mean < 1.0 {
            return Err(format!("the poison barely moved FedAvg — {detail}"));
        }
        if self.drift_robust > 0.5 {
            return Err(format!("the robust rule drifted too — {detail}"));
        }
        if self.drift_mean < 10.0 * self.drift_robust {
            return Err(format!("no clear margin between the rules — {detail}"));
        }
        if accuracy_gate {
            if self.acc_drop_mean < 0.1 {
                return Err(format!("FedAvg accuracy survived the poison — {detail}"));
            }
            if self.acc_drop_robust.abs() > 0.1 {
                return Err(format!("{rule} accuracy moved under poison — {detail}"));
            }
        }
        Ok(format!("{rule} rejected the poison — {detail}"))
    }
}

/// The model-poisoning drill set.
pub fn drills() -> Vec<Drill> {
    vec![
        Drill {
            id: "poison-sign-flip-krum",
            claim: "Krum excludes a sign-flipping party that corrupts \
                    plain FedAvg under identical seed, data, and \
                    partitioning (paper §7.1 robust aggregation)",
            attack: "party-0 uploads -50x its honest update every round",
            run: sign_flip_vs_krum,
        },
        Drill {
            id: "poison-boost-flame",
            claim: "FLAME-lite's norm clipping neutralizes a boosted \
                    update that dominates plain FedAvg",
            attack: "party-0 uploads 100x its honest update every round",
            run: boost_vs_flame,
        },
        Drill {
            id: "poison-collusion-krum",
            claim: "Krum with f=2 rejects a colluding pair uploading an \
                    identical crafted point (a tight hostile cluster \
                    distance-based rules must not mistake for consensus)",
            attack: "party-0 and party-1 both upload the same crafted \
                     +/-25 pattern every round",
            run: collusion_vs_krum,
        },
    ]
}

fn sign_flip_vs_krum() -> Result<String, String> {
    let q = quartet(
        AggKind::Krum { f: 1 },
        &[0],
        PoisonKind::SignFlip { scale: 50.0 },
    )?;
    q.assert_rejected("Krum{f:1}", true)
}

fn boost_vs_flame() -> Result<String, String> {
    let q = quartet(
        AggKind::FlameLite,
        &[0],
        PoisonKind::ScaledUpdate { factor: 100.0 },
    )?;
    // Pure positive scaling can preserve the argmax, so accuracy is not
    // a reliable corruption signal here; the distance gate is.
    q.assert_rejected("FLAME-lite", false)
}

fn collusion_vs_krum() -> Result<String, String> {
    let q = quartet(
        AggKind::Krum { f: 2 },
        &[0, 1],
        PoisonKind::Collusion { magnitude: 25.0 },
    )?;
    q.assert_rejected("Krum{f:2}", true)
}
