//! Runs the adversarial drill catalog and renders the machine-checked
//! report. Exits non-zero when any drill FAILs, so CI can gate on it.
//!
//! Usage: `security_drills [--out PATH]` (default
//! `results/SECURITY_DRILLS.md`, relative to the working directory).

use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: security_drills [--out PATH]");
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from("results/SECURITY_DRILLS.md");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut reports = Vec::new();
    for drill in deta_drills::catalog() {
        let report = deta_drills::run_one(&drill);
        eprintln!(
            "{} {}",
            if report.pass { "PASS" } else { "FAIL" },
            report.id
        );
        if !report.pass {
            eprintln!("     {}", report.observed);
        }
        reports.push(report);
    }

    let markdown = deta_drills::render_markdown(&reports);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create report directory");
        }
    }
    std::fs::write(&out, markdown).expect("write drill report");

    let passed = reports.iter().filter(|r| r.pass).count();
    eprintln!(
        "{passed}/{} drills passed; report: {}",
        reports.len(),
        out.display()
    );
    if passed != reports.len() {
        exit(1);
    }
}
