//! Stale-state drills against a live sequential session: a breached
//! aggregator replaying old aggregates into parties, and a party
//! replaying old uploads into aggregators. Both must be absorbed by the
//! round guards without touching any replica.

use crate::common;
use crate::Drill;
use deta_core::session::{DetaConfig, DetaSession};
use deta_core::wire::Msg;
use deta_nn::models::mlp;
use deta_nn::train::LabeledData;
use std::time::Duration;

/// A completed 3-party, 3-aggregator, 2-round session left live for
/// post-hoc injection.
fn finished_session(seed: u64) -> Result<(DetaSession, LabeledData), String> {
    let (shards, test, dim, classes) = common::fl_data(3);
    let mut cfg = DetaConfig::deta(3, 2);
    cfg.seed = seed;
    let mut session = DetaSession::setup(cfg, &move |rng| mlp(&[dim, 12, classes], rng), shards)
        .map_err(|e| format!("setup failed: {e:?}"))?;
    session.run(&test);
    Ok((session, test))
}

/// The stale-state drill set.
pub fn drills() -> Vec<Drill> {
    vec![
        Drill {
            id: "stale-aggregated-injection",
            claim: "a party only applies an Aggregated fragment for a \
                    round newer than its last finished round; a breached \
                    aggregator cannot rewrite history (wire round guard)",
            attack: "a compromised aggregator pushes a poisoned \
                     Msg::Aggregated for an already-finished round over \
                     its live secure channel",
            run: stale_aggregated_injection,
        },
        Drill {
            id: "stale-upload-replay",
            claim: "aggregators discard uploads for completed rounds; a \
                    replayed upload can neither re-open a round nor leave \
                    pending state behind (aggregator round guard)",
            attack: "a party re-sends its sealed round-2 upload to every \
                     aggregator after the round completed",
            run: stale_upload_replay,
        },
    ]
}

fn stale_aggregated_injection() -> Result<String, String> {
    let (mut session, _test) = finished_session(11)?;
    let before = session.party_params(0);
    // The compromised aggregator speaks over its genuine channel, so the
    // record decrypts fine — only the round guard stands.
    session.aggregator_mut(0).drill_send_sealed(
        "party-0",
        &Msg::Aggregated {
            round: 1,
            fragment: vec![9.9; 16],
        },
    );
    let mailbox = session.party_mut(0).endpoint();
    let mut delivered = 0;
    while let Ok(msg) = mailbox.recv_timeout(Duration::from_millis(100)) {
        let from = msg.from.to_string();
        session.party_mut(0).handle_wire(&from, &msg.payload);
        delivered += 1;
    }
    if delivered == 0 {
        return Err("the injected record never arrived".to_string());
    }
    if session.party_mut(0).last_finished_round() != 2 {
        return Err("the stale aggregate rewound the party's round state".to_string());
    }
    if session.party_params(0) != before {
        return Err("a stale Msg::Aggregated mutated the replica".to_string());
    }
    Ok(
        "stale-round guard — Msg::Aggregated for round 1 decrypted at \
        finished round 2, counted as ignored wire traffic, and dropped; \
        replica parameters bit-identical"
            .to_string(),
    )
}

fn stale_upload_replay() -> Result<String, String> {
    let (mut session, _test) = finished_session(12)?;
    let before = session.party_params(1);
    if !session.party_mut(0).replay_upload(2) {
        return Err("party-0 held no stored upload for round 2".to_string());
    }
    let n_aggs = session.config.n_aggregators;
    let mut absorbed = 0;
    for j in 0..n_aggs {
        absorbed += session.aggregator_mut(j).pump();
    }
    if absorbed == 0 {
        return Err("the replayed uploads never arrived".to_string());
    }
    for j in 0..n_aggs {
        if !session.aggregator_mut(j).pending_uploads().is_empty() {
            return Err(format!(
                "aggregator {j} kept a replayed upload pending; a later \
                 quorum could re-aggregate round 2"
            ));
        }
    }
    let mailbox = session.party_mut(0).endpoint();
    if mailbox.recv_timeout(Duration::from_millis(100)).is_ok() {
        return Err("an aggregator answered a replayed upload".to_string());
    }
    if session.party_params(1) != before {
        return Err("a replayed upload changed the aggregate".to_string());
    }
    Ok("completed-round guard — the replayed round-2 Upload was \
        discarded by every aggregator: no pending state, no Aggregated \
        response, replicas unchanged"
        .to_string())
}
