//! Adversarial drill suite: machine-checked falsification attempts
//! against the DeTA threat model.
//!
//! Each [`Drill`] mounts one concrete attack from the paper's threat
//! model — a tampered launch measurement, a replayed Phase II response,
//! a re-sealed frame on the TCP bridge, a breached-and-retired token
//! key, a model-poisoning party — against a *live* session or protocol
//! object, and passes only when the system rejects the attack with the
//! exact structured error the design promises. A drill that observes
//! the wrong error, or sees the attack succeed, FAILs.
//!
//! The `security_drills` binary renders the catalog into
//! `results/SECURITY_DRILLS.md`; `scripts/check.sh` regenerates that
//! report and diffs it against the committed copy, so any FAIL, any
//! drift in the observed rejections, and any drop in the drill count
//! breaks CI. The drill ↔ paper-claim mapping lives in `DESIGN.md` §14.

pub mod attest;
pub mod channel;
pub mod common;
pub mod failover;
pub mod poisoning;
pub mod socket;
pub mod stale;

/// One adversarial drill: a named attack against a named claim, whose
/// `run` either observes the promised structured rejection (`Ok` with a
/// human-readable description of it) or reports how the attack got
/// through (`Err`).
pub struct Drill {
    /// Stable kebab-case identifier (the report's primary key).
    pub id: &'static str,
    /// The threat-model claim under attack, as stated by the paper or
    /// the design docs.
    pub claim: &'static str,
    /// The concrete attack this drill mounts.
    pub attack: &'static str,
    /// Mounts the attack. `Ok(observed)` describes the structured
    /// rejection; `Err(why)` explains the falsification.
    pub run: fn() -> Result<String, String>,
}

/// The outcome of one drill, ready for rendering.
pub struct DrillReport {
    /// The drill's identifier.
    pub id: &'static str,
    /// The attacked claim.
    pub claim: &'static str,
    /// The mounted attack.
    pub attack: &'static str,
    /// The rejection observed (PASS) or the failure detail (FAIL).
    pub observed: String,
    /// Whether the system rejected the attack as promised.
    pub pass: bool,
}

/// The full drill catalog, in report order.
pub fn catalog() -> Vec<Drill> {
    let mut out = Vec::new();
    out.extend(attest::drills());
    out.extend(channel::drills());
    out.extend(socket::drills());
    out.extend(failover::drills());
    out.extend(stale::drills());
    out.extend(poisoning::drills());
    out
}

/// Executes one drill.
pub fn run_one(drill: &Drill) -> DrillReport {
    let (observed, pass) = match (drill.run)() {
        Ok(observed) => (observed, true),
        Err(why) => (why, false),
    };
    DrillReport {
        id: drill.id,
        claim: drill.claim,
        attack: drill.attack,
        observed,
        pass,
    }
}

/// Executes the whole catalog sequentially.
pub fn run_all() -> Vec<DrillReport> {
    catalog().iter().map(run_one).collect()
}

/// Markdown cells may not contain the table delimiter.
fn cell(text: &str) -> String {
    text.replace('|', "/").replace('\n', " ")
}

/// Renders the report table. Deterministic: every cell derives from
/// drill definitions and structured error `Display` output only — no
/// timings, addresses, or environment state.
pub fn render_markdown(reports: &[DrillReport]) -> String {
    let passed = reports.iter().filter(|r| r.pass).count();
    let mut md = String::new();
    md.push_str("# Security drills\n\n");
    md.push_str(
        "Machine-checked falsification attempts against the DeTA threat \
         model. Each row mounts a concrete active attack against a live \
         session, protocol object, or the TCP bridge; PASS means the \
         attack was rejected with the structured error shown. The \
         drill ↔ paper-claim mapping is documented in `DESIGN.md` §14.\n\n\
         Regenerated and diffed by `scripts/check.sh` (`drills` stage): \
         any FAIL, any drift in an observed rejection, or a drop in the \
         drill count fails the gate.\n\n",
    );
    md.push_str(&format!(
        "Verdict: **{passed}/{} drills PASS**.\n\n",
        reports.len()
    ));
    md.push_str(
        "| # | drill | attacked claim | mounted attack | structured rejection observed | verdict |\n\
         |--:|-------|----------------|----------------|-------------------------------|---------|\n",
    );
    for (i, r) in reports.iter().enumerate() {
        md.push_str(&format!(
            "| {} | `{}` | {} | {} | {} | {} |\n",
            i + 1,
            r.id,
            cell(r.claim),
            cell(r.attack),
            cell(&r.observed),
            if r.pass { "PASS" } else { "**FAIL**" },
        ));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_sufficient() {
        let drills = catalog();
        assert!(
            drills.len() >= 10,
            "the catalog must hold at least ten drills, found {}",
            drills.len()
        );
        let mut ids: Vec<&str> = drills.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), drills.len(), "drill ids must be unique");
    }

    #[test]
    fn render_escapes_table_delimiters() {
        let report = DrillReport {
            id: "x",
            claim: "a|b",
            attack: "c\nd",
            observed: "e|f".to_string(),
            pass: false,
        };
        let md = render_markdown(&[report]);
        assert!(md.contains("| a/b | c d | e/f | **FAIL** |"));
        assert!(md.contains("**0/1 drills PASS**"));
    }
}
