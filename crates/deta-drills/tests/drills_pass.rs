//! The entire drill catalog must PASS: every mounted attack is rejected
//! with its promised structured error. `scripts/check.sh` additionally
//! regenerates the rendered report and diffs it against the committed
//! copy, which pins the observed rejections across runs.

#[test]
fn every_drill_is_rejected() {
    let reports = deta_drills::run_all();
    assert!(
        reports.len() >= 10,
        "the catalog must hold at least ten drills, found {}",
        reports.len()
    );
    let failures: Vec<String> = reports
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("{}: {}", r.id, r.observed))
        .collect();
    assert!(
        failures.is_empty(),
        "drills found falsified claims:\n{}",
        failures.join("\n")
    );
    // Every PASS row must actually describe a structured rejection or
    // an asserted numeric gate, not an empty string.
    for r in &reports {
        assert!(
            !r.observed.is_empty(),
            "drill {} passed without naming its rejection",
            r.id
        );
    }
}
