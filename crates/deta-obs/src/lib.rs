//! deta-obs: merged-trace analysis for DeTA deployments.
//!
//! The runtime's flight recorders (deta-telemetry) capture per-node
//! spans and events; with the socket bridge each *process* holds its
//! own rings on its own monotonic clock. This crate turns that pile of
//! per-process JSONL into answers (see DESIGN.md §15):
//!
//! * [`record`] — parse the workspace's trace schema back into owned
//!   records (a narrow, total JSON reader in [`json`]; no external
//!   dependencies, like everything else here).
//! * [`merge`] — put every process on one timeline: apply the socket
//!   handshake's probe/echo clock offsets, then enforce causality
//!   (`net_send` before its `net_recv`) via longest-path relaxation of
//!   the per-process shift, so the merged order respects every causal
//!   edge regardless of how wrong the first-order estimates were.
//! * [`report`] — walk each round's blocking chain backwards from its
//!   last record to attribute wall time to named spans, transport +
//!   mailbox queueing, and queue-wait/barrier idle (the measurement
//!   ROADMAP item #1 asks for), plus span-volume phase breakdowns.
//! * [`perfetto`] — export the merged trace as a chrome-trace-event
//!   document loadable in Perfetto for visual inspection.
//!
//! Sealed payloads never appear in traces (deta-lint rule 6); the
//! analysis here consequently sees only ids, sizes, and timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod merge;
pub mod perfetto;
pub mod record;
pub mod report;

pub use json::Json;
pub use merge::{merge, Edge, MergedTrace, ProcessTrace};
pub use perfetto::chrome_trace;
pub use record::{parse_jsonl, ObsRecord, ParsedTrace};
pub use report::{fmt_ns, phase_of, phase_totals, round_reports, RoundReport, IDLE, TRANSPORT};
