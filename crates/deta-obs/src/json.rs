//! A minimal recursive-descent JSON reader for the trace schema this
//! workspace emits (see `results/traces/README.md`).
//!
//! Numbers are kept as their raw text: trace message ids are
//! `(pid << 40) | counter`, which exceeds the 2^53 range `f64` can
//! represent exactly, so parsing every number through a float would
//! silently corrupt the causal edges the merge step depends on. Callers
//! ask for the view they need ([`Json::as_u64`], [`Json::as_f64`], ...)
//! and only that conversion is performed.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see module docs).
    Num(String),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (our schema never repeats keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; `None` on any syntax error or
    /// trailing garbage. Total: never panics on arbitrary input.
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a number that parses
    /// as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a number that parses as
    /// one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON. Numbers round-trip
    /// byte-for-byte because their source text was kept.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for inclusion inside a JSON string literal
/// (mirrors the telemetry emitter's escaping).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nesting cap: trace lines are two levels deep; anything deeper is not
/// ours and must not recurse unboundedly.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'n' => self.literal("null").then_some(Json::Null),
            b't' => self.literal("true").then_some(Json::Bool(true)),
            b'f' => self.literal("false").then_some(Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        // Must parse as a float to be a number at all (rejects "-", "1.").
        raw.parse::<f64>().ok()?;
        Some(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            // Our emitter only writes \u for control
                            // chars; treat unpaired surrogates as the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Copy one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    if (b as u32) < 0x20 {
                        return None;
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[');
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return Some(Json::Arr(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{');
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return Some(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_schema_v2_line() {
        let line = "{\"t_ns\":9,\"node\":\"agg-0\",\"kind\":\"event\",\"name\":\"net_send\",\
                    \"trace_id\":4,\"parent\":1099511627777,\
                    \"fields\":{\"msg_id\":1099511627778,\"to\":\"party-0\",\"bytes\":512}}";
        let v = Json::parse(line).expect("schema line must parse");
        assert_eq!(v.get("t_ns").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("node").unwrap().as_str(), Some("agg-0"));
        assert_eq!(v.get("parent").unwrap().as_u64(), Some(1_099_511_627_777));
        let fields = v.get("fields").unwrap();
        // Above 2^53: must survive exactly, not via f64.
        assert_eq!(
            fields.get("msg_id").unwrap().as_u64(),
            Some(1_099_511_627_778)
        );
    }

    #[test]
    fn big_integers_round_trip_exactly() {
        let raw = format!("{{\"msg_id\":{}}}", (u64::from(u32::MAX) << 40) | 7);
        let v = Json::parse(&raw).unwrap();
        let mut out = String::new();
        v.render(&mut out);
        assert_eq!(out, raw);
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"\\x\"",
            "1 2",
            "{\"a\" 1}",
            "-",
            "\u{1}",
            "[[[[",
        ] {
            assert!(Json::parse(bad).is_none(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0007\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\t\u{7}"));
        let mut out = String::new();
        v.render(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\t\\u0007\"");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_none());
    }
}
