//! Merging per-process flight-recorder rings onto one timeline.
//!
//! Each process timestamps records with its *own* monotonic clock
//! (nanoseconds since that process's telemetry epoch), so raw rings are
//! mutually incomparable. The socket hub measures a first-order offset
//! per child during the handshake (probe/echo midpoint — see
//! `deta-socket`), which this module applies and then *corrects* using
//! the causality the trace itself carries: a message cannot be received
//! before it was sent, so every `net_send` → `net_recv` pair with a
//! shared `msg_id` is a hard one-sided constraint on the two processes'
//! relative clocks.
//!
//! The correction is a longest-path relaxation over the difference
//! constraints `shift(recv_proc) − shift(send_proc) ≥ t_send − t_recv`.
//! The constraint system is always feasible (the real execution
//! satisfied every edge in true time, and within one process both sides
//! share a clock), so Bellman–Ford-style passes converge in at most
//! `processes` rounds.

use crate::record::ObsRecord;
use std::collections::HashMap;

/// One process's drained ring, plus its handshake clock offset.
#[derive(Clone, Debug)]
pub struct ProcessTrace {
    /// Display label (the hosted node's name, or `coordinator`).
    pub label: String,
    /// First-order clock offset in ns: this process's clock minus the
    /// coordinator's, as estimated by the handshake probe/echo. 0 for
    /// the coordinator itself.
    pub offset_ns: i64,
    /// The ring's records, in emit order, raw per-process timestamps.
    pub records: Vec<ObsRecord>,
}

/// One causal send→recv edge in the merged trace.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// The message id both endpoints logged.
    pub msg_id: u64,
    /// Index of the `net_send` event in [`MergedTrace::records`].
    pub send: usize,
    /// Index of the `net_recv` event in [`MergedTrace::records`].
    pub recv: usize,
}

/// The merged, clock-aligned, causally-consistent trace.
#[derive(Clone, Debug, Default)]
pub struct MergedTrace {
    /// All records on the common timeline, sorted by `t_ns` (which has
    /// been normalized so the earliest record sits at 0).
    pub records: Vec<ObsRecord>,
    /// Every matched send→recv pair, by record index.
    pub edges: Vec<Edge>,
    /// Residual causal correction applied per process, in ns, on top of
    /// the handshake offset (diagnostic: how far the probe/echo estimate
    /// was off).
    pub shifts: Vec<(String, i64)>,
}

/// Merges per-process rings: applies handshake offsets, matches causal
/// edges by `msg_id`, corrects residual clock skew so every edge
/// satisfies `send ≤ recv`, and normalizes the timeline to start at 0.
pub fn merge(procs: Vec<ProcessTrace>) -> MergedTrace {
    // Flatten, remembering each record's process and applying the
    // first-order offset (coordinator time = child time − offset).
    let mut records: Vec<ObsRecord> = Vec::new();
    let mut proc_of: Vec<usize> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (p, pt) in procs.into_iter().enumerate() {
        labels.push(pt.label);
        for mut rec in pt.records {
            rec.t_ns = rec.t_ns.saturating_sub(pt.offset_ns);
            records.push(rec);
            proc_of.push(p);
        }
    }

    // Causal edges: match net_send/net_recv on msg_id. Sends are unique
    // by construction (per-process counter); a recv without its send
    // (ring overflow, filtered trace) simply yields no edge.
    let mut send_at: HashMap<u64, usize> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.name == "net_send" {
            if let Some(id) = rec.field_u64("msg_id") {
                send_at.insert(id, i);
            }
        }
    }
    let mut edges: Vec<Edge> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.name == "net_recv" {
            if let Some(id) = rec.field_u64("msg_id") {
                if let Some(&s) = send_at.get(&id) {
                    edges.push(Edge {
                        msg_id: id,
                        send: s,
                        recv: i,
                    });
                }
            }
        }
    }

    // Longest-path relaxation of the cross-process difference
    // constraints. Feasibility bounds the pass count at the process
    // count; the extra pass detects a (theoretically impossible)
    // non-converging system and stops rather than spinning.
    let nprocs = labels.len();
    let mut shift = vec![0i64; nprocs];
    for _pass in 0..=nprocs {
        let mut changed = false;
        for e in &edges {
            let (ps, pr) = (proc_of[e.send], proc_of[e.recv]);
            if ps == pr {
                continue;
            }
            let t_send = records[e.send].t_ns + shift[ps];
            let t_recv = records[e.recv].t_ns + shift[pr];
            if t_send > t_recv {
                shift[pr] += t_send - t_recv;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (i, rec) in records.iter_mut().enumerate() {
        rec.t_ns += shift[proc_of[i]];
    }

    // Normalize so the merged timeline starts at zero, then sort.
    // Sorting must keep edge indices valid, so sort a permutation.
    let t0 = records.iter().map(|r| r.t_ns).min().unwrap_or(0);
    for rec in &mut records {
        rec.t_ns -= t0;
    }
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| (records[i].t_ns, proc_of[i], i));
    let mut rank = vec![0usize; records.len()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        rank[old_idx] = new_idx;
    }
    let mut sorted: Vec<Option<ObsRecord>> = records.into_iter().map(Some).collect();
    let records: Vec<ObsRecord> = order
        .iter()
        .map(|&i| {
            sorted[i]
                .take()
                .expect("permutation visits each index once")
        })
        .collect();
    for e in &mut edges {
        e.send = rank[e.send];
        e.recv = rank[e.recv];
    }
    edges.sort_by_key(|e| e.recv);

    MergedTrace {
        records,
        edges,
        shifts: labels.into_iter().zip(shift).collect(),
    }
}

impl MergedTrace {
    /// True when every matched causal edge satisfies `send ≤ recv` on
    /// the merged timeline — the invariant [`merge`] exists to restore.
    pub fn causally_consistent(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.records[e.send].t_ns <= self.records[e.recv].t_ns)
    }

    /// Renders the merged trace as schema-v2 JSONL, ending with a
    /// `meta` line naming `implicated` nodes and per-node ring
    /// overflow counts.
    pub fn to_jsonl(&self, implicated: &[String], overflow: &[(String, u64)]) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        let last = self.records.last().map_or(0, ObsRecord::end_ns);
        out.push_str(&format!(
            "{{\"t_ns\":{last},\"kind\":\"meta\",\"implicated\":["
        ));
        for (i, n) in implicated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", crate::json::escape(n)));
        }
        out.push_str("],\"ring_overflow\":{");
        for (i, (node, count)) in overflow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{count}", crate::json::escape(node)));
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: i64, node: &str, name: &str, msg_id: u64) -> ObsRecord {
        ObsRecord {
            t_ns: t,
            node: node.to_string(),
            span: false,
            name: name.to_string(),
            dur_ns: 0,
            trace_id: 1,
            parent: 0,
            fields: vec![(
                "msg_id".to_string(),
                crate::json::Json::Num(msg_id.to_string()),
            )],
        }
    }

    #[test]
    fn handshake_offsets_are_applied() {
        let coord = ProcessTrace {
            label: "coordinator".into(),
            offset_ns: 0,
            records: vec![ev(1_000, "supervisor", "net_send", 7)],
        };
        let child = ProcessTrace {
            label: "party-0".into(),
            offset_ns: 500_000, // child clock runs 500µs ahead
            records: vec![ev(502_000, "party-0", "net_recv", 7)],
        };
        let merged = merge(vec![coord, child]);
        assert!(merged.causally_consistent());
        let recv = merged
            .records
            .iter()
            .find(|r| r.name == "net_recv")
            .unwrap();
        assert_eq!(recv.t_ns, 1_000); // 502_000 − 500_000 − t0(1_000) + 1_000
    }

    #[test]
    fn causal_edges_override_a_bad_offset_estimate() {
        // The handshake says the clocks agree, but the child's recv
        // lands "before" the coordinator's send: the edge must push the
        // child later.
        let coord = ProcessTrace {
            label: "coordinator".into(),
            offset_ns: 0,
            records: vec![ev(10_000, "supervisor", "net_send", 1)],
        };
        let child = ProcessTrace {
            label: "agg-0".into(),
            offset_ns: 0,
            records: vec![
                ev(2_000, "agg-0", "net_recv", 1),
                ev(3_000, "agg-0", "net_send", 2),
            ],
        };
        let merged = merge(vec![coord, child]);
        assert!(merged.causally_consistent());
        // The whole child process shifted by one amount (8µs).
        assert_eq!(merged.shifts[1], ("agg-0".to_string(), 8_000));
        let recv = merged
            .records
            .iter()
            .find(|r| r.name == "net_recv")
            .unwrap();
        let send2 = merged
            .records
            .iter()
            .find(|r| r.name == "net_send" && r.node == "agg-0")
            .unwrap();
        assert_eq!(
            send2.t_ns - recv.t_ns,
            1_000,
            "intra-process gaps are preserved"
        );
    }

    #[test]
    fn relay_chains_propagate_shifts_transitively() {
        // A → B → C where both estimates are wrong: correcting B must
        // then re-correct C through the second edge.
        let a = ProcessTrace {
            label: "a".into(),
            offset_ns: 0,
            records: vec![ev(100, "a", "net_send", 1)],
        };
        let b = ProcessTrace {
            label: "b".into(),
            offset_ns: 0,
            records: vec![ev(10, "b", "net_recv", 1), ev(20, "b", "net_send", 2)],
        };
        let c = ProcessTrace {
            label: "c".into(),
            offset_ns: 0,
            records: vec![ev(50, "c", "net_recv", 2)],
        };
        let merged = merge(vec![a, b, c]);
        assert!(merged.causally_consistent());
        // b shifted +90 (recv 1 at 100); its send 2 lands at 110, so c
        // must shift +60 to put recv 2 at 110.
        assert_eq!(merged.shifts[1].1, 90);
        assert_eq!(merged.shifts[2].1, 60);
    }

    #[test]
    fn timeline_is_normalized_and_meta_line_rendered() {
        let solo = ProcessTrace {
            label: "coordinator".into(),
            offset_ns: 0,
            records: vec![ev(5_000, "supervisor", "round_begin", 3)],
        };
        let merged = merge(vec![solo]);
        assert_eq!(merged.records[0].t_ns, 0);
        let jsonl = merged.to_jsonl(&["agg-1".to_string()], &[("party-0".to_string(), 2)]);
        assert!(jsonl.ends_with(
            "{\"t_ns\":0,\"kind\":\"meta\",\"implicated\":[\"agg-1\"],\
             \"ring_overflow\":{\"party-0\":2}}\n"
        ));
        // The merged file must parse back with the same record count.
        let back = crate::record::parse_jsonl(&jsonl);
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.implicated, vec!["agg-1".to_string()]);
    }
}
