//! Owned trace records parsed back from flight-recorder JSONL.
//!
//! The telemetry crate's in-memory [`TelemetryRecord`] uses `&'static
//! str` names, so records that crossed a process boundary (shipped as
//! rendered JSONL over the socket bridge) cannot be reconstructed as
//! that type. [`ObsRecord`] is the owned equivalent the analysis layer
//! works on.
//!
//! [`TelemetryRecord`]: ../../deta_telemetry/struct.TelemetryRecord.html

use crate::json::Json;

/// One span or event, parsed from a schema-v2 trace line.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsRecord {
    /// Timestamp in nanoseconds. Raw per-process monotonic time at
    /// parse; rebased onto the merged timeline by [`crate::merge`].
    /// Signed so clock alignment can shift it below zero before the
    /// final normalization.
    pub t_ns: i64,
    /// Node the record is attributed to.
    pub node: String,
    /// `true` for spans (timed), `false` for events (instantaneous).
    pub span: bool,
    /// Record name (`local_train`, `net_send`, ...).
    pub name: String,
    /// Span duration in ns; 0 for events.
    pub dur_ns: u64,
    /// Round-scoped trace id; 0 = untraced.
    pub trace_id: u64,
    /// Id of the message whose delivery caused this record; 0 = local.
    pub parent: u64,
    /// Structured payload, kept as parsed JSON.
    pub fields: Vec<(String, Json)>,
}

impl ObsRecord {
    /// Span end time (equals `t_ns` for events).
    pub fn end_ns(&self) -> i64 {
        self.t_ns.saturating_add(self.dur_ns as i64)
    }

    /// An unsigned-integer field, if present.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
    }

    /// A string field, if present.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_str())
    }

    /// Renders the record back to one schema-v2 JSONL line.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"t_ns\":{},\"node\":\"{}\",\"kind\":\"{}\",\"name\":\"{}\"",
            self.t_ns,
            crate::json::escape(&self.node),
            if self.span { "span" } else { "event" },
            crate::json::escape(&self.name)
        );
        if self.span {
            out.push_str(&format!(",\"dur_ns\":{}", self.dur_ns));
        }
        if self.trace_id != 0 {
            out.push_str(&format!(",\"trace_id\":{}", self.trace_id));
            if self.parent != 0 {
                out.push_str(&format!(",\"parent\":{}", self.parent));
            }
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":");
            Json::Obj(self.fields.clone()).render(&mut out);
        }
        out.push('}');
        out
    }
}

/// Everything a trace dump file (or shipped ring) parses into.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// Span/event records, in file order.
    pub records: Vec<ObsRecord>,
    /// Nodes named by a `meta` line's `implicated` list, if any.
    pub implicated: Vec<String>,
    /// Per-node ring-overflow counts from `meta` lines.
    pub overflow: Vec<(String, u64)>,
    /// Lines that failed to parse (count only; the merge refuses
    /// nothing, but the report surfaces lossage).
    pub skipped: u64,
}

/// Parses schema-v1/v2 JSONL text. Unparseable lines are counted, not
/// fatal — a trace cut short by a crash must still merge.
pub fn parse_jsonl(text: &str) -> ParsedTrace {
    let mut out = ParsedTrace::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(v) = Json::parse(line) else {
            out.skipped += 1;
            continue;
        };
        match v.get("kind").and_then(Json::as_str) {
            Some("meta") => {
                if let Some(Json::Arr(names)) = v.get("implicated") {
                    for n in names {
                        if let Some(s) = n.as_str() {
                            out.implicated.push(s.to_string());
                        }
                    }
                }
                if let Some(Json::Obj(counts)) = v.get("ring_overflow") {
                    for (node, c) in counts {
                        if let Some(c) = c.as_u64() {
                            out.overflow.push((node.clone(), c));
                        }
                    }
                }
            }
            Some(kind @ ("span" | "event")) => {
                let parsed = (|| {
                    Some(ObsRecord {
                        t_ns: v.get("t_ns")?.as_i64()?,
                        node: v.get("node")?.as_str()?.to_string(),
                        span: kind == "span",
                        name: v.get("name")?.as_str()?.to_string(),
                        dur_ns: v.get("dur_ns").and_then(Json::as_u64).unwrap_or(0),
                        trace_id: v.get("trace_id").and_then(Json::as_u64).unwrap_or(0),
                        parent: v.get("parent").and_then(Json::as_u64).unwrap_or(0),
                        fields: match v.get("fields") {
                            Some(Json::Obj(fields)) => fields.clone(),
                            _ => Vec::new(),
                        },
                    })
                })();
                match parsed {
                    Some(rec) => out.records.push(rec),
                    None => out.skipped += 1,
                }
            }
            _ => out.skipped += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spans_events_and_meta() {
        let text = "\
{\"t_ns\":5,\"node\":\"agg-0\",\"kind\":\"span\",\"name\":\"aggregate\",\"dur_ns\":11,\"trace_id\":2}\n\
{\"t_ns\":9,\"node\":\"party-0\",\"kind\":\"event\",\"name\":\"net_send\",\"trace_id\":2,\"parent\":7,\"fields\":{\"msg_id\":12,\"to\":\"agg-0\",\"bytes\":64}}\n\
not json\n\
{\"t_ns\":0,\"kind\":\"meta\",\"implicated\":[\"agg-1\"],\"ring_overflow\":{\"party-0\":3}}\n";
        let parsed = parse_jsonl(text);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.skipped, 1);
        assert_eq!(parsed.implicated, vec!["agg-1".to_string()]);
        assert_eq!(parsed.overflow, vec![("party-0".to_string(), 3)]);
        let span = &parsed.records[0];
        assert!(span.span);
        assert_eq!(span.end_ns(), 16);
        assert_eq!(span.trace_id, 2);
        let ev = &parsed.records[1];
        assert_eq!(ev.field_u64("msg_id"), Some(12));
        assert_eq!(ev.field_str("to"), Some("agg-0"));
        assert_eq!(ev.parent, 7);
    }

    #[test]
    fn rendering_round_trips_through_the_parser() {
        let line = "{\"t_ns\":9,\"node\":\"party-0\",\"kind\":\"event\",\"name\":\"net_send\",\
                    \"trace_id\":2,\"parent\":7,\"fields\":{\"msg_id\":1234567890123456,\"bytes\":64}}";
        let parsed = parse_jsonl(line);
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(
            parsed.records[0].to_json(),
            line.replace(char::is_whitespace, "")
        );
    }
}
