//! Round critical paths and phase breakdowns over a merged trace.
//!
//! The question ROADMAP item #1 poses — why does the threaded
//! deployment sustain fewer rounds/s than the sequential one — is a
//! *blocking* question: which node, and which wait, is the round's
//! completion actually gated on. The critical-path walk answers it by
//! following the chain of causality backwards from the round's last
//! record: each hop lands on the `net_recv` that unblocked the current
//! node, attributes the node-local interval to the spans that filled it
//! (the remainder is queue/barrier idle), then jumps the send→recv edge
//! (that gap is transport + mailbox queueing) and continues on the
//! sending node. Every nanosecond of round wall time ends up in exactly
//! one named bucket.

use crate::merge::MergedTrace;
use crate::record::ObsRecord;
use std::collections::HashMap;

/// Critical-path bucket for time spent inside a message hop: socket /
/// channel copy plus receiver mailbox queueing.
pub const TRANSPORT: &str = "transport+queue";
/// Critical-path bucket for node-local time not covered by any span:
/// actor tick sleep, barrier idle, dispatch.
pub const IDLE: &str = "idle (queue wait/barrier)";

/// The DeTA round phase a span name belongs to, if any.
pub fn phase_of(span_name: &str) -> Option<&'static str> {
    match span_name {
        "local_train" => Some("local train"),
        "transform" | "seal" => Some("seal+upload"),
        "aggregate" => Some("fragment sync+fuse"),
        "unshuffle" => Some("download+unshuffle"),
        _ => None,
    }
}

/// Wall-time attribution for one round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// The round (trace ids are `round + 1`).
    pub round: u64,
    /// First record timestamp of the round, on the merged timeline.
    pub start_ns: i64,
    /// Wall time from the round's first record to its last span end.
    pub wall_ns: u64,
    /// Critical-path attribution: bucket label → ns, descending. The
    /// labels are span names plus [`TRANSPORT`] and [`IDLE`]; the values
    /// sum to `wall_ns`.
    pub critical: Vec<(String, u64)>,
    /// Total span time per phase across *all* nodes (parallel work
    /// counts multiply — this is CPU-ish volume, not wall time).
    pub phases: Vec<(&'static str, u64)>,
    /// Hops the backward walk took (send→recv edges crossed).
    pub hops: u64,
}

impl RoundReport {
    /// Fraction of `wall_ns` attributed to anything other than the
    /// generic [`IDLE`] bucket.
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        let idle: u64 = self
            .critical
            .iter()
            .filter(|(k, _)| k == IDLE)
            .map(|(_, v)| *v)
            .sum();
        1.0 - idle as f64 / self.wall_ns as f64
    }
}

/// Computes one [`RoundReport`] per trace id present in the merged
/// trace, ascending by round.
pub fn round_reports(m: &MergedTrace) -> Vec<RoundReport> {
    let mut ids: Vec<u64> = m
        .records
        .iter()
        .map(|r| r.trace_id)
        .filter(|&t| t != 0)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids.iter().map(|&t| round_report(m, t)).collect()
}

/// Attribution for one round (`trace_id`).
fn round_report(m: &MergedTrace, trace_id: u64) -> RoundReport {
    let recs: Vec<&ObsRecord> = m
        .records
        .iter()
        .filter(|r| r.trace_id == trace_id)
        .collect();
    let start = recs.iter().map(|r| r.t_ns).min().unwrap_or(0);
    let (end, end_node) = recs
        .iter()
        .map(|r| (r.end_ns(), r.node.as_str()))
        .max_by_key(|&(t, _)| t)
        .unwrap_or((0, ""));

    // Per-node indexes for the walk.
    let mut recvs_by_node: HashMap<&str, Vec<&ObsRecord>> = HashMap::new();
    let mut spans_by_node: HashMap<&str, Vec<&ObsRecord>> = HashMap::new();
    let mut send_by_id: HashMap<u64, &ObsRecord> = HashMap::new();
    for r in &recs {
        match r.name.as_str() {
            "net_recv" => recvs_by_node.entry(&r.node).or_default().push(r),
            "net_send" => {
                if let Some(id) = r.field_u64("msg_id") {
                    send_by_id.insert(id, r);
                }
            }
            _ => {}
        }
        if r.span {
            spans_by_node.entry(&r.node).or_default().push(r);
        }
    }

    let mut buckets: HashMap<String, u64> = HashMap::new();
    let add = |buckets: &mut HashMap<String, u64>, label: &str, ns: i64| {
        if ns > 0 {
            *buckets.entry(label.to_string()).or_insert(0) += ns as u64;
        }
    };

    let mut node = end_node;
    let mut cursor = end;
    let mut hops = 0u64;
    // Each hop moves the cursor to a strictly earlier receive (ties are
    // allowed once); the edge count bounds the loop regardless.
    let max_hops = m.edges.len() as u64 + 2;
    while cursor > start && hops < max_hops {
        // The latest receive on this node at or before the cursor is
        // what last unblocked it.
        let unblocking = recvs_by_node
            .get(node)
            .into_iter()
            .flatten()
            .filter(|r| r.t_ns <= cursor)
            .max_by_key(|r| r.t_ns);
        let seg_lo = unblocking.map_or(start, |r| r.t_ns).max(start);
        attribute_interval(
            spans_by_node.get(node).map_or(&[][..], Vec::as_slice),
            seg_lo,
            cursor,
            &mut |label, ns| add(&mut buckets, label, ns),
        );
        let Some(recv) = unblocking else { break };
        let Some(send) = recv.field_u64("msg_id").and_then(|id| send_by_id.get(&id)) else {
            // Sender outside the round (e.g. control traffic from an
            // untraced context): charge the remaining head to idle.
            add(&mut buckets, IDLE, seg_lo - start);
            break;
        };
        add(&mut buckets, TRANSPORT, recv.t_ns - send.t_ns);
        if send.t_ns >= cursor && send.node == node {
            break; // no progress possible; avoid a zero-width spin
        }
        node = &send.node;
        cursor = send.t_ns;
        hops += 1;
    }

    // Phase volume: every span, all nodes, clipped to nothing (spans
    // already sit inside the round via their trace id).
    let mut phases: HashMap<&'static str, u64> = HashMap::new();
    for r in &recs {
        if r.span {
            if let Some(p) = phase_of(&r.name) {
                *phases.entry(p).or_insert(0) += r.dur_ns;
            }
        }
    }
    let mut phases: Vec<(&'static str, u64)> = phases.into_iter().collect();
    phases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let mut critical: Vec<(String, u64)> = buckets.into_iter().collect();
    critical.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    RoundReport {
        round: trace_id.saturating_sub(1),
        start_ns: start,
        wall_ns: (end - start).max(0) as u64,
        critical,
        phases,
        hops,
    }
}

/// Attributes the node-local interval `(lo, hi]` to the spans covering
/// it — innermost span wins where spans nest — and the uncovered
/// remainder to [`IDLE`].
fn attribute_interval(spans: &[&ObsRecord], lo: i64, hi: i64, add: &mut dyn FnMut(&str, i64)) {
    if hi <= lo {
        return;
    }
    // Elementary segments between all clipped span boundaries.
    let mut cuts: Vec<i64> = vec![lo, hi];
    for s in spans {
        for t in [s.t_ns, s.end_ns()] {
            if t > lo && t < hi {
                cuts.push(t);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mid = a + (b - a) / 2;
        // Innermost covering span = the one that started latest.
        let covering = spans
            .iter()
            .filter(|s| s.t_ns <= mid && mid < s.end_ns())
            .max_by_key(|s| (s.t_ns, std::cmp::Reverse(s.dur_ns)));
        match covering {
            Some(s) => add(&s.name, b - a),
            None => add(IDLE, b - a),
        }
    }
}

/// Span-volume totals per phase over an entire trace (all rounds) —
/// used to put sequential and threaded deployments side by side.
pub fn phase_totals(records: &[ObsRecord]) -> Vec<(&'static str, u64)> {
    let mut phases: HashMap<&'static str, u64> = HashMap::new();
    for r in records {
        if r.span {
            if let Some(p) = phase_of(&r.name) {
                *phases.entry(p).or_insert(0) += r.dur_ns;
            }
        }
    }
    let mut phases: Vec<(&'static str, u64)> = phases.into_iter().collect();
    phases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    phases
}

/// Formats nanoseconds as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::merge::{merge, ProcessTrace};

    fn rec(
        t: i64,
        node: &str,
        name: &str,
        dur: u64,
        trace: u64,
        fields: &[(&str, u64)],
    ) -> ObsRecord {
        ObsRecord {
            t_ns: t,
            node: node.to_string(),
            span: dur > 0,
            name: name.to_string(),
            dur_ns: dur,
            trace_id: trace,
            parent: 0,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Num(v.to_string())))
                .collect(),
        }
    }

    /// One round: supervisor triggers party (msg 1), party trains
    /// 600ns then replies (msg 2), supervisor gets it 100ns later.
    fn two_node_round() -> MergedTrace {
        let coord = ProcessTrace {
            label: "coordinator".into(),
            offset_ns: 0,
            records: vec![
                rec(0, "supervisor", "round_begin", 0, 1, &[]),
                rec(10, "supervisor", "net_send", 0, 1, &[("msg_id", 1)]),
                rec(1000, "supervisor", "net_recv", 0, 1, &[("msg_id", 2)]),
            ],
        };
        let child = ProcessTrace {
            label: "party-0".into(),
            offset_ns: 0,
            records: vec![
                rec(60, "party-0", "net_recv", 0, 1, &[("msg_id", 1)]),
                rec(100, "party-0", "local_train", 600, 1, &[]),
                rec(900, "party-0", "net_send", 0, 1, &[("msg_id", 2)]),
            ],
        };
        merge(vec![coord, child])
    }

    #[test]
    fn critical_path_attributes_the_whole_round() {
        let m = two_node_round();
        let reports = round_reports(&m);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.round, 0);
        assert_eq!(r.wall_ns, 1000);
        let total: u64 = r.critical.iter().map(|(_, v)| v).sum();
        assert_eq!(total, r.wall_ns, "every ns lands in exactly one bucket");
        let by: std::collections::HashMap<&str, u64> =
            r.critical.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        // Transport: 50ns (msg 1: 10→60) + 100ns (msg 2: 900→1000).
        assert_eq!(by.get(TRANSPORT), Some(&150));
        assert_eq!(by.get("local_train"), Some(&600));
        // Idle: 40ns before party's recv-to-train + 200ns train-to-send
        // + 10ns supervisor head.
        assert_eq!(by.get(IDLE), Some(&250));
        assert!(r.attributed_fraction() > 0.7);
        assert_eq!(r.hops, 2);
        assert_eq!(r.phases, vec![("local train", 600)]);
    }

    #[test]
    fn nested_spans_attribute_to_the_innermost() {
        // An outer span [0,100) with an inner [40,60): inner wins its
        // window.
        let spans = vec![
            rec(0, "n", "aggregate", 100, 1, &[]),
            rec(40, "n", "seal", 20, 1, &[]),
        ];
        let refs: Vec<&ObsRecord> = spans.iter().collect();
        let mut got: Vec<(String, i64)> = Vec::new();
        attribute_interval(&refs, 0, 100, &mut |label, ns| {
            got.push((label.to_string(), ns));
        });
        let mut by: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
        for (k, v) in got {
            *by.entry(k).or_insert(0) += v;
        }
        assert_eq!(by.get("aggregate"), Some(&80));
        assert_eq!(by.get("seal"), Some(&20));
        assert_eq!(by.get(IDLE), None);
    }

    #[test]
    fn phase_totals_sum_across_nodes() {
        let records = vec![
            rec(0, "party-0", "local_train", 500, 1, &[]),
            rec(0, "party-1", "local_train", 700, 1, &[]),
            rec(600, "party-0", "seal", 100, 1, &[]),
            rec(800, "agg-0", "aggregate", 300, 2, &[]),
        ];
        let totals = phase_totals(&records);
        assert_eq!(
            totals,
            vec![
                ("local train", 1200),
                ("fragment sync+fuse", 300),
                ("seal+upload", 100),
            ]
        );
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_700), "1.7µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
