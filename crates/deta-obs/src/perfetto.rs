//! Chrome trace-event export (loadable by Perfetto / `chrome://tracing`).
//!
//! The merged trace maps onto the JSON trace-event format with one
//! "process" track per DeTA node (nodes are single-threaded actors, so
//! the node *is* the schedulable unit): spans become complete (`"X"`)
//! events, point events become instants (`"i"`), and every matched
//! send→recv edge becomes a flow (`"s"`/`"f"`) arrow so the causality
//! the critical-path walk uses is visible in the UI.

use crate::json::escape;
use crate::merge::MergedTrace;

/// Timestamps: trace-event `ts`/`dur` are microseconds; emit fractional
/// µs to keep full ns resolution.
fn us(ns: i64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Renders the merged trace as a chrome-trace-event JSON document.
pub fn chrome_trace(m: &MergedTrace) -> String {
    // Stable pid assignment: nodes sorted by name, 1-based.
    let mut nodes: Vec<&str> = m.records.iter().map(|r| r.node.as_str()).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let pid_of = |node: &str| nodes.iter().position(|n| *n == node).unwrap_or(0) + 1;

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    for (i, node) in nodes.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape(node)
            ),
        );
    }
    for rec in &m.records {
        let pid = pid_of(&rec.node);
        let args = if rec.trace_id != 0 {
            format!(",\"args\":{{\"round\":{}}}", rec.trace_id.saturating_sub(1))
        } else {
            String::new()
        };
        let line = if rec.span {
            format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\"{args}}}",
                us(rec.t_ns),
                us(rec.dur_ns as i64),
                escape(&rec.name)
            )
        } else {
            format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"ts\":{},\"s\":\"t\",\
                 \"name\":\"{}\"{args}}}",
                us(rec.t_ns),
                escape(&rec.name)
            )
        };
        push(&mut out, &mut first, line);
    }
    for e in &m.edges {
        let (send, recv) = (&m.records[e.send], &m.records[e.recv]);
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"s\",\"pid\":{},\"tid\":1,\"ts\":{},\"cat\":\"net\",\
                 \"name\":\"msg\",\"id\":{}}}",
                pid_of(&send.node),
                us(send.t_ns),
                e.msg_id
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":1,\"ts\":{},\
                 \"cat\":\"net\",\"name\":\"msg\",\"id\":{}}}",
                pid_of(&recv.node),
                us(recv.t_ns),
                e.msg_id
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::merge::{merge, ProcessTrace};
    use crate::record::ObsRecord;

    #[test]
    fn export_is_valid_json_with_flows_and_metadata() {
        let pt = ProcessTrace {
            label: "coordinator".into(),
            offset_ns: 0,
            records: vec![
                ObsRecord {
                    t_ns: 0,
                    node: "supervisor".into(),
                    span: false,
                    name: "net_send".into(),
                    dur_ns: 0,
                    trace_id: 1,
                    parent: 0,
                    fields: vec![("msg_id".into(), Json::Num("9".into()))],
                },
                ObsRecord {
                    t_ns: 50,
                    node: "party-0".into(),
                    span: false,
                    name: "net_recv".into(),
                    dur_ns: 0,
                    trace_id: 1,
                    parent: 9,
                    fields: vec![("msg_id".into(), Json::Num("9".into()))],
                },
                ObsRecord {
                    t_ns: 100,
                    node: "party-0".into(),
                    span: true,
                    name: "local_train".into(),
                    dur_ns: 500,
                    trace_id: 1,
                    parent: 9,
                    fields: Vec::new(),
                },
            ],
        };
        let doc = chrome_trace(&merge(vec![pt]));
        let parsed = Json::parse(doc.trim()).expect("export must be valid JSON");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // 2 process_name metadata + 2 instants + 1 span + 1 flow pair.
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "s").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "f").count(), 1);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(0.5));
    }
}
