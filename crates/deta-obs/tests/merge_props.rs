//! Property tests for the clock-alignment merge (satellite of the
//! distributed-tracing work): whatever per-process clock offsets the
//! OS hands out, and however wrong the handshake's first-order
//! estimates are, the merged ordering must respect every causal
//! send→recv edge the trace carries, and must never reorder records
//! within one process.

use deta_obs::json::Json;
use deta_obs::{merge, MergedTrace, ObsRecord, ProcessTrace};
use deta_proptest::{cases, Gen};

fn event(t: i64, node: &str, name: &str, msg_id: u64) -> ObsRecord {
    ObsRecord {
        t_ns: t,
        node: node.to_string(),
        span: false,
        name: name.to_string(),
        dur_ns: 0,
        trace_id: 1,
        parent: 0,
        fields: vec![("msg_id".to_string(), Json::Num(msg_id.to_string()))],
    }
}

/// A synthetic distributed execution in *true* time, then skewed.
struct Exec {
    /// Per-process records with per-process clock readings.
    procs: Vec<ProcessTrace>,
    /// For checking: (msg_id, send process, recv process).
    edges: Vec<(u64, usize, usize)>,
}

/// Builds a causally-valid execution on a global true clock, applies an
/// arbitrary offset to each process's timestamps, and gives the merger
/// estimates that are off by an arbitrary *bounded* error (the probe /
/// echo midpoint is at worst off by the handshake RTT; causality must
/// absorb the rest).
fn arbitrary_exec(g: &mut Gen) -> Exec {
    let nprocs = g.usize_in(2, 5);
    let nmsgs = g.usize_in(1, 30);
    let mut true_now = 0i64;
    let mut per_proc: Vec<Vec<(i64, ObsRecord)>> = vec![Vec::new(); nprocs];
    let mut edges = Vec::new();
    for m in 0..nmsgs {
        let from = g.usize_in(0, nprocs);
        let mut to = g.usize_in(0, nprocs);
        if to == from {
            to = (to + 1) % nprocs;
        }
        true_now += g.u64_in(0, 10_000) as i64;
        let t_send = true_now;
        let t_recv = t_send + g.u64_in(0, 50_000) as i64;
        let msg_id = (m as u64 + 1) << 8;
        per_proc[from].push((
            t_send,
            event(0, &format!("node-{from}"), "net_send", msg_id),
        ));
        per_proc[to].push((t_recv, event(0, &format!("node-{to}"), "net_recv", msg_id)));
        edges.push((msg_id, from, to));
    }
    let mut procs = Vec::new();
    for (p, mut recs) in per_proc.into_iter().enumerate() {
        // True offset: this process's clock reads true + skew.
        let skew = g.u64_in(0, 1 << 40) as i64 - (1 << 39);
        // Estimate error models probe/echo asymmetry: bounded, either
        // direction.
        let est_err = g.u64_in(0, 40_000) as i64 - 20_000;
        recs.sort_by_key(|(t, _)| *t);
        let records = recs
            .into_iter()
            .map(|(t_true, mut rec)| {
                rec.t_ns = t_true + skew;
                rec
            })
            .collect();
        procs.push(ProcessTrace {
            label: format!("proc-{p}"),
            offset_ns: skew + est_err,
            records,
        });
    }
    Exec { procs, edges }
}

fn find(m: &MergedTrace, name: &str, msg_id: u64) -> i64 {
    m.records
        .iter()
        .find(|r| r.name == name && r.field_u64("msg_id") == Some(msg_id))
        .map(|r| r.t_ns)
        .expect("merge must not lose records")
}

#[test]
fn merged_order_respects_every_causal_edge() {
    cases("obs/merge-causal", 300, |g: &mut Gen| {
        let exec = arbitrary_exec(g);
        let merged = merge(exec.procs.clone());
        assert!(
            merged.causally_consistent(),
            "own invariant check must hold"
        );
        for (msg_id, _, _) in &exec.edges {
            let t_send = find(&merged, "net_send", *msg_id);
            let t_recv = find(&merged, "net_recv", *msg_id);
            assert!(
                t_send <= t_recv,
                "edge {msg_id:#x}: send at {t_send} after recv at {t_recv}"
            );
        }
        assert_eq!(
            merged.edges.len(),
            exec.edges.len(),
            "every send/recv pair must be matched"
        );
    });
}

#[test]
fn merge_never_reorders_within_a_process() {
    cases("obs/merge-intra-order", 200, |g: &mut Gen| {
        let exec = arbitrary_exec(g);
        let merged = merge(exec.procs.clone());
        for pt in &exec.procs {
            let node = &pt.records.first().map(|r| r.node.clone());
            let Some(node) = node else { continue };
            let original: Vec<u64> = pt
                .records
                .iter()
                .filter_map(|r| r.field_u64("msg_id"))
                .collect();
            let merged_order: Vec<u64> = merged
                .records
                .iter()
                .filter(|r| &r.node == node)
                .filter_map(|r| r.field_u64("msg_id"))
                .collect();
            assert_eq!(
                original, merged_order,
                "one process = one clock: its record order is invariant"
            );
        }
    });
}

#[test]
fn timeline_always_starts_at_zero_and_roundtrips() {
    cases("obs/merge-normalized", 100, |g: &mut Gen| {
        let exec = arbitrary_exec(g);
        let merged = merge(exec.procs);
        let min = merged.records.iter().map(|r| r.t_ns).min().unwrap();
        assert_eq!(min, 0, "merged timelines are normalized to start at 0");
        // The rendered JSONL parses back to the same record count, and
        // re-merging a merged trace (single process, zero offset) is a
        // fixpoint.
        let jsonl = merged.to_jsonl(&[], &[]);
        let back = deta_obs::parse_jsonl(&jsonl);
        assert_eq!(back.records.len(), merged.records.len());
        assert_eq!(back.skipped, 0);
        let again = merge(vec![ProcessTrace {
            label: "merged".into(),
            offset_ns: 0,
            records: back.records.clone(),
        }]);
        assert_eq!(again.records, back.records);
    });
}
