//! im2col/col2im lowering for 2-D convolution.
//!
//! `deta-nn` implements convolution as `im2col` followed by a matrix
//! product, with `col2im` scattering gradients back in the backward pass.
//! All tensors use NCHW layout.

use crate::Tensor;

/// Convolution geometry for a single spatial configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel size (square kernels).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Number of columns in the im2col matrix (output positions).
    pub fn cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Number of rows in the im2col matrix (patch size).
    pub fn rows(&self) -> usize {
        self.in_c * self.k * self.k
    }
}

/// Lowers one image `[C, H, W]` (flattened) to a patch matrix
/// `[C*k*k, out_h*out_w]`.
///
/// # Panics
///
/// Panics if `input.numel()` does not match the geometry.
pub fn im2col(input: &Tensor, g: &ConvGeom) -> Tensor {
    assert_eq!(
        input.numel(),
        g.in_c * g.in_h * g.in_w,
        "input size mismatch"
    );
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let cols = out_h * out_w;
    let mut out = vec![0.0f32; g.rows() * cols];
    let data = input.data();
    for c in 0..g.in_c {
        for ky in 0..g.k {
            for kx in 0..g.k {
                let row = (c * g.k + ky) * g.k + kx;
                for oy in 0..out_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..out_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        let col = oy * out_w + ox;
                        let v = if iy >= 0
                            && (iy as usize) < g.in_h
                            && ix >= 0
                            && (ix as usize) < g.in_w
                        {
                            data[(c * g.in_h + iy as usize) * g.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + col] = v;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[g.rows(), cols])
}

/// Scatters a patch-matrix gradient `[C*k*k, out_h*out_w]` back to an image
/// gradient `[C, H, W]` (flattened), accumulating overlapping patches.
///
/// This is the exact adjoint of [`im2col`].
///
/// # Panics
///
/// Panics if `cols.shape()` does not match the geometry.
pub fn col2im(cols_mat: &Tensor, g: &ConvGeom) -> Tensor {
    assert_eq!(
        cols_mat.shape(),
        &[g.rows(), g.cols()],
        "cols shape mismatch"
    );
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let cols = out_h * out_w;
    let mut out = vec![0.0f32; g.in_c * g.in_h * g.in_w];
    let data = cols_mat.data();
    for c in 0..g.in_c {
        for ky in 0..g.k {
            for kx in 0..g.k {
                let row = (c * g.k + ky) * g.k + kx;
                for oy in 0..out_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy as usize >= g.in_h {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix as usize >= g.in_w {
                            continue;
                        }
                        let col = oy * out_w + ox;
                        out[(c * g.in_h + iy as usize) * g.in_w + ix as usize] +=
                            data[row * cols + col];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[g.in_c * g.in_h * g.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_crypto::DetRng;

    #[test]
    fn geometry() {
        let g = ConvGeom {
            in_c: 3,
            in_h: 8,
            in_w: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 8);
        assert_eq!(g.out_w(), 8);
        assert_eq!(g.rows(), 27);
        let g2 = ConvGeom {
            stride: 2,
            pad: 0,
            ..g
        };
        assert_eq!(g2.out_h(), 3);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
        let g = ConvGeom {
            in_c: 2,
            in_h: 2,
            in_w: 2,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[8]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_simple_3x3() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no pad.
        let g = ConvGeom {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            k: 2,
            stride: 1,
            pad: 0,
        };
        #[rustfmt::skip]
        let input = Tensor::from_vec(vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ], &[9]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape(), &[4, 4]);
        // Patches (top-left origin), column order = output scan order.
        assert_eq!(cols.data()[0..4], [1.0, 2.0, 4.0, 5.0]); // kernel (0,0)
        assert_eq!(cols.data()[4..8], [2.0, 3.0, 5.0, 6.0]); // kernel (0,1)
        assert_eq!(cols.data()[8..12], [4.0, 5.0, 7.0, 8.0]); // kernel (1,0)
        assert_eq!(cols.data()[12..16], [5.0, 6.0, 8.0, 9.0]); // kernel (1,1)
    }

    #[test]
    fn padding_zeros() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 2,
            in_w: 2,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape(), &[9, 4]);
        // Kernel position (0,0) at output (0,0) reads the padded corner.
        assert_eq!(cols.data()[0], 0.0);
        // Kernel center at output (0,0) reads pixel (0,0).
        let center_row = 4; // ky=1, kx=1
        assert_eq!(cols.data()[center_row * 4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of the adjoint, which is exactly what backprop needs.
        let g = ConvGeom {
            in_c: 2,
            in_h: 5,
            in_w: 4,
            k: 3,
            stride: 2,
            pad: 1,
        };
        let mut rng = DetRng::from_u64(7);
        let x = Tensor::randn(&[g.in_c * g.in_h * g.in_w], 1.0, &mut rng);
        let y = Tensor::randn(&[g.rows(), g.cols()], 1.0, &mut rng);
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct convolution vs im2col + matmul on a small case.
        let g = ConvGeom {
            in_c: 1,
            in_h: 4,
            in_w: 4,
            k: 3,
            stride: 1,
            pad: 0,
        };
        let mut rng = DetRng::from_u64(9);
        let input = Tensor::randn(&[16], 1.0, &mut rng);
        let kernel = Tensor::randn(&[1, 9], 1.0, &mut rng);
        let cols = im2col(&input, &g);
        let out = kernel.matmul(&cols); // [1, 4]
                                        // Direct computation.
        for oy in 0..2 {
            for ox in 0..2 {
                let mut acc = 0.0f32;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += kernel.data()[ky * 3 + kx] * input.data()[(oy + ky) * 4 + (ox + kx)];
                    }
                }
                let got = out.data()[oy * 2 + ox];
                assert!((acc - got).abs() < 1e-5, "({oy},{ox}): {acc} vs {got}");
            }
        }
    }
}
