//! Dense `f32` tensors and the linear-algebra kernels backing `deta-nn`.
//!
//! [`Tensor`] is a row-major contiguous buffer with a dynamic shape. The
//! crate deliberately avoids views, broadcasting, and lazy evaluation:
//! every kernel the neural-network stack needs (matrix products, im2col
//! convolution, pooling, reductions) is provided as an explicit eager
//! method, which keeps the backward passes in `deta-nn` easy to audit.
//!
//! # Examples
//!
//! ```
//! use deta_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! assert_eq!(a.matmul(&b).data(), a.data());
//! ```

mod conv;
mod ops;

pub use conv::{col2im, im2col, ConvGeom};

use deta_crypto::DetRng;

/// A dense row-major `f32` tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Samples i.i.d. Gaussian entries with the given standard deviation.
    pub fn randn(shape: &[usize], std: f32, rng: &mut DetRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.next_gaussian() as f32 * std).collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Samples i.i.d. uniform entries in `[-bound, bound]`.
    pub fn rand_uniform(shape: &[usize], bound: f32, rng: &mut DetRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| (rng.next_f32() * 2.0 - 1.0) * bound)
            .collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrows the flat data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// 2-D element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn eye_matrix() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        assert_eq!(i.at2(2, 2), 1.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic]
    fn reshape_wrong_count_panics() {
        Tensor::zeros(&[2, 3]).reshape(&[5]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = DetRng::from_u64(1);
        let mut r2 = DetRng::from_u64(1);
        let a = Tensor::randn(&[10], 1.0, &mut r1);
        let b = Tensor::randn(&[10], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_scales_with_std() {
        let mut rng = DetRng::from_u64(2);
        let t = Tensor::randn(&[10_000], 0.1, &mut rng);
        let var: f32 = t.data().iter().map(|v| v * v).sum::<f32>() / t.numel() as f32;
        assert!((var - 0.01).abs() < 0.002, "var={var}");
    }

    #[test]
    fn uniform_within_bound() {
        let mut rng = DetRng::from_u64(3);
        let t = Tensor::rand_uniform(&[1000], 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
