//! Element-wise operations, matrix products, and reductions.

use crate::Tensor;

impl Tensor {
    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scalar multiplication.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// In-place scalar multiplication.
    pub fn scale_mut(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies a function element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty());
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order: the inner loop is a contiguous axpy over `out`
        // and `other`, which vectorizes well.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Computes `self^T x other`: `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Used by backward passes; avoids materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let lhs_row = &self.data[p * m..(p + 1) * m];
            let rhs_row = &other.data[p * n..(p + 1) * n];
            for i in 0..m {
                let a = lhs_row[i];
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(rhs_row.iter()) {
                    *d += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Computes `self x other^T`: `[m, k] x [n, k]^T -> [m, n]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let lhs_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let rhs_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in lhs_row.iter().zip(rhs_row.iter()) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Row-wise softmax of a 2-D tensor (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for v in &mut out[i * n..(i + 1) * n] {
                *v /= denom;
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Sums each column of a 2-D tensor, yielding a `[n]` vector.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c])
    }

    #[test]
    fn elementwise_ops() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[4.0, 3.0, 2.0, 1.0], 2, 2);
        assert_eq!(a.add(&b).data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t2(&[1.0, 1.0], 1, 2);
        let b = t2(&[2.0, 3.0], 1, 2);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.add(&b);
    }

    #[test]
    fn matmul_known() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = t2(&[1.0, 2.0, 3.0], 1, 3);
        let b = t2(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = t2(&[1.0, -1.0, 2.0, 0.5, 0.0, 3.0], 3, 2);
        assert_eq!(a.matmul_tn(&b), a.transpose2().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[0.5, -1.0, 2.0, 1.5], 2, 2);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose2()));
    }

    #[test]
    fn transpose_involution() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn softmax_rows_normalized() {
        let a = t2(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], 2, 3);
        let s = a.softmax_rows();
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| s.at2(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow.
        assert!((s.at2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // Monotone in the logits.
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn reductions() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sq_norm(), 30.0);
        assert_eq!(a.argmax(), 3);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 3.0], &[3]);
        assert_eq!(a.argmax(), 1);
    }
}
