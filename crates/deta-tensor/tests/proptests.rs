//! Property tests for the tensor kernels.

use deta_crypto::DetRng;
use deta_tensor::{col2im, im2col, ConvGeom, Tensor};
use proptest::prelude::*;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity(m in 1usize..8, n in 1usize..8, seed in any::<u64>()) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        let prod = a.matmul(&Tensor::eye(n));
        prop_assert_eq!(prod.data(), a.data());
        let prod2 = Tensor::eye(m).matmul(&a);
        prop_assert_eq!(prod2.data(), a.data());
    }

    #[test]
    fn matmul_associative(
        m in 1usize..5, k in 1usize..5, l in 1usize..5, n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, l], 1.0, &mut rng);
        let c = Tensor::randn(&[l, n], 1.0, &mut rng);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_variants_agree(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in any::<u64>()) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let plain = a.matmul(&b);
        let tn = a.transpose2().matmul_tn(&b);
        let nt = a.matmul_nt(&b.transpose2());
        for ((x, y), z) in plain.data().iter().zip(tn.data()).zip(nt.data()) {
            prop_assert!(close(*x, *y) && close(*x, *z));
        }
    }

    #[test]
    fn transpose_involution(m in 1usize..10, n in 1usize..10, seed in any::<u64>()) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        prop_assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(m in 1usize..6, n in 1usize..8, seed in any::<u64>()) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[m, n], 5.0, &mut rng);
        let s = a.softmax_rows();
        for i in 0..m {
            let row: f32 = (0..n).map(|j| s.at2(i, j)).sum();
            prop_assert!((row - 1.0).abs() < 1e-4);
            for j in 0..n {
                prop_assert!(s.at2(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let g = ConvGeom { in_c: c, in_h: h, in_w: w, k, stride, pad };
        let mut rng = DetRng::from_u64(seed);
        let x = Tensor::randn(&[c * h * w], 1.0, &mut rng);
        let y = Tensor::randn(&[g.rows(), g.cols()], 1.0, &mut rng);
        // <im2col(x), y> == <x, col2im(y)>.
        let lhs: f64 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn axpy_matches_scale_add(alpha in -5.0f32..5.0, n in 1usize..40, seed in any::<u64>()) {
        let mut rng = DetRng::from_u64(seed);
        let a = Tensor::randn(&[n], 1.0, &mut rng);
        let b = Tensor::randn(&[n], 1.0, &mut rng);
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = a.add(&b.scale(alpha));
        for (x, y) in via_axpy.data().iter().zip(via_ops.data()) {
            prop_assert!(close(*x, *y));
        }
    }
}
