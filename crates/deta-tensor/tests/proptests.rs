//! Property tests for the tensor kernels.

use deta_crypto::DetRng;
use deta_proptest::cases;
use deta_tensor::{col2im, im2col, ConvGeom, Tensor};

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn matmul_identity() {
    cases("matmul_identity", 64, |g| {
        let (m, n) = (g.usize_in(1, 8), g.usize_in(1, 8));
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        let prod = a.matmul(&Tensor::eye(n));
        assert_eq!(prod.data(), a.data());
        let prod2 = Tensor::eye(m).matmul(&a);
        assert_eq!(prod2.data(), a.data());
    });
}

#[test]
fn matmul_associative() {
    cases("matmul_associative", 64, |g| {
        let (m, k, l, n) = (
            g.usize_in(1, 5),
            g.usize_in(1, 5),
            g.usize_in(1, 5),
            g.usize_in(1, 5),
        );
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, l], 1.0, &mut rng);
        let c = Tensor::randn(&[l, n], 1.0, &mut rng);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
    });
}

#[test]
fn matmul_variants_agree() {
    cases("matmul_variants_agree", 64, |g| {
        let (m, k, n) = (g.usize_in(1, 6), g.usize_in(1, 6), g.usize_in(1, 6));
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let plain = a.matmul(&b);
        let tn = a.transpose2().matmul_tn(&b);
        let nt = a.matmul_nt(&b.transpose2());
        for ((x, y), z) in plain.data().iter().zip(tn.data()).zip(nt.data()) {
            assert!(close(*x, *y) && close(*x, *z));
        }
    });
}

#[test]
fn transpose_involution() {
    cases("transpose_involution", 64, |g| {
        let (m, n) = (g.usize_in(1, 10), g.usize_in(1, 10));
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        assert_eq!(a.transpose2().transpose2(), a);
    });
}

#[test]
fn softmax_rows_are_distributions() {
    cases("softmax_rows_are_distributions", 64, |g| {
        let (m, n) = (g.usize_in(1, 6), g.usize_in(1, 8));
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[m, n], 5.0, &mut rng);
        let s = a.softmax_rows();
        for i in 0..m {
            let row: f32 = (0..n).map(|j| s.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-4);
            for j in 0..n {
                assert!(s.at2(i, j) >= 0.0);
            }
        }
    });
}

#[test]
fn im2col_col2im_adjoint() {
    cases("im2col_col2im_adjoint", 64, |g| {
        let c = g.usize_in(1, 3);
        let k = g.usize_in(1, 4);
        let stride = g.usize_in(1, 3);
        let pad = g.usize_in(0, 2);
        let h = g.usize_in(3, 8);
        let w = g.usize_in(3, 8);
        // The proptest original discarded invalid geometries with
        // prop_assume; skipping keeps the same semantics.
        if h + 2 * pad < k || w + 2 * pad < k {
            return;
        }
        let geom = ConvGeom {
            in_c: c,
            in_h: h,
            in_w: w,
            k,
            stride,
            pad,
        };
        let mut rng = DetRng::from_u64(g.u64());
        let x = Tensor::randn(&[c * h * w], 1.0, &mut rng);
        let y = Tensor::randn(&[geom.rows(), geom.cols()], 1.0, &mut rng);
        // <im2col(x), y> == <x, col2im(y)>.
        let lhs: f64 = im2col(&x, &geom)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(col2im(&y, &geom).data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    });
}

#[test]
fn axpy_matches_scale_add() {
    cases("axpy_matches_scale_add", 64, |g| {
        let alpha = g.f32_in(-5.0, 5.0);
        let n = g.usize_in(1, 40);
        let mut rng = DetRng::from_u64(g.u64());
        let a = Tensor::randn(&[n], 1.0, &mut rng);
        let b = Tensor::randn(&[n], 1.0, &mut rng);
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = a.add(&b.scale(alpha));
        for (x, y) in via_axpy.data().iter().zip(via_ops.data()) {
            assert!(close(*x, *y));
        }
    });
}
