//! Graph-mode scalar automatic differentiation with higher-order support.
//!
//! The gradient-inversion attacks reproduced in `deta-attacks` (DLG, iDLG,
//! IG) minimize objectives of the form `D(∇_θ L(x', y'), g*)` over a dummy
//! input `x'` — they differentiate *through* a gradient computation, which
//! requires second-order derivatives. This crate provides a [`Tape`] whose
//! [`Tape::grad`] pass emits the gradient as **new graph nodes**, so the
//! result can itself be differentiated again, any number of times.
//!
//! Nodes are stored in an arena and identified by [`Var`]; construction
//! order is a topological order, so evaluation is a single linear sweep.
//!
//! # Examples
//!
//! ```
//! use deta_autograd::Tape;
//!
//! let mut t = Tape::new();
//! let x = t.input();
//! let y = t.mul(x, x); // y = x^2
//! let dy = t.grad(y, &[x])[0]; // dy/dx = 2x, as a graph node
//! let d2y = t.grad(dy, &[x])[0]; // d2y/dx2 = 2
//! let mut ev = t.evaluator();
//! ev.eval(&t, &[3.0]);
//! assert_eq!(ev.value(y), 9.0);
//! assert_eq!(ev.value(dy), 6.0);
//! assert_eq!(ev.value(d2y), 2.0);
//! ```

/// A node identifier in a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Primitive operations.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// External input; the payload is the input slot.
    Input(u32),
    /// Compile-time constant.
    Const(f64),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Recip(Var),
    Tanh(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
}

/// An append-only computation graph.
#[derive(Clone, Default)]
pub struct Tape {
    ops: Vec<Op>,
    n_inputs: u32,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of declared inputs.
    pub fn input_count(&self) -> usize {
        self.n_inputs as usize
    }

    fn push(&mut self, op: Op) -> Var {
        let id = Var(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    /// Declares a new external input.
    pub fn input(&mut self) -> Var {
        let slot = self.n_inputs;
        self.n_inputs += 1;
        self.push(Op::Input(slot))
    }

    /// Declares `n` inputs at once.
    pub fn inputs(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.input()).collect()
    }

    /// A constant node.
    pub fn constant(&mut self, v: f64) -> Var {
        self.push(Op::Const(v))
    }

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.push(Op::Add(a, b))
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.push(Op::Sub(a, b))
    }

    /// `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.push(Op::Mul(a, b))
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.push(Op::Neg(a))
    }

    /// `1 / a`.
    pub fn recip(&mut self, a: Var) -> Var {
        self.push(Op::Recip(a))
    }

    /// `tanh(a)`.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.push(Op::Tanh(a))
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        self.push(Op::Exp(a))
    }

    /// `ln(a)`.
    pub fn ln(&mut self, a: Var) -> Var {
        self.push(Op::Ln(a))
    }

    /// `sqrt(a)`.
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.push(Op::Sqrt(a))
    }

    /// `a / b`.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let r = self.recip(b);
        self.mul(a, r)
    }

    /// `a * c` for a compile-time constant `c`.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let k = self.constant(c);
        self.mul(a, k)
    }

    /// Sum of a slice of nodes (balanced reduction to keep graphs shallow).
    ///
    /// Returns a zero constant for an empty slice.
    pub fn sum(&mut self, vars: &[Var]) -> Var {
        match vars.len() {
            0 => self.constant(0.0),
            1 => vars[0],
            _ => {
                let mid = vars.len() / 2;
                let l = self.sum(&vars[..mid]);
                let r = self.sum(&vars[mid..]);
                self.add(l, r)
            }
        }
    }

    /// Dot product of two equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&mut self, a: &[Var], b: &[Var]) -> Var {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let prods: Vec<Var> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.mul(x, y))
            .collect();
        self.sum(&prods)
    }

    /// Squared L2 distance between two vectors.
    pub fn sq_dist(&mut self, a: &[Var], b: &[Var]) -> Var {
        assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
        let terms: Vec<Var> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| {
                let d = self.sub(x, y);
                self.mul(d, d)
            })
            .collect();
        self.sum(&terms)
    }

    /// Numerically stabilized softmax over a slice, returning probability
    /// nodes.
    ///
    /// Stabilization here subtracts nothing (graphs are built once and the
    /// exponent arguments in the attacks stay small); callers handling
    /// large logits should pre-scale.
    pub fn softmax(&mut self, logits: &[Var]) -> Vec<Var> {
        let exps: Vec<Var> = logits.iter().map(|&l| self.exp(l)).collect();
        let denom = self.sum(&exps);
        let inv = self.recip(denom);
        exps.iter().map(|&e| self.mul(e, inv)).collect()
    }

    /// Builds gradient nodes `d output / d wrt[i]` via reverse-mode
    /// differentiation, emitting new graph nodes (differentiable again).
    ///
    /// Nodes that do not influence `output` get a zero-constant gradient.
    pub fn grad(&mut self, output: Var, wrt: &[Var]) -> Vec<Var> {
        // Reachability: which nodes influence `output`?
        let n = output.idx() + 1;
        let mut reachable = vec![false; n];
        reachable[output.idx()] = true;
        for i in (0..n).rev() {
            if !reachable[i] {
                continue;
            }
            match self.ops[i] {
                Op::Input(_) | Op::Const(_) => {}
                Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => {
                    reachable[a.idx()] = true;
                    reachable[b.idx()] = true;
                }
                Op::Neg(a) | Op::Recip(a) | Op::Tanh(a) | Op::Exp(a) | Op::Ln(a) | Op::Sqrt(a) => {
                    reachable[a.idx()] = true;
                }
            }
        }
        let mut adjoint: Vec<Option<Var>> = vec![None; n];
        adjoint[output.idx()] = Some(self.constant(1.0));
        for i in (0..n).rev() {
            let Some(a) = adjoint[i] else { continue };
            if !reachable[i] {
                continue;
            }
            let node = Var(i as u32);
            match self.ops[i] {
                Op::Input(_) | Op::Const(_) => {}
                Op::Add(x, y) => {
                    self.accumulate(&mut adjoint, x, a);
                    self.accumulate(&mut adjoint, y, a);
                }
                Op::Sub(x, y) => {
                    self.accumulate(&mut adjoint, x, a);
                    let na = self.neg(a);
                    self.accumulate(&mut adjoint, y, na);
                }
                Op::Mul(x, y) => {
                    let gx = self.mul(a, y);
                    self.accumulate(&mut adjoint, x, gx);
                    let gy = self.mul(a, x);
                    self.accumulate(&mut adjoint, y, gy);
                }
                Op::Neg(x) => {
                    let g = self.neg(a);
                    self.accumulate(&mut adjoint, x, g);
                }
                Op::Recip(x) => {
                    // d(1/x)/dx = -1/x^2 = -(node * node).
                    let sq = self.mul(node, node);
                    let neg_sq = self.neg(sq);
                    let g = self.mul(a, neg_sq);
                    self.accumulate(&mut adjoint, x, g);
                }
                Op::Tanh(x) => {
                    // d tanh / dx = 1 - tanh^2; reuse the forward node.
                    let t2 = self.mul(node, node);
                    let one = self.constant(1.0);
                    let d = self.sub(one, t2);
                    let g = self.mul(a, d);
                    self.accumulate(&mut adjoint, x, g);
                }
                Op::Exp(x) => {
                    let g = self.mul(a, node);
                    self.accumulate(&mut adjoint, x, g);
                }
                Op::Ln(x) => {
                    let r = self.recip(x);
                    let g = self.mul(a, r);
                    self.accumulate(&mut adjoint, x, g);
                }
                Op::Sqrt(x) => {
                    // d sqrt / dx = 1 / (2 sqrt(x)); reuse the forward node.
                    let r = self.recip(node);
                    let half = self.scale(r, 0.5);
                    let g = self.mul(a, half);
                    self.accumulate(&mut adjoint, x, g);
                }
            }
        }
        wrt.iter()
            .map(|&w| match adjoint.get(w.idx()).copied().flatten() {
                Some(g) => g,
                None => self.constant(0.0),
            })
            .collect()
    }

    fn accumulate(&mut self, adjoint: &mut [Option<Var>], target: Var, term: Var) {
        adjoint[target.idx()] = Some(match adjoint[target.idx()] {
            None => term,
            Some(prev) => self.add(prev, term),
        });
    }

    /// Creates a reusable evaluator sized for the current tape.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator {
            values: vec![0.0; self.ops.len()],
        }
    }
}

/// A forward-evaluation buffer for a [`Tape`].
pub struct Evaluator {
    values: Vec<f64>,
}

impl Evaluator {
    /// Evaluates every node given the input slot values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the tape's input count.
    pub fn eval(&mut self, tape: &Tape, inputs: &[f64]) {
        assert_eq!(inputs.len(), tape.input_count(), "input count mismatch");
        if self.values.len() != tape.len() {
            self.values.resize(tape.len(), 0.0);
        }
        for (i, op) in tape.ops.iter().enumerate() {
            let v = match *op {
                Op::Input(slot) => inputs[slot as usize],
                Op::Const(c) => c,
                Op::Add(a, b) => self.values[a.idx()] + self.values[b.idx()],
                Op::Sub(a, b) => self.values[a.idx()] - self.values[b.idx()],
                Op::Mul(a, b) => self.values[a.idx()] * self.values[b.idx()],
                Op::Neg(a) => -self.values[a.idx()],
                Op::Recip(a) => 1.0 / self.values[a.idx()],
                Op::Tanh(a) => self.values[a.idx()].tanh(),
                Op::Exp(a) => self.values[a.idx()].exp(),
                Op::Ln(a) => self.values[a.idx()].ln(),
                Op::Sqrt(a) => self.values[a.idx()].sqrt(),
            };
            self.values[i] = v;
        }
    }

    /// Reads a node's value from the last evaluation.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.idx()]
    }

    /// Reads many node values.
    pub fn values(&self, vars: &[Var]) -> Vec<f64> {
        vars.iter().map(|&v| self.value(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(tape: &Tape, out: Var, inputs: &[f64]) -> f64 {
        let mut ev = tape.evaluator();
        ev.eval(tape, inputs);
        ev.value(out)
    }

    #[test]
    fn basic_arithmetic() {
        let mut t = Tape::new();
        let x = t.input();
        let y = t.input();
        let s = t.add(x, y);
        let d = t.sub(x, y);
        let p = t.mul(s, d); // x^2 - y^2
        assert_eq!(eval1(&t, p, &[3.0, 2.0]), 5.0);
    }

    #[test]
    fn unary_ops() {
        let mut t = Tape::new();
        let x = t.input();
        let ops = [
            t.neg(x),
            t.recip(x),
            t.tanh(x),
            t.exp(x),
            t.ln(x),
            t.sqrt(x),
        ];
        let mut ev = t.evaluator();
        ev.eval(&t, &[2.0]);
        let got = ev.values(&ops);
        let want = [
            -2.0,
            0.5,
            2.0f64.tanh(),
            2.0f64.exp(),
            2.0f64.ln(),
            2.0f64.sqrt(),
        ];
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn first_order_gradients() {
        // f = x^2 y + tanh(y); df/dx = 2xy, df/dy = x^2 + 1 - tanh^2(y).
        let mut t = Tape::new();
        let x = t.input();
        let y = t.input();
        let x2 = t.mul(x, x);
        let x2y = t.mul(x2, y);
        let th = t.tanh(y);
        let f = t.add(x2y, th);
        let g = t.grad(f, &[x, y]);
        let mut ev = t.evaluator();
        ev.eval(&t, &[1.5, 0.7]);
        assert!((ev.value(g[0]) - 2.0 * 1.5 * 0.7).abs() < 1e-12);
        let want_gy = 1.5f64 * 1.5 + 1.0 - 0.7f64.tanh().powi(2);
        assert!((ev.value(g[1]) - want_gy).abs() < 1e-12);
    }

    #[test]
    fn second_order_gradients() {
        // f = x^3: f' = 3x^2, f'' = 6x, f''' = 6.
        let mut t = Tape::new();
        let x = t.input();
        let x2 = t.mul(x, x);
        let f = t.mul(x2, x);
        let d1 = t.grad(f, &[x])[0];
        let d2 = t.grad(d1, &[x])[0];
        let d3 = t.grad(d2, &[x])[0];
        let mut ev = t.evaluator();
        ev.eval(&t, &[2.0]);
        assert_eq!(ev.value(d1), 12.0);
        assert_eq!(ev.value(d2), 12.0);
        assert_eq!(ev.value(d3), 6.0);
    }

    #[test]
    fn gradient_of_unreachable_is_zero() {
        let mut t = Tape::new();
        let x = t.input();
        let y = t.input();
        let f = t.mul(x, x);
        let g = t.grad(f, &[y]);
        assert_eq!(eval1(&t, g[0], &[5.0, 3.0]), 0.0);
    }

    #[test]
    fn div_and_chain_rule() {
        // f = x / (1 + x^2); f'(x) = (1 - x^2) / (1 + x^2)^2.
        let mut t = Tape::new();
        let x = t.input();
        let one = t.constant(1.0);
        let x2 = t.mul(x, x);
        let denom = t.add(one, x2);
        let f = t.div(x, denom);
        let d = t.grad(f, &[x])[0];
        let mut ev = t.evaluator();
        let xv = 0.8f64;
        ev.eval(&t, &[xv]);
        let want = (1.0 - xv * xv) / (1.0 + xv * xv).powi(2);
        assert!((ev.value(d) - want).abs() < 1e-12);
    }

    #[test]
    fn sum_and_dot_helpers() {
        let mut t = Tape::new();
        let xs = t.inputs(4);
        let total = t.sum(&xs);
        let sq = t.dot(&xs, &xs);
        let mut ev = t.evaluator();
        ev.eval(&t, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ev.value(total), 10.0);
        assert_eq!(ev.value(sq), 30.0);
    }

    #[test]
    fn sq_dist_gradient() {
        // f = ||a - b||^2; df/da_i = 2 (a_i - b_i).
        let mut t = Tape::new();
        let a = t.inputs(3);
        let b = t.inputs(3);
        let f = t.sq_dist(&a, &b);
        let g = t.grad(f, &a);
        let mut ev = t.evaluator();
        ev.eval(&t, &[1.0, 2.0, 3.0, 0.5, 0.5, 0.5]);
        for (i, &gi) in g.iter().enumerate() {
            let want = 2.0 * ((i as f64 + 1.0) - 0.5);
            assert!((ev.value(gi) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_grads() {
        let mut t = Tape::new();
        let logits = t.inputs(3);
        let probs = t.softmax(&logits);
        let total = t.sum(&probs);
        // d p0 / d l0 = p0 (1 - p0).
        let g = t.grad(probs[0], &[logits[0]])[0];
        let mut ev = t.evaluator();
        ev.eval(&t, &[0.1, 0.5, -0.3]);
        assert!((ev.value(total) - 1.0).abs() < 1e-12);
        let p0 = ev.value(probs[0]);
        assert!((ev.value(g) - p0 * (1.0 - p0)).abs() < 1e-12);
    }

    #[test]
    fn numeric_second_order_check() {
        // Random-ish composite: f = tanh(x*y) + exp(-x^2) checked against
        // central differences for d2f/dx2.
        let mut t = Tape::new();
        let x = t.input();
        let y = t.input();
        let xy = t.mul(x, y);
        let th = t.tanh(xy);
        let x2 = t.mul(x, x);
        let nx2 = t.neg(x2);
        let e = t.exp(nx2);
        let f = t.add(th, e);
        let d1 = t.grad(f, &[x])[0];
        let d2 = t.grad(d1, &[x])[0];
        let mut ev = t.evaluator();
        let (xv, yv) = (0.37, -0.81);
        let h = 1e-4;
        let fval = |xx: f64| (xx * yv).tanh() + (-xx * xx).exp();
        ev.eval(&t, &[xv, yv]);
        let numeric = (fval(xv + h) - 2.0 * fval(xv) + fval(xv - h)) / (h * h);
        assert!(
            (ev.value(d2) - numeric).abs() < 1e-5,
            "{} vs {numeric}",
            ev.value(d2)
        );
    }

    #[test]
    fn evaluator_resizes_after_growth() {
        let mut t = Tape::new();
        let x = t.input();
        let f = t.mul(x, x);
        let mut ev = t.evaluator();
        ev.eval(&t, &[2.0]);
        assert_eq!(ev.value(f), 4.0);
        let g = t.grad(f, &[x])[0];
        ev.eval(&t, &[2.0]);
        assert_eq!(ev.value(g), 4.0);
    }
}
