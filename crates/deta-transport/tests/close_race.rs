//! `Network::close` racing concurrent senders and blocked receivers.
//!
//! The supervisor shuts a deployment down by closing mailboxes while
//! node threads are mid-send and mid-receive. Two properties must hold:
//!
//! * every thread blocked in `recv_timeout` wakes with `Closed` (no
//!   thread is left sleeping out its full timeout), and
//! * no message is silently dropped at the close boundary: a send either
//!   returns `Ok` and the message is delivered (observable in the tap
//!   log and receivable until the queue drains), or it returns
//!   `Err(Closed)` and nothing was enqueued. There is no third outcome.

use deta_transport::{LinkModel, Message, NetError, NetTap, Network, RecvError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Records every delivery and drop, keyed by destination.
#[derive(Default)]
struct TapLog {
    delivered: Mutex<Vec<(String, String, Vec<u8>)>>,
    dropped: Mutex<Vec<(String, String, Vec<u8>)>>,
}

impl NetTap for TapLog {
    fn on_deliver(&self, from: &str, to: &str, payload: &[u8]) {
        self.delivered
            .lock()
            .unwrap()
            .push((from.into(), to.into(), payload.to_vec()));
    }
    fn on_drop(&self, from: &str, to: &str, payload: &[u8]) {
        self.dropped
            .lock()
            .unwrap()
            .push((from.into(), to.into(), payload.to_vec()));
    }
}

fn multiset(payloads: impl IntoIterator<Item = Vec<u8>>) -> BTreeMap<Vec<u8>, usize> {
    let mut m = BTreeMap::new();
    for p in payloads {
        *m.entry(p).or_insert(0) += 1;
    }
    m
}

#[test]
fn close_wakes_every_blocked_receiver() {
    let net = Network::new(LinkModel::lan());
    let receivers: Vec<_> = (0..8).map(|i| net.register(&format!("r{i}"))).collect();
    let handles: Vec<_> = receivers
        .into_iter()
        .map(|ep| {
            thread::spawn(move || {
                let t0 = Instant::now();
                let r = ep.recv_timeout(Duration::from_secs(30));
                (r, t0.elapsed())
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(30));
    for i in 0..8 {
        net.close(&format!("r{i}"));
    }
    for h in handles {
        let (r, waited) = h.join().unwrap();
        assert_eq!(r, Err(RecvError::Closed), "woken by close, not timeout");
        assert!(
            waited < Duration::from_secs(10),
            "receiver must wake promptly, waited {waited:?}"
        );
    }
}

#[test]
fn no_accepted_message_is_lost_at_close() {
    let net = Network::new(LinkModel::lan());
    let tap = Arc::new(TapLog::default());
    net.set_tap(Arc::clone(&tap) as Arc<dyn NetTap>);

    let hub = net.register("hub");
    let n_senders = 4usize;

    // Senders spam the hub until their sends start failing with Closed.
    let senders: Vec<_> = (0..n_senders)
        .map(|s| {
            let ep = net.register(&format!("sender-{s}"));
            thread::spawn(move || {
                let mut accepted = Vec::new();
                for i in 0u32.. {
                    let payload = format!("{s}:{i}").into_bytes();
                    match ep.send("hub", payload.clone()) {
                        Ok(()) => accepted.push(payload),
                        Err(NetError::Closed(name)) => {
                            assert_eq!(name, "hub");
                            break;
                        }
                        Err(e) => panic!("unexpected send error: {e}"),
                    }
                    if i % 64 == 0 {
                        thread::yield_now();
                    }
                }
                accepted
            })
        })
        .collect();

    // The hub drains everything until the close is surfaced.
    let receiver = {
        let hub = hub.clone();
        thread::spawn(move || {
            let mut got: Vec<Message> = Vec::new();
            loop {
                match hub.recv_timeout(Duration::from_secs(30)) {
                    Ok(m) => got.push(m),
                    Err(RecvError::Closed) => break,
                    Err(RecvError::Timeout) => panic!("hub starved before close"),
                }
            }
            got
        })
    };

    // Let the storm run, then slam the hub shut mid-flight.
    thread::sleep(Duration::from_millis(50));
    net.close("hub");

    let accepted: Vec<Vec<u8>> = senders
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let received: Vec<Message> = receiver.join().unwrap();

    // Every accepted send was delivered and received; nothing extra
    // appeared. Multisets, so duplicates or losses both fail loudly.
    let accepted_set = multiset(accepted);
    let received_set = multiset(received.into_iter().map(|m| m.payload));
    let tapped_set = multiset(
        tap.delivered
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, to, _)| to == "hub")
            .map(|(_, _, p)| p.clone()),
    );
    assert!(!accepted_set.is_empty(), "storm must accept some messages");
    assert_eq!(
        accepted_set, tapped_set,
        "tap log must record exactly the accepted sends"
    );
    assert_eq!(
        accepted_set, received_set,
        "every accepted message must be received before Closed"
    );
    // With no fault policy installed, nothing may be reported dropped.
    assert!(tap.dropped.lock().unwrap().is_empty());
}
