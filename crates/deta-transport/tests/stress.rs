//! Multi-threaded stress tests for the simulated network: the runtime
//! deploys parties and aggregators as concurrent threads, so the queue
//! layer must preserve per-pair FIFO ordering and lose nothing under
//! contention.

use deta_transport::{LinkModel, Network, RecvError};
use std::collections::HashMap;
use std::time::Duration;

const SENDERS: usize = 8;
const RECEIVERS: usize = 4;
const MSGS_PER_PAIR: u32 = 250;

/// Payload layout: [sender idx, receiver idx, seq (le u32)].
fn encode(s: usize, r: usize, seq: u32) -> Vec<u8> {
    let mut p = vec![s as u8, r as u8];
    p.extend_from_slice(&seq.to_le_bytes());
    p
}

fn decode(p: &[u8]) -> (usize, usize, u32) {
    let mut seq = [0u8; 4];
    seq.copy_from_slice(&p[2..6]);
    (p[0] as usize, p[1] as usize, u32::from_le_bytes(seq))
}

#[test]
fn concurrent_fanout_is_fifo_per_pair_with_no_loss_or_duplication() {
    let net = Network::new(LinkModel::lan());
    let receivers: Vec<_> = (0..RECEIVERS)
        .map(|r| net.register(&format!("rx-{r}")))
        .collect();

    // 8 sender threads, each fanning out to every receiver.
    let senders: Vec<_> = (0..SENDERS)
        .map(|s| {
            let net = net.clone();
            std::thread::spawn(move || {
                let ep = net.register(&format!("tx-{s}"));
                for seq in 0..MSGS_PER_PAIR {
                    for r in 0..RECEIVERS {
                        ep.send(&format!("rx-{r}"), encode(s, r, seq)).unwrap();
                    }
                }
            })
        })
        .collect();

    // 4 receiver threads blocking on their endpoints.
    let consumers: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(r, ep)| {
            std::thread::spawn(move || {
                let expected = SENDERS as u32 * MSGS_PER_PAIR;
                let mut next_seq: HashMap<usize, u32> = HashMap::new();
                let mut got = 0u32;
                while got < expected {
                    let msg = ep
                        .recv_timeout(Duration::from_secs(30))
                        .expect("stress receiver starved");
                    let (s, to, seq) = decode(&msg.payload);
                    assert_eq!(&*msg.from, format!("tx-{s}"), "sender identity mismatch");
                    assert_eq!(to, r, "message routed to the wrong receiver");
                    // Strict per-(sender, receiver) FIFO: every sequence
                    // number arrives exactly once, in order.
                    let want = next_seq.entry(s).or_insert(0);
                    assert_eq!(seq, *want, "rx-{r} saw tx-{s} out of order");
                    *want += 1;
                    got += 1;
                }
                // Nothing extra left over.
                assert!(ep.recv().is_none(), "rx-{r} received surplus messages");
                for (s, n) in next_seq {
                    assert_eq!(n, MSGS_PER_PAIR, "rx-{r} lost messages from tx-{s}");
                }
            })
        })
        .collect();

    for h in senders {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }

    let stats = net.stats();
    let total = (SENDERS * RECEIVERS) as u64 * MSGS_PER_PAIR as u64;
    assert_eq!(stats.messages, total, "stats lost track of sends");
}

#[test]
fn close_unblocks_a_contended_receiver_exactly_once_drained() {
    let net = Network::new(LinkModel::lan());
    let rx = net.register("rx");
    // Several writers race a closer.
    let writers: Vec<_> = (0..4)
        .map(|s| {
            let net = net.clone();
            std::thread::spawn(move || {
                let ep = net.register(&format!("w-{s}"));
                let mut sent = 0u32;
                for seq in 0..100u32 {
                    if ep.send("rx", encode(s, 0, seq)).is_err() {
                        break; // Closed underneath us: expected.
                    }
                    sent += 1;
                }
                sent
            })
        })
        .collect();
    let closer = {
        let net = net.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            net.close("rx");
        })
    };

    // Drain until Closed; everything successfully sent must be seen.
    let mut seen = 0u64;
    loop {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => seen += 1,
            Err(RecvError::Closed) => break,
            Err(RecvError::Timeout) => panic!("receiver starved despite close"),
        }
    }
    closer.join().unwrap();
    let sent: u32 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(seen, sent as u64, "messages lost between send and close");
}
