//! An in-process simulated network with latency accounting and TLS-like
//! secure channels.
//!
//! The paper's prototype connects parties and aggregators with gRPC over
//! TLS; this crate reproduces those message flows in-process:
//!
//! * [`Network`] / [`Endpoint`] — named endpoints exchanging byte messages
//!   through FIFO queues, with every transfer logged for the latency model
//!   (see [`NetStats`] and [`LinkModel`]).
//! * [`secure`] — an authenticated-encryption channel bootstrapped by a
//!   signed Diffie-Hellman handshake, standing in for TLS. The responder
//!   authenticates with its provisioned token key, which is exactly how
//!   DeTA parties confirm they talk to attested aggregators.
//!
//! The network is synchronous and deterministic: messages are delivered in
//! send order, and "latency" is an accounting quantity derived from
//! [`LinkModel`], not wall-clock sleeping. This keeps experiments exactly
//! reproducible while still modelling the paper's transfer costs.
//!
//! Endpoint names are interned as `Arc<str>` so fan-out sends clone a
//! pointer, not a `String`, and [`Network::close`] gives supervisors a
//! poison signal: a thread blocked in [`Endpoint::recv_timeout`] on a
//! closed endpoint wakes with [`RecvError::Closed`] instead of timing out
//! forever while its peer is gone.
//!
//! Two optional hooks make the network a testable *hostile* network
//! (used by `deta-simnet` for deterministic fault injection):
//!
//! * a [`FaultPolicy`] rules on every send attempt with a
//!   [`SendVerdict`] — deliver, drop, duplicate, corrupt, delay, or
//!   crash the sender,
//! * a [`NetTap`] observes every delivery and every loss, giving test
//!   harnesses a complete per-link message log to replay.
//!
//! Both default to absent; production paths pay one `Option` check.

//!
//! # Examples
//!
//! ```
//! use deta_transport::{LinkModel, Network};
//!
//! let net = Network::new(LinkModel::lan());
//! let alice = net.register("alice");
//! let bob = net.register("bob");
//! alice.send("bob", &b"hello"[..]).unwrap();
//! assert_eq!(&bob.recv().unwrap().payload[..], b"hello");
//! ```

pub mod secure;

pub use secure::{HandshakeInitiator, SecureChannel, TransportError};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock.
///
/// A panic on another thread while holding the lock poisons it; the
/// queue state itself is always valid (every critical section leaves it
/// consistent), so recovery is safe and keeps the network usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Gated telemetry for a frame that never reached a mailbox (fault
/// drop, corrupted original, crash, dead destination): a per-link
/// counter plus an event in the sending thread's flight recorder.
/// Disabled cost: one branch + atomic load.
fn note_loss(from: &str, to: &str, len: usize) {
    if !deta_telemetry::enabled() {
        return;
    }
    let link = format!("{from}->{to}");
    deta_telemetry::metrics::counter_add("deta_net_drops_total", &link, 1);
    deta_telemetry::event(
        "net_drop",
        &[
            ("link", deta_telemetry::TelemetryValue::from(link.as_str())),
            ("bytes", deta_telemetry::TelemetryValue::from(len)),
        ],
    );
}

/// A received message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sender endpoint name (shared, not cloned per recipient).
    pub from: Arc<str>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Link cost model: `time = base_s + bytes / bytes_per_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency in seconds (propagation + RPC overhead).
    pub base_s: f64,
    /// Link throughput in bytes per second.
    pub bytes_per_s: f64,
}

impl LinkModel {
    /// A LAN-like default: 1 ms base, 1 Gbit/s.
    pub fn lan() -> LinkModel {
        LinkModel {
            base_s: 1e-3,
            bytes_per_s: 125e6,
        }
    }

    /// A WAN-like profile: 30 ms base, 100 Mbit/s (the paper's aggregators
    /// may sit at different geo-locations).
    pub fn wan() -> LinkModel {
        LinkModel {
            base_s: 30e-3,
            bytes_per_s: 12.5e6,
        }
    }

    /// Simulated transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.base_s + bytes as f64 / self.bytes_per_s
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Accumulated simulated transfer time (sum over messages; the
    /// latency model decides how much of this overlaps).
    pub transfer_time_s: f64,
}

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint does not exist.
    UnknownEndpoint(String),
    /// The destination endpoint was closed (its owner is gone).
    Closed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(name) => write!(f, "unknown endpoint {name:?}"),
            NetError::Closed(name) => write!(f, "endpoint {name:?} is closed"),
        }
    }
}

impl std::error::Error for NetError {}

/// Why a blocking receive returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the timeout; the endpoint is still live.
    Timeout,
    /// The endpoint was closed and its queue is fully drained — no
    /// message will ever arrive again. The distinguishable "peer gone"
    /// signal that lets service loops exit instead of spinning.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Closed => write!(f, "endpoint closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// What a [`FaultPolicy`] decides about one send attempt.
///
/// Every variant keeps the *sender-visible* contract of the healthy
/// network except [`SendVerdict::CrashSender`]: drops and delays return
/// `Ok` to the sender (real networks lose frames silently), so protocol
/// code cannot accidentally compensate for injected faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Deliver normally (the default when no policy is installed).
    Deliver,
    /// Silently lose the message; the sender still sees `Ok`.
    Drop,
    /// Deliver two back-to-back copies of the message.
    Duplicate,
    /// Deliver this payload instead of the original (frame corruption).
    Replace(Vec<u8>),
    /// Hold the message back until `after` further messages have been
    /// delivered on the same (from, to) link, then deliver it (a
    /// deterministic reorder). If the link never carries `after` more
    /// messages the held message is lost. `after == 0` delivers
    /// immediately.
    Delay {
        /// How many subsequent same-link deliveries to wait for.
        after: u32,
    },
    /// Hold the message back until `after` further messages have been
    /// delivered *anywhere* on the network, then deliver it. Unlike
    /// [`SendVerdict::Delay`], release does not depend on the stalled
    /// link carrying more traffic — any background flow (heartbeats,
    /// other links) drains it, so the hold is transient whenever the
    /// system is live at all. This is the link-restart model: the
    /// transport buffers the frame and autonomously replays it once the
    /// link heals, without the application having to resend.
    Hold {
        /// How many subsequent network-wide deliveries to wait for.
        after: u32,
    },
    /// Close the *sender's* endpoint (peer crash): the message is lost
    /// and the send fails with [`NetError::Closed`] naming the sender.
    /// The crashed node keeps its ability to send (its outgoing half is
    /// not modelled), but its service loop will drain and observe
    /// [`RecvError::Closed`].
    CrashSender,
}

/// Rules on every send attempt. Installed via
/// [`Network::set_fault_policy`].
///
/// Called with the network lock held: implementations must be fast and
/// must not call back into the network (deadlock). Determinism is the
/// implementor's job — `deta-simnet` keys decisions on per-link send
/// counters so thread scheduling cannot change a verdict.
pub trait FaultPolicy: Send + Sync {
    /// Decides the fate of one message from `from` to `to`.
    fn on_send(&self, from: &str, to: &str, payload: &[u8]) -> SendVerdict;
}

/// Observes the network: one callback per actual delivery (enqueue into
/// the destination mailbox) and one per loss. Installed via
/// [`Network::set_tap`].
///
/// Called with the network lock held — same constraints as
/// [`FaultPolicy`]. Delivery order as observed by the tap is exactly
/// mailbox enqueue order, which makes tap logs replayable evidence of
/// everything a node ever saw.
pub trait NetTap: Send + Sync {
    /// A payload was enqueued into `to`'s mailbox.
    fn on_deliver(&self, from: &str, to: &str, payload: &[u8]);
    /// A send attempt did not enqueue anything: fault drop, corruption
    /// (the original payload is reported lost), crash, or a held message
    /// whose destination closed before release.
    fn on_drop(&self, _from: &str, _to: &str, _payload: &[u8]) {}
}

/// One endpoint's queue plus its liveness flag.
struct Mailbox {
    queue: VecDeque<Message>,
    closed: bool,
}

/// A message held back by [`SendVerdict::Delay`] or
/// [`SendVerdict::Hold`], waiting for `after` more deliveries on its
/// (from, to) link (`any == false`) or anywhere (`any == true`).
struct Held {
    from: Arc<str>,
    to: String,
    payload: Vec<u8>,
    after: u32,
    any: bool,
}

struct NetState {
    queues: HashMap<Arc<str>, Mailbox>,
    stats: NetStats,
    /// Delivered payload bytes per directed (from, to) link. Always on
    /// (it is what `ThreadedSession` bills round upload/download bytes
    /// from) and monotonic — unlike [`NetStats`] it is *not* cleared by
    /// [`Network::reset_stats`], so concurrent windows can be computed
    /// as deltas without racing a reset.
    link_bytes: BTreeMap<(Arc<str>, Arc<str>), u64>,
    policy: Option<Arc<dyn FaultPolicy>>,
    tap: Option<Arc<dyn NetTap>>,
    held: Vec<Held>,
}

/// The shared simulated network.
#[derive(Clone)]
pub struct Network {
    state: Arc<Mutex<NetState>>,
    arrivals: Arc<Condvar>,
    /// Link model applied to every transfer.
    pub link: LinkModel,
}

impl Network {
    /// Creates a network with the given link model.
    pub fn new(link: LinkModel) -> Network {
        Network {
            state: Arc::new(Mutex::new(NetState {
                queues: HashMap::new(),
                stats: NetStats::default(),
                link_bytes: BTreeMap::new(),
                policy: None,
                tap: None,
                held: Vec::new(),
            })),
            arrivals: Arc::new(Condvar::new()),
            link,
        }
    }

    /// Registers a named endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (endpoint names are
    /// protocol identities; accidental reuse is a bug).
    pub fn register(&self, name: &str) -> Endpoint {
        let name: Arc<str> = Arc::from(name);
        let mut st = lock(&self.state);
        let prev = st.queues.insert(
            Arc::clone(&name),
            Mailbox {
                queue: VecDeque::new(),
                closed: false,
            },
        );
        assert!(prev.is_none(), "endpoint {name:?} already registered");
        Endpoint {
            name,
            network: self.clone(),
        }
    }

    /// Closes an endpoint: queued messages stay receivable, but new sends
    /// fail with [`NetError::Closed`] and receivers that drain the queue
    /// get [`RecvError::Closed`] instead of blocking. Wakes every thread
    /// currently parked in a blocking receive.
    ///
    /// Closing an unknown endpoint is a no-op; closing twice is idempotent.
    pub fn close(&self, name: &str) {
        let mut st = lock(&self.state);
        if let Some(mb) = st.queues.get_mut(name) {
            mb.closed = true;
        }
        drop(st);
        deta_telemetry::metrics::counter_add("deta_net_closes_total", name, 1);
        self.arrivals.notify_all();
    }

    /// Whether `name` is registered and closed.
    pub fn is_closed(&self, name: &str) -> bool {
        lock(&self.state).queues.get(name).is_some_and(|m| m.closed)
    }

    /// Returns a snapshot of the traffic statistics.
    pub fn stats(&self) -> NetStats {
        lock(&self.state).stats.clone()
    }

    /// Snapshot of delivered payload bytes per directed link, keyed
    /// `(from, to)`. Monotonic since construction (never reset), so
    /// callers bill traffic windows as deltas between two snapshots —
    /// this is the exact ground truth the `NetTap` seam observes,
    /// without occupying the (single) tap slot.
    pub fn link_bytes(&self) -> BTreeMap<(String, String), u64> {
        lock(&self.state)
            .link_bytes
            .iter()
            .map(|((f, t), &b)| ((f.to_string(), t.to_string()), b))
            .collect()
    }

    /// Resets the traffic statistics (e.g. between training rounds).
    pub fn reset_stats(&self) {
        lock(&self.state).stats = NetStats::default();
    }

    /// Installs a fault policy ruling on every subsequent send. Replaces
    /// any previous policy; affects all clones of this network.
    pub fn set_fault_policy(&self, policy: Arc<dyn FaultPolicy>) {
        lock(&self.state).policy = Some(policy);
    }

    /// Installs a tap observing every delivery and loss. Replaces any
    /// previous tap; affects all clones of this network.
    pub fn set_tap(&self, tap: Arc<dyn NetTap>) {
        lock(&self.state).tap = Some(tap);
    }

    /// Sends `payload` to `to` attributed to the sender name `from`,
    /// without holding an [`Endpoint`] for `from`.
    ///
    /// This is the bridge seam for alternative transport backends: a
    /// process that receives a frame over an external medium (e.g. a TCP
    /// socket) re-emits it here so the [`FaultPolicy`], the [`NetTap`],
    /// the per-link byte counters, and the close semantics all observe
    /// the frame exactly as if `from` had sent it in-process. The
    /// attributed sender does not need to be a registered endpoint
    /// (interned names are reused when it is); the destination rules are
    /// identical to [`Endpoint::send`].
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownEndpoint`] / [`NetError::Closed`] exactly as
    /// for [`Endpoint::send`].
    pub fn send_as(&self, from: &str, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let from: Arc<str> = {
            let st = lock(&self.state);
            match st.queues.get_key_value(from) {
                Some((name, _)) => Arc::clone(name),
                None => Arc::from(from),
            }
        };
        self.send(&from, to, payload)
    }

    /// Delivers `payload` into `to`'s mailbox (stats + tap), then releases
    /// any held messages whose same-link delivery countdown reaches zero.
    /// Releases are themselves deliveries, so chained holds drain in FIFO
    /// order — a bounded worklist, not recursion.
    fn deliver_locked(&self, st: &mut NetState, from: &Arc<str>, to: &str, payload: Vec<u8>) {
        let tap = st.tap.clone();
        let mut work: VecDeque<(Arc<str>, String, Vec<u8>)> = VecDeque::new();
        work.push_back((Arc::clone(from), to.to_string(), payload));
        while let Some((from, to, payload)) = work.pop_front() {
            let len = payload.len();
            let deliverable = st.queues.get(to.as_str()).is_some_and(|mb| !mb.closed);
            if !deliverable {
                // A held message can outlive its destination.
                if let Some(t) = &tap {
                    t.on_drop(&from, &to, &payload);
                }
                note_loss(&from, &to, len);
                continue;
            }
            if let Some(t) = &tap {
                t.on_deliver(&from, &to, &payload);
            }
            let mut depth = 0usize;
            if let Some(mb) = st.queues.get_mut(to.as_str()) {
                mb.queue.push_back(Message {
                    from: Arc::clone(&from),
                    payload,
                });
                depth = mb.queue.len();
            }
            st.stats.messages += 1;
            st.stats.bytes += len as u64;
            st.stats.transfer_time_s += self.link.transfer_time(len);
            // Per-link ground truth for byte accounting; keys reuse the
            // interned endpoint names, so steady state allocates nothing.
            if let Some((to_key, _)) = st.queues.get_key_value(to.as_str()) {
                let link = (Arc::clone(&from), Arc::clone(to_key));
                *st.link_bytes.entry(link).or_insert(0) += len as u64;
            }
            // Gated observability at the same choke point the tap sees
            // (the metrics registry takes no other lock, so observing
            // under the network lock cannot deadlock).
            if deta_telemetry::enabled() {
                let link = format!("{from}->{to}");
                deta_telemetry::metrics::counter_add("deta_net_frames_total", &link, 1);
                deta_telemetry::metrics::counter_add("deta_net_bytes_total", &link, len as u64);
                deta_telemetry::metrics::histogram_observe(
                    "deta_net_queue_depth",
                    &to,
                    depth as f64,
                );
            }
            // One more delivery happened on (from, to): advance held
            // messages on that link — plus network-scoped holds, which
            // count every delivery — and release the ripe ones, in the
            // order they were held.
            let mut i = 0;
            while i < st.held.len() {
                let matches = st.held[i].any
                    || (st.held[i].from.as_ref() == from.as_ref() && st.held[i].to == to.as_str());
                if matches {
                    st.held[i].after = st.held[i].after.saturating_sub(1);
                    if st.held[i].after == 0 {
                        let h = st.held.remove(i);
                        work.push_back((h.from, h.to, h.payload));
                        continue;
                    }
                }
                i += 1;
            }
        }
    }

    fn send(&self, from: &Arc<str>, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let mut st = lock(&self.state);
        // Destination errors come before fault verdicts so close/unknown
        // semantics are identical with and without a policy installed.
        match st.queues.get(to) {
            None => return Err(NetError::UnknownEndpoint(to.to_string())),
            Some(mb) if mb.closed => return Err(NetError::Closed(to.to_string())),
            Some(_) => {}
        }
        let verdict = match &st.policy {
            Some(p) => p.on_send(from, to, &payload),
            None => SendVerdict::Deliver,
        };
        let tap = st.tap.clone();
        let result = match verdict {
            SendVerdict::Deliver => {
                self.deliver_locked(&mut st, from, to, payload);
                Ok(())
            }
            SendVerdict::Drop => {
                if let Some(t) = &tap {
                    t.on_drop(from, to, &payload);
                }
                note_loss(from, to, payload.len());
                Ok(())
            }
            SendVerdict::Duplicate => {
                self.deliver_locked(&mut st, from, to, payload.clone());
                self.deliver_locked(&mut st, from, to, payload);
                Ok(())
            }
            SendVerdict::Replace(alt) => {
                if let Some(t) = &tap {
                    t.on_drop(from, to, &payload);
                }
                note_loss(from, to, payload.len());
                self.deliver_locked(&mut st, from, to, alt);
                Ok(())
            }
            SendVerdict::Delay { after: 0 } | SendVerdict::Hold { after: 0 } => {
                self.deliver_locked(&mut st, from, to, payload);
                Ok(())
            }
            SendVerdict::Delay { after } => {
                st.held.push(Held {
                    from: Arc::clone(from),
                    to: to.to_string(),
                    payload,
                    after,
                    any: false,
                });
                Ok(())
            }
            SendVerdict::Hold { after } => {
                st.held.push(Held {
                    from: Arc::clone(from),
                    to: to.to_string(),
                    payload,
                    after,
                    any: true,
                });
                Ok(())
            }
            SendVerdict::CrashSender => {
                if let Some(t) = &tap {
                    t.on_drop(from, to, &payload);
                }
                note_loss(from, to, payload.len());
                if let Some(mb) = st.queues.get_mut(from.as_ref()) {
                    mb.closed = true;
                }
                Err(NetError::Closed(from.to_string()))
            }
        };
        drop(st);
        self.arrivals.notify_all();
        result
    }

    fn recv(&self, name: &str) -> Option<Message> {
        lock(&self.state).queues.get_mut(name)?.queue.pop_front()
    }

    fn recv_timeout(&self, name: &str, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock(&self.state);
        loop {
            if let Some(mb) = st.queues.get_mut(name) {
                if let Some(msg) = mb.queue.pop_front() {
                    return Ok(msg);
                }
                if mb.closed {
                    // Queue drained and no sender can ever refill it.
                    return Err(RecvError::Closed);
                }
            } else {
                return Err(RecvError::Closed);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            let (guard, result) = self
                .arrivals
                .wait_timeout(st, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if result.timed_out() {
                // Re-check once: closure or an arrival may have raced the
                // timeout.
                if let Some(mb) = st.queues.get_mut(name) {
                    if let Some(msg) = mb.queue.pop_front() {
                        return Ok(msg);
                    }
                    if mb.closed {
                        return Err(RecvError::Closed);
                    }
                }
                return Err(RecvError::Timeout);
            }
        }
    }
}

/// A named participant on the network.
#[derive(Clone)]
pub struct Endpoint {
    name: Arc<str>,
    network: Network,
}

impl Endpoint {
    /// This endpoint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `payload` to the endpoint named `to`.
    ///
    /// While the telemetry sink is enabled the payload is wrapped in a
    /// trace envelope carrying the sending thread's trace context plus
    /// a fresh message id, and a `net_send` edge event lands in the
    /// sender's flight recorder. With telemetry disabled the bytes on
    /// the wire are exactly the payload — deployments with the sink off
    /// stay bit-identical to builds without tracing.
    pub fn send(&self, to: &str, payload: impl Into<Vec<u8>>) -> Result<(), NetError> {
        let payload = payload.into();
        let payload = if deta_telemetry::enabled() {
            let ctx = deta_telemetry::trace::current();
            let msg_id = deta_telemetry::trace::next_msg_id();
            // Ids and sizes only — no peer-name string field: this runs
            // per message, and the `net_recv` twin's node attribution
            // already names the destination in the merged trace.
            deta_telemetry::event(
                "net_send",
                &[
                    ("msg_id", deta_telemetry::TelemetryValue::U64(msg_id)),
                    (
                        "bytes",
                        deta_telemetry::TelemetryValue::U64(payload.len() as u64),
                    ),
                ],
            );
            deta_telemetry::trace::wrap_envelope(ctx.trace_id, msg_id, ctx.parent, &payload)
        } else {
            payload
        };
        self.network.send(&self.name, to, payload)
    }

    /// Receives the next queued message, if any.
    pub fn recv(&self) -> Option<Message> {
        self.network.recv(&self.name).map(|m| self.arrive(m))
    }

    /// Blocks (up to `timeout`) for the next message — the primitive that
    /// lets aggregator threads sleep instead of spinning. Returns
    /// [`RecvError::Closed`] once the endpoint is closed and drained, so
    /// service loops can distinguish "quiet" from "gone".
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        self.network
            .recv_timeout(&self.name, timeout)
            .map(|m| self.arrive(m))
    }

    /// [`Endpoint::recv_timeout`] without trace-envelope processing:
    /// the payload comes back verbatim, envelope and all. Bridge relays
    /// (the socket hub's pumps) use this so a trace context crosses the
    /// process boundary intact instead of being adopted by the relay
    /// thread.
    pub fn recv_timeout_raw(&self, timeout: Duration) -> Result<Message, RecvError> {
        self.network.recv_timeout(&self.name, timeout)
    }

    /// Unwraps a trace envelope, if present, from an arrived message:
    /// the carried context is adopted by the receiving thread (so spans
    /// emitted while handling the message parent to it) and a
    /// `net_recv` edge event lands in the receiver's flight recorder.
    /// Bare payloads pass through untouched.
    fn arrive(&self, mut msg: Message) -> Message {
        if let Some((trace_id, msg_id, _parent, _inner)) =
            deta_telemetry::trace::unwrap_envelope(&msg.payload)
        {
            deta_telemetry::trace::set_current(deta_telemetry::TraceCtx {
                trace_id,
                parent: msg_id,
            });
            // Strip the envelope in place (memmove within the existing
            // allocation) rather than copying the payload out; this
            // runs per message on the hot path.
            msg.payload.drain(..deta_telemetry::trace::ENVELOPE_LEN);
            deta_telemetry::event(
                "net_recv",
                &[
                    ("msg_id", deta_telemetry::TelemetryValue::U64(msg_id)),
                    (
                        "bytes",
                        deta_telemetry::TelemetryValue::U64(msg.payload.len() as u64),
                    ),
                ],
            );
        }
        msg
    }

    /// Closes this endpoint (see [`Network::close`]).
    pub fn close(&self) {
        self.network.close(&self.name);
    }

    /// Whether this endpoint has been closed.
    pub fn is_closed(&self) -> bool {
        self.network.is_closed(&self.name)
    }

    /// Receives the next message, requiring it to come from `from`.
    ///
    /// Messages from other senders are left out-of-band (returned to the
    /// back of the queue) — callers in this codebase drive strict
    /// request/response flows, so a mismatch indicates a protocol bug and
    /// is surfaced as `None` after requeueing.
    pub fn recv_from(&self, from: &str) -> Option<Vec<u8>> {
        let msg = self.network.recv(&self.name)?;
        if &*msg.from == from {
            Some(self.arrive(msg).payload)
        } else {
            // Requeue at the back (envelope intact) to avoid losing the
            // message.
            let _ = self.network.send(&msg.from, &self.name, msg.payload);
            None
        }
    }

    /// Drains all currently queued messages.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.recv() {
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"hello"[..]).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(&*m.from, "a");
        assert_eq!(&m.payload[..], b"hello");
        assert!(b.recv().is_none());
    }

    #[test]
    fn fifo_ordering() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        for i in 0u8..5 {
            a.send("b", vec![i]).unwrap();
        }
        for i in 0u8..5 {
            assert_eq!(&b.recv().unwrap().payload[..], &[i]);
        }
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        assert_eq!(
            a.send("ghost", &b"x"[..]),
            Err(NetError::UnknownEndpoint("ghost".to_string()))
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let net = Network::new(LinkModel::lan());
        let _a = net.register("a");
        let _a2 = net.register("a");
    }

    #[test]
    fn stats_accumulate() {
        let net = Network::new(LinkModel {
            base_s: 1.0,
            bytes_per_s: 10.0,
        });
        let a = net.register("a");
        let _b = net.register("b");
        a.send("b", vec![0u8; 20]).unwrap();
        a.send("b", vec![0u8; 10]).unwrap();
        let st = net.stats();
        assert_eq!(st.messages, 2);
        assert_eq!(st.bytes, 30);
        assert!((st.transfer_time_s - (1.0 + 2.0 + 1.0 + 1.0)).abs() < 1e-9);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn link_bytes_track_deliveries_per_directed_link() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", vec![0u8; 7]).unwrap();
        a.send("b", vec![0u8; 5]).unwrap();
        b.send("a", vec![0u8; 3]).unwrap();
        let lb = net.link_bytes();
        assert_eq!(lb.get(&("a".to_string(), "b".to_string())), Some(&12));
        assert_eq!(lb.get(&("b".to_string(), "a".to_string())), Some(&3));
        // Monotonic: reset_stats clears NetStats but not the link map,
        // so in-flight accounting windows survive a reset.
        net.reset_stats();
        assert_eq!(
            net.link_bytes().get(&("a".to_string(), "b".to_string())),
            Some(&12)
        );
    }

    #[test]
    fn link_bytes_exclude_lost_frames() {
        struct DropAll;
        impl FaultPolicy for DropAll {
            fn on_send(&self, _f: &str, _t: &str, _p: &[u8]) -> SendVerdict {
                SendVerdict::Drop
            }
        }
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let _b = net.register("b");
        net.set_fault_policy(Arc::new(DropAll));
        a.send("b", vec![0u8; 9]).unwrap();
        assert!(net.link_bytes().is_empty());
    }

    #[test]
    fn transfer_time_model() {
        let lan = LinkModel::lan();
        // 125 MB at 1 Gbit/s is 1 second plus base.
        assert!((lan.transfer_time(125_000_000) - 1.001).abs() < 1e-6);
        let wan = LinkModel::wan();
        assert!(wan.transfer_time(1000) > lan.transfer_time(1000));
    }

    #[test]
    fn recv_from_filters_and_requeues() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        c.send("a", &b"noise"[..]).unwrap();
        b.send("a", &b"signal"[..]).unwrap();
        // First attempt sees the message from c, requeues it.
        assert!(a.recv_from("b").is_none());
        // Now b's message is at the front.
        assert_eq!(&a.recv_from("b").unwrap()[..], b"signal");
        // The noise message is still there.
        assert_eq!(&*a.recv().unwrap().from, "c");
    }

    #[test]
    fn drain_empties_queue() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"1"[..]).unwrap();
        a.send("b", &b"2"[..]).unwrap();
        assert_eq!(b.drain().len(), 2);
        assert!(b.recv().is_none());
    }

    #[test]
    fn recv_timeout_times_out_when_quiet() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn recv_timeout_wakes_on_arrival() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let _ = b; // registered so sends resolve
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            let sender = net2.register("sender");
            std::thread::sleep(Duration::from_millis(20));
            sender.send("a", &b"wake"[..]).unwrap();
        });
        let msg = a
            .recv_timeout(Duration::from_secs(2))
            .expect("woken by arrival");
        assert_eq!(&msg.payload[..], b"wake");
        handle.join().unwrap();
    }

    #[test]
    fn network_is_cloneable_and_shared() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let net2 = net.clone();
        let b = net2.register("b");
        a.send("b", &b"via clone"[..]).unwrap();
        assert!(b.recv().is_some());
    }

    #[test]
    fn sender_name_is_shared_not_cloned() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        a.send("b", &b"x"[..]).unwrap();
        a.send("c", &b"x"[..]).unwrap();
        let mb = b.recv().unwrap();
        let mc = c.recv().unwrap();
        // Both recipients see the very same interned sender name.
        assert!(Arc::ptr_eq(&mb.from, &mc.from));
    }

    #[test]
    fn close_rejects_new_sends_but_delivers_queued() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"before"[..]).unwrap();
        net.close("b");
        assert_eq!(
            a.send("b", &b"after"[..]),
            Err(NetError::Closed("b".to_string()))
        );
        // The pre-close message is still delivered...
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().payload[..],
            b"before"
        );
        // ...then the closure is surfaced, immediately (no timeout wait).
        let t0 = std::time::Instant::now();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)),
            Err(RecvError::Closed)
        );
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert!(b.is_closed());
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            net2.close("a");
        });
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(10)),
            Err(RecvError::Closed)
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "woken by close, not timeout"
        );
        handle.join().unwrap();
    }

    #[test]
    fn close_is_idempotent_and_unknown_close_is_noop() {
        let net = Network::new(LinkModel::lan());
        let _a = net.register("a");
        net.close("a");
        net.close("a");
        net.close("ghost");
        assert!(net.is_closed("a"));
        assert!(!net.is_closed("ghost"));
    }

    /// A policy scripted per send attempt (global counter).
    struct Script(Mutex<Vec<SendVerdict>>);

    impl FaultPolicy for Script {
        fn on_send(&self, _from: &str, _to: &str, _payload: &[u8]) -> SendVerdict {
            let mut s = lock(&self.0);
            if s.is_empty() {
                SendVerdict::Deliver
            } else {
                s.remove(0)
            }
        }
    }

    /// A tap counting deliveries and drops, recording delivered payloads.
    #[derive(Default)]
    struct Counter {
        delivered: Mutex<Vec<(String, String, Vec<u8>)>>,
        dropped: Mutex<Vec<(String, String, Vec<u8>)>>,
    }

    impl NetTap for Counter {
        fn on_deliver(&self, from: &str, to: &str, payload: &[u8]) {
            lock(&self.delivered).push((from.into(), to.into(), payload.to_vec()));
        }
        fn on_drop(&self, from: &str, to: &str, payload: &[u8]) {
            lock(&self.dropped).push((from.into(), to.into(), payload.to_vec()));
        }
    }

    fn fault_net(script: Vec<SendVerdict>) -> (Network, Arc<Counter>) {
        let net = Network::new(LinkModel::lan());
        let tap = Arc::new(Counter::default());
        net.set_fault_policy(Arc::new(Script(Mutex::new(script))));
        net.set_tap(Arc::clone(&tap) as Arc<dyn NetTap>);
        (net, tap)
    }

    #[test]
    fn fault_drop_is_silent_and_tapped() {
        let (net, tap) = fault_net(vec![SendVerdict::Drop]);
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"lost"[..]).unwrap();
        a.send("b", &b"kept"[..]).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], b"kept");
        assert!(b.recv().is_none());
        assert_eq!(lock(&tap.dropped).len(), 1);
        assert_eq!(lock(&tap.delivered).len(), 1);
        // Dropped messages do not count as traffic.
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn fault_duplicate_delivers_two_copies() {
        let (net, tap) = fault_net(vec![SendVerdict::Duplicate]);
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"x"[..]).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], b"x");
        assert_eq!(&b.recv().unwrap().payload[..], b"x");
        assert!(b.recv().is_none());
        assert_eq!(lock(&tap.delivered).len(), 2);
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn fault_replace_corrupts_frame() {
        let (net, tap) = fault_net(vec![SendVerdict::Replace(b"bad".to_vec())]);
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"good"[..]).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], b"bad");
        // Original reported lost, replacement reported delivered.
        assert_eq!(lock(&tap.dropped)[0].2, b"good".to_vec());
        assert_eq!(lock(&tap.delivered)[0].2, b"bad".to_vec());
    }

    #[test]
    fn fault_delay_reorders_within_link() {
        let (net, _tap) = fault_net(vec![SendVerdict::Delay { after: 2 }]);
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"1"[..]).unwrap(); // held until 2 more deliveries
        a.send("b", &b"2"[..]).unwrap();
        a.send("b", &b"3"[..]).unwrap(); // releases "1" right after
        a.send("b", &b"4"[..]).unwrap();
        let order: Vec<Vec<u8>> = b.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(
            order,
            vec![b"2".to_vec(), b"3".to_vec(), b"1".to_vec(), b"4".to_vec()]
        );
    }

    #[test]
    fn fault_delay_unreleased_message_is_lost() {
        let (net, tap) = fault_net(vec![SendVerdict::Delay { after: 3 }]);
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"held"[..]).unwrap();
        a.send("b", &b"only"[..]).unwrap();
        let got = b.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"only");
        // Never released, never tapped as delivered.
        assert_eq!(lock(&tap.delivered).len(), 1);
    }

    #[test]
    fn fault_delay_only_counts_same_link_deliveries() {
        let (net, _tap) = fault_net(vec![SendVerdict::Delay { after: 1 }]);
        let a = net.register("a");
        let c = net.register("c");
        let b = net.register("b");
        a.send("b", &b"held"[..]).unwrap();
        // Traffic on another link must not release it.
        c.send("b", &b"other"[..]).unwrap();
        assert_eq!(b.drain().len(), 1);
        // Same-link traffic does.
        a.send("b", &b"trigger"[..]).unwrap();
        let order: Vec<Vec<u8>> = b.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(order, vec![b"trigger".to_vec(), b"held".to_vec()]);
    }

    #[test]
    fn fault_hold_releases_on_unrelated_traffic() {
        let (net, _tap) = fault_net(vec![SendVerdict::Hold { after: 1 }]);
        let a = net.register("a");
        let c = net.register("c");
        let b = net.register("b");
        a.send("b", &b"held"[..]).unwrap();
        assert_eq!(b.drain().len(), 0);
        // Any delivery anywhere drains a network-scoped hold — the
        // stalled link itself never has to carry another frame.
        c.send("b", &b"other"[..]).unwrap();
        let order: Vec<Vec<u8>> = b.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(order, vec![b"other".to_vec(), b"held".to_vec()]);
    }

    #[test]
    fn fault_hold_preserves_link_fifo_among_held() {
        let (net, _tap) = fault_net(vec![
            SendVerdict::Hold { after: 2 },
            SendVerdict::Hold { after: 2 },
        ]);
        let a = net.register("a");
        let c = net.register("c");
        let b = net.register("b");
        a.send("b", &b"1"[..]).unwrap();
        a.send("b", &b"2"[..]).unwrap();
        // The release is itself a delivery, so one trigger cascades the
        // whole buffer out in the order it was held.
        c.send("b", &b"x"[..]).unwrap();
        c.send("b", &b"y"[..]).unwrap();
        let order: Vec<Vec<u8>> = b.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(
            order,
            vec![b"x".to_vec(), b"y".to_vec(), b"1".to_vec(), b"2".to_vec()]
        );
    }

    #[test]
    fn fault_crash_closes_sender_and_loses_message() {
        let (net, tap) = fault_net(vec![SendVerdict::CrashSender]);
        let a = net.register("a");
        let b = net.register("b");
        assert_eq!(
            a.send("b", &b"dying"[..]),
            Err(NetError::Closed("a".to_string()))
        );
        assert!(a.is_closed());
        assert!(b.recv().is_none());
        assert_eq!(lock(&tap.dropped).len(), 1);
        // The crashed node still drains to Closed, like any closed endpoint.
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Closed)
        );
    }

    #[test]
    fn tap_sees_sender_and_destination() {
        let (net, tap) = fault_net(vec![]);
        let a = net.register("a");
        let _b = net.register("b");
        a.send("b", &b"x"[..]).unwrap();
        let d = lock(&tap.delivered);
        assert_eq!(d[0].0, "a");
        assert_eq!(d[0].1, "b");
    }

    #[test]
    fn send_as_attributes_sender_and_bills_link() {
        let net = Network::new(LinkModel::lan());
        let b = net.register("b");
        // "remote" is not a registered endpoint — a bridged sender.
        net.send_as("remote", "b", b"x".to_vec()).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(&*m.from, "remote");
        // Registered senders reuse the interned name.
        let a = net.register("a");
        net.send_as("a", "b", vec![0u8; 4]).unwrap();
        let m = b.recv().unwrap();
        let direct = {
            a.send("b", &b"y"[..]).unwrap();
            b.recv().unwrap()
        };
        assert!(Arc::ptr_eq(&m.from, &direct.from));
        assert_eq!(
            net.link_bytes().get(&("a".to_string(), "b".to_string())),
            Some(&5)
        );
    }

    #[test]
    fn send_as_observed_by_policy_and_tap() {
        let (net, tap) = fault_net(vec![SendVerdict::Drop]);
        let _b = net.register("b");
        net.send_as("remote", "b", b"lost".to_vec()).unwrap();
        net.send_as("remote", "b", b"kept".to_vec()).unwrap();
        assert_eq!(lock(&tap.dropped).len(), 1);
        assert_eq!(lock(&tap.delivered).len(), 1);
        assert_eq!(lock(&tap.delivered)[0].0, "remote");
    }

    #[test]
    fn send_as_honors_close_and_unknown() {
        let net = Network::new(LinkModel::lan());
        let _b = net.register("b");
        net.close("b");
        assert_eq!(
            net.send_as("remote", "b", b"x".to_vec()),
            Err(NetError::Closed("b".to_string()))
        );
        assert_eq!(
            net.send_as("remote", "ghost", b"x".to_vec()),
            Err(NetError::UnknownEndpoint("ghost".to_string()))
        );
    }

    #[test]
    fn policy_rules_after_closed_check() {
        // Sends to a closed endpoint fail before the policy sees them.
        let (net, tap) = fault_net(vec![SendVerdict::Duplicate]);
        let a = net.register("a");
        let _b = net.register("b");
        net.close("b");
        assert_eq!(
            a.send("b", &b"x"[..]),
            Err(NetError::Closed("b".to_string()))
        );
        assert_eq!(lock(&tap.delivered).len(), 0);
    }
}
