//! An in-process simulated network with latency accounting and TLS-like
//! secure channels.
//!
//! The paper's prototype connects parties and aggregators with gRPC over
//! TLS; this crate reproduces those message flows in-process:
//!
//! * [`Network`] / [`Endpoint`] — named endpoints exchanging byte messages
//!   through FIFO queues, with every transfer logged for the latency model
//!   (see [`NetStats`] and [`LinkModel`]).
//! * [`secure`] — an authenticated-encryption channel bootstrapped by a
//!   signed Diffie-Hellman handshake, standing in for TLS. The responder
//!   authenticates with its provisioned token key, which is exactly how
//!   DeTA parties confirm they talk to attested aggregators.
//!
//! The network is synchronous and deterministic: messages are delivered in
//! send order, and "latency" is an accounting quantity derived from
//! [`LinkModel`], not wall-clock sleeping. This keeps experiments exactly
//! reproducible while still modelling the paper's transfer costs.
//!
//! Endpoint names are interned as `Arc<str>` so fan-out sends clone a
//! pointer, not a `String`, and [`Network::close`] gives supervisors a
//! poison signal: a thread blocked in [`Endpoint::recv_timeout`] on a
//! closed endpoint wakes with [`RecvError::Closed`] instead of timing out
//! forever while its peer is gone.

//!
//! # Examples
//!
//! ```
//! use deta_transport::{LinkModel, Network};
//!
//! let net = Network::new(LinkModel::lan());
//! let alice = net.register("alice");
//! let bob = net.register("bob");
//! alice.send("bob", &b"hello"[..]).unwrap();
//! assert_eq!(&bob.recv().unwrap().payload[..], b"hello");
//! ```

pub mod secure;

pub use secure::{HandshakeInitiator, SecureChannel, TransportError};

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock.
///
/// A panic on another thread while holding the lock poisons it; the
/// queue state itself is always valid (every critical section leaves it
/// consistent), so recovery is safe and keeps the network usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A received message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sender endpoint name (shared, not cloned per recipient).
    pub from: Arc<str>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Link cost model: `time = base_s + bytes / bytes_per_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency in seconds (propagation + RPC overhead).
    pub base_s: f64,
    /// Link throughput in bytes per second.
    pub bytes_per_s: f64,
}

impl LinkModel {
    /// A LAN-like default: 1 ms base, 1 Gbit/s.
    pub fn lan() -> LinkModel {
        LinkModel {
            base_s: 1e-3,
            bytes_per_s: 125e6,
        }
    }

    /// A WAN-like profile: 30 ms base, 100 Mbit/s (the paper's aggregators
    /// may sit at different geo-locations).
    pub fn wan() -> LinkModel {
        LinkModel {
            base_s: 30e-3,
            bytes_per_s: 12.5e6,
        }
    }

    /// Simulated transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.base_s + bytes as f64 / self.bytes_per_s
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Accumulated simulated transfer time (sum over messages; the
    /// latency model decides how much of this overlaps).
    pub transfer_time_s: f64,
}

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint does not exist.
    UnknownEndpoint(String),
    /// The destination endpoint was closed (its owner is gone).
    Closed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(name) => write!(f, "unknown endpoint {name:?}"),
            NetError::Closed(name) => write!(f, "endpoint {name:?} is closed"),
        }
    }
}

impl std::error::Error for NetError {}

/// Why a blocking receive returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the timeout; the endpoint is still live.
    Timeout,
    /// The endpoint was closed and its queue is fully drained — no
    /// message will ever arrive again. The distinguishable "peer gone"
    /// signal that lets service loops exit instead of spinning.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Closed => write!(f, "endpoint closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One endpoint's queue plus its liveness flag.
struct Mailbox {
    queue: VecDeque<Message>,
    closed: bool,
}

struct NetState {
    queues: HashMap<Arc<str>, Mailbox>,
    stats: NetStats,
}

/// The shared simulated network.
#[derive(Clone)]
pub struct Network {
    state: Arc<Mutex<NetState>>,
    arrivals: Arc<Condvar>,
    /// Link model applied to every transfer.
    pub link: LinkModel,
}

impl Network {
    /// Creates a network with the given link model.
    pub fn new(link: LinkModel) -> Network {
        Network {
            state: Arc::new(Mutex::new(NetState {
                queues: HashMap::new(),
                stats: NetStats::default(),
            })),
            arrivals: Arc::new(Condvar::new()),
            link,
        }
    }

    /// Registers a named endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (endpoint names are
    /// protocol identities; accidental reuse is a bug).
    pub fn register(&self, name: &str) -> Endpoint {
        let name: Arc<str> = Arc::from(name);
        let mut st = lock(&self.state);
        let prev = st.queues.insert(
            Arc::clone(&name),
            Mailbox {
                queue: VecDeque::new(),
                closed: false,
            },
        );
        assert!(prev.is_none(), "endpoint {name:?} already registered");
        Endpoint {
            name,
            network: self.clone(),
        }
    }

    /// Closes an endpoint: queued messages stay receivable, but new sends
    /// fail with [`NetError::Closed`] and receivers that drain the queue
    /// get [`RecvError::Closed`] instead of blocking. Wakes every thread
    /// currently parked in a blocking receive.
    ///
    /// Closing an unknown endpoint is a no-op; closing twice is idempotent.
    pub fn close(&self, name: &str) {
        let mut st = lock(&self.state);
        if let Some(mb) = st.queues.get_mut(name) {
            mb.closed = true;
        }
        drop(st);
        self.arrivals.notify_all();
    }

    /// Whether `name` is registered and closed.
    pub fn is_closed(&self, name: &str) -> bool {
        lock(&self.state).queues.get(name).is_some_and(|m| m.closed)
    }

    /// Returns a snapshot of the traffic statistics.
    pub fn stats(&self) -> NetStats {
        lock(&self.state).stats.clone()
    }

    /// Resets the traffic statistics (e.g. between training rounds).
    pub fn reset_stats(&self) {
        lock(&self.state).stats = NetStats::default();
    }

    fn send(&self, from: &Arc<str>, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let mut st = lock(&self.state);
        let len = payload.len();
        let t = self.link.transfer_time(len);
        let mb = st
            .queues
            .get_mut(to)
            .ok_or_else(|| NetError::UnknownEndpoint(to.to_string()))?;
        if mb.closed {
            return Err(NetError::Closed(to.to_string()));
        }
        mb.queue.push_back(Message {
            from: Arc::clone(from),
            payload,
        });
        st.stats.messages += 1;
        st.stats.bytes += len as u64;
        st.stats.transfer_time_s += t;
        drop(st);
        self.arrivals.notify_all();
        Ok(())
    }

    fn recv(&self, name: &str) -> Option<Message> {
        lock(&self.state).queues.get_mut(name)?.queue.pop_front()
    }

    fn recv_timeout(&self, name: &str, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock(&self.state);
        loop {
            if let Some(mb) = st.queues.get_mut(name) {
                if let Some(msg) = mb.queue.pop_front() {
                    return Ok(msg);
                }
                if mb.closed {
                    // Queue drained and no sender can ever refill it.
                    return Err(RecvError::Closed);
                }
            } else {
                return Err(RecvError::Closed);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            let (guard, result) = self
                .arrivals
                .wait_timeout(st, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if result.timed_out() {
                // Re-check once: closure or an arrival may have raced the
                // timeout.
                if let Some(mb) = st.queues.get_mut(name) {
                    if let Some(msg) = mb.queue.pop_front() {
                        return Ok(msg);
                    }
                    if mb.closed {
                        return Err(RecvError::Closed);
                    }
                }
                return Err(RecvError::Timeout);
            }
        }
    }
}

/// A named participant on the network.
#[derive(Clone)]
pub struct Endpoint {
    name: Arc<str>,
    network: Network,
}

impl Endpoint {
    /// This endpoint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `payload` to the endpoint named `to`.
    pub fn send(&self, to: &str, payload: impl Into<Vec<u8>>) -> Result<(), NetError> {
        self.network.send(&self.name, to, payload.into())
    }

    /// Receives the next queued message, if any.
    pub fn recv(&self) -> Option<Message> {
        self.network.recv(&self.name)
    }

    /// Blocks (up to `timeout`) for the next message — the primitive that
    /// lets aggregator threads sleep instead of spinning. Returns
    /// [`RecvError::Closed`] once the endpoint is closed and drained, so
    /// service loops can distinguish "quiet" from "gone".
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        self.network.recv_timeout(&self.name, timeout)
    }

    /// Closes this endpoint (see [`Network::close`]).
    pub fn close(&self) {
        self.network.close(&self.name);
    }

    /// Whether this endpoint has been closed.
    pub fn is_closed(&self) -> bool {
        self.network.is_closed(&self.name)
    }

    /// Receives the next message, requiring it to come from `from`.
    ///
    /// Messages from other senders are left out-of-band (returned to the
    /// back of the queue) — callers in this codebase drive strict
    /// request/response flows, so a mismatch indicates a protocol bug and
    /// is surfaced as `None` after requeueing.
    pub fn recv_from(&self, from: &str) -> Option<Vec<u8>> {
        let msg = self.recv()?;
        if &*msg.from == from {
            Some(msg.payload)
        } else {
            // Requeue at the back to avoid losing the message.
            let _ = self.network.send(&msg.from, &self.name, msg.payload);
            None
        }
    }

    /// Drains all currently queued messages.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.recv() {
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"hello"[..]).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(&*m.from, "a");
        assert_eq!(&m.payload[..], b"hello");
        assert!(b.recv().is_none());
    }

    #[test]
    fn fifo_ordering() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        for i in 0u8..5 {
            a.send("b", vec![i]).unwrap();
        }
        for i in 0u8..5 {
            assert_eq!(&b.recv().unwrap().payload[..], &[i]);
        }
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        assert_eq!(
            a.send("ghost", &b"x"[..]),
            Err(NetError::UnknownEndpoint("ghost".to_string()))
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let net = Network::new(LinkModel::lan());
        let _a = net.register("a");
        let _a2 = net.register("a");
    }

    #[test]
    fn stats_accumulate() {
        let net = Network::new(LinkModel {
            base_s: 1.0,
            bytes_per_s: 10.0,
        });
        let a = net.register("a");
        let _b = net.register("b");
        a.send("b", vec![0u8; 20]).unwrap();
        a.send("b", vec![0u8; 10]).unwrap();
        let st = net.stats();
        assert_eq!(st.messages, 2);
        assert_eq!(st.bytes, 30);
        assert!((st.transfer_time_s - (1.0 + 2.0 + 1.0 + 1.0)).abs() < 1e-9);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn transfer_time_model() {
        let lan = LinkModel::lan();
        // 125 MB at 1 Gbit/s is 1 second plus base.
        assert!((lan.transfer_time(125_000_000) - 1.001).abs() < 1e-6);
        let wan = LinkModel::wan();
        assert!(wan.transfer_time(1000) > lan.transfer_time(1000));
    }

    #[test]
    fn recv_from_filters_and_requeues() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        c.send("a", &b"noise"[..]).unwrap();
        b.send("a", &b"signal"[..]).unwrap();
        // First attempt sees the message from c, requeues it.
        assert!(a.recv_from("b").is_none());
        // Now b's message is at the front.
        assert_eq!(&a.recv_from("b").unwrap()[..], b"signal");
        // The noise message is still there.
        assert_eq!(&*a.recv().unwrap().from, "c");
    }

    #[test]
    fn drain_empties_queue() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"1"[..]).unwrap();
        a.send("b", &b"2"[..]).unwrap();
        assert_eq!(b.drain().len(), 2);
        assert!(b.recv().is_none());
    }

    #[test]
    fn recv_timeout_times_out_when_quiet() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn recv_timeout_wakes_on_arrival() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let _ = b; // registered so sends resolve
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            let sender = net2.register("sender");
            std::thread::sleep(Duration::from_millis(20));
            sender.send("a", &b"wake"[..]).unwrap();
        });
        let msg = a
            .recv_timeout(Duration::from_secs(2))
            .expect("woken by arrival");
        assert_eq!(&msg.payload[..], b"wake");
        handle.join().unwrap();
    }

    #[test]
    fn network_is_cloneable_and_shared() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let net2 = net.clone();
        let b = net2.register("b");
        a.send("b", &b"via clone"[..]).unwrap();
        assert!(b.recv().is_some());
    }

    #[test]
    fn sender_name_is_shared_not_cloned() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        a.send("b", &b"x"[..]).unwrap();
        a.send("c", &b"x"[..]).unwrap();
        let mb = b.recv().unwrap();
        let mc = c.recv().unwrap();
        // Both recipients see the very same interned sender name.
        assert!(Arc::ptr_eq(&mb.from, &mc.from));
    }

    #[test]
    fn close_rejects_new_sends_but_delivers_queued() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"before"[..]).unwrap();
        net.close("b");
        assert_eq!(
            a.send("b", &b"after"[..]),
            Err(NetError::Closed("b".to_string()))
        );
        // The pre-close message is still delivered...
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().payload[..],
            b"before"
        );
        // ...then the closure is surfaced, immediately (no timeout wait).
        let t0 = std::time::Instant::now();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)),
            Err(RecvError::Closed)
        );
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert!(b.is_closed());
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            net2.close("a");
        });
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(10)),
            Err(RecvError::Closed)
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "woken by close, not timeout"
        );
        handle.join().unwrap();
    }

    #[test]
    fn close_is_idempotent_and_unknown_close_is_noop() {
        let net = Network::new(LinkModel::lan());
        let _a = net.register("a");
        net.close("a");
        net.close("a");
        net.close("ghost");
        assert!(net.is_closed("a"));
        assert!(!net.is_closed("ghost"));
    }
}
