//! An in-process simulated network with latency accounting and TLS-like
//! secure channels.
//!
//! The paper's prototype connects parties and aggregators with gRPC over
//! TLS; this crate reproduces those message flows in-process:
//!
//! * [`Network`] / [`Endpoint`] — named endpoints exchanging byte messages
//!   through FIFO queues, with every transfer logged for the latency model
//!   (see [`NetStats`] and [`LinkModel`]).
//! * [`secure`] — an authenticated-encryption channel bootstrapped by a
//!   signed Diffie-Hellman handshake, standing in for TLS. The responder
//!   authenticates with its provisioned token key, which is exactly how
//!   DeTA parties confirm they talk to attested aggregators.
//!
//! The network is synchronous and deterministic: messages are delivered in
//! send order, and "latency" is an accounting quantity derived from
//! [`LinkModel`], not wall-clock sleeping. This keeps experiments exactly
//! reproducible while still modelling the paper's transfer costs.

//!
//! # Examples
//!
//! ```
//! use deta_transport::{LinkModel, Network};
//!
//! let net = Network::new(LinkModel::lan());
//! let alice = net.register("alice");
//! let bob = net.register("bob");
//! alice.send("bob", &b"hello"[..]).unwrap();
//! assert_eq!(&bob.recv().unwrap().payload[..], b"hello");
//! ```

pub mod secure;

pub use secure::{HandshakeInitiator, SecureChannel, TransportError};

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock.
///
/// A panic on another thread while holding the lock poisons it; the
/// queue state itself is always valid (every critical section leaves it
/// consistent), so recovery is safe and keeps the network usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A received message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sender endpoint name.
    pub from: String,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Link cost model: `time = base_s + bytes / bytes_per_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency in seconds (propagation + RPC overhead).
    pub base_s: f64,
    /// Link throughput in bytes per second.
    pub bytes_per_s: f64,
}

impl LinkModel {
    /// A LAN-like default: 1 ms base, 1 Gbit/s.
    pub fn lan() -> LinkModel {
        LinkModel {
            base_s: 1e-3,
            bytes_per_s: 125e6,
        }
    }

    /// A WAN-like profile: 30 ms base, 100 Mbit/s (the paper's aggregators
    /// may sit at different geo-locations).
    pub fn wan() -> LinkModel {
        LinkModel {
            base_s: 30e-3,
            bytes_per_s: 12.5e6,
        }
    }

    /// Simulated transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.base_s + bytes as f64 / self.bytes_per_s
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Accumulated simulated transfer time (sum over messages; the
    /// latency model decides how much of this overlaps).
    pub transfer_time_s: f64,
}

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint does not exist.
    UnknownEndpoint(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(name) => write!(f, "unknown endpoint {name:?}"),
        }
    }
}

impl std::error::Error for NetError {}

struct NetState {
    queues: HashMap<String, VecDeque<Message>>,
    stats: NetStats,
}

/// The shared simulated network.
#[derive(Clone)]
pub struct Network {
    state: Arc<Mutex<NetState>>,
    arrivals: Arc<Condvar>,
    /// Link model applied to every transfer.
    pub link: LinkModel,
}

impl Network {
    /// Creates a network with the given link model.
    pub fn new(link: LinkModel) -> Network {
        Network {
            state: Arc::new(Mutex::new(NetState {
                queues: HashMap::new(),
                stats: NetStats::default(),
            })),
            arrivals: Arc::new(Condvar::new()),
            link,
        }
    }

    /// Registers a named endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (endpoint names are
    /// protocol identities; accidental reuse is a bug).
    pub fn register(&self, name: &str) -> Endpoint {
        let mut st = lock(&self.state);
        let prev = st.queues.insert(name.to_string(), VecDeque::new());
        assert!(prev.is_none(), "endpoint {name:?} already registered");
        Endpoint {
            name: name.to_string(),
            network: self.clone(),
        }
    }

    /// Returns a snapshot of the traffic statistics.
    pub fn stats(&self) -> NetStats {
        lock(&self.state).stats.clone()
    }

    /// Resets the traffic statistics (e.g. between training rounds).
    pub fn reset_stats(&self) {
        lock(&self.state).stats = NetStats::default();
    }

    fn send(&self, from: &str, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let mut st = lock(&self.state);
        let len = payload.len();
        let t = self.link.transfer_time(len);
        let queue = st
            .queues
            .get_mut(to)
            .ok_or_else(|| NetError::UnknownEndpoint(to.to_string()))?;
        queue.push_back(Message {
            from: from.to_string(),
            payload,
        });
        st.stats.messages += 1;
        st.stats.bytes += len as u64;
        st.stats.transfer_time_s += t;
        drop(st);
        self.arrivals.notify_all();
        Ok(())
    }

    fn recv(&self, name: &str) -> Option<Message> {
        lock(&self.state).queues.get_mut(name)?.pop_front()
    }

    fn recv_timeout(&self, name: &str, timeout: Duration) -> Option<Message> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock(&self.state);
        loop {
            if let Some(msg) = st.queues.get_mut(name).and_then(VecDeque::pop_front) {
                return Some(msg);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, result) = self
                .arrivals
                .wait_timeout(st, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if result.timed_out() {
                return None;
            }
        }
    }
}

/// A named participant on the network.
#[derive(Clone)]
pub struct Endpoint {
    name: String,
    network: Network,
}

impl Endpoint {
    /// This endpoint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `payload` to the endpoint named `to`.
    pub fn send(&self, to: &str, payload: impl Into<Vec<u8>>) -> Result<(), NetError> {
        self.network.send(&self.name, to, payload.into())
    }

    /// Receives the next queued message, if any.
    pub fn recv(&self) -> Option<Message> {
        self.network.recv(&self.name)
    }

    /// Blocks (up to `timeout`) for the next message — the primitive that
    /// lets aggregator threads sleep instead of spinning.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.network.recv_timeout(&self.name, timeout)
    }

    /// Receives the next message, requiring it to come from `from`.
    ///
    /// Messages from other senders are left out-of-band (returned to the
    /// back of the queue) — callers in this codebase drive strict
    /// request/response flows, so a mismatch indicates a protocol bug and
    /// is surfaced as `None` after requeueing.
    pub fn recv_from(&self, from: &str) -> Option<Vec<u8>> {
        let msg = self.recv()?;
        if msg.from == from {
            Some(msg.payload)
        } else {
            // Requeue at the back to avoid losing the message.
            let _ = self.network.send(&msg.from, &self.name, msg.payload);
            None
        }
    }

    /// Drains all currently queued messages.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.recv() {
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"hello"[..]).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, "a");
        assert_eq!(&m.payload[..], b"hello");
        assert!(b.recv().is_none());
    }

    #[test]
    fn fifo_ordering() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        for i in 0u8..5 {
            a.send("b", vec![i]).unwrap();
        }
        for i in 0u8..5 {
            assert_eq!(&b.recv().unwrap().payload[..], &[i]);
        }
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        assert_eq!(
            a.send("ghost", &b"x"[..]),
            Err(NetError::UnknownEndpoint("ghost".to_string()))
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let net = Network::new(LinkModel::lan());
        let _a = net.register("a");
        let _a2 = net.register("a");
    }

    #[test]
    fn stats_accumulate() {
        let net = Network::new(LinkModel {
            base_s: 1.0,
            bytes_per_s: 10.0,
        });
        let a = net.register("a");
        let _b = net.register("b");
        a.send("b", vec![0u8; 20]).unwrap();
        a.send("b", vec![0u8; 10]).unwrap();
        let st = net.stats();
        assert_eq!(st.messages, 2);
        assert_eq!(st.bytes, 30);
        assert!((st.transfer_time_s - (1.0 + 2.0 + 1.0 + 1.0)).abs() < 1e-9);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn transfer_time_model() {
        let lan = LinkModel::lan();
        // 125 MB at 1 Gbit/s is 1 second plus base.
        assert!((lan.transfer_time(125_000_000) - 1.001).abs() < 1e-6);
        let wan = LinkModel::wan();
        assert!(wan.transfer_time(1000) > lan.transfer_time(1000));
    }

    #[test]
    fn recv_from_filters_and_requeues() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        c.send("a", &b"noise"[..]).unwrap();
        b.send("a", &b"signal"[..]).unwrap();
        // First attempt sees the message from c, requeues it.
        assert!(a.recv_from("b").is_none());
        // Now b's message is at the front.
        assert_eq!(&a.recv_from("b").unwrap()[..], b"signal");
        // The noise message is still there.
        assert_eq!(a.recv().unwrap().from, "c");
    }

    #[test]
    fn drain_empties_queue() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        a.send("b", &b"1"[..]).unwrap();
        a.send("b", &b"2"[..]).unwrap();
        assert_eq!(b.drain().len(), 2);
        assert!(b.recv().is_none());
    }

    #[test]
    fn recv_timeout_times_out_when_quiet() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let t0 = std::time::Instant::now();
        assert!(a.recv_timeout(Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn recv_timeout_wakes_on_arrival() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let b = net.register("b");
        let _ = b; // registered so sends resolve
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            let sender = net2.register("sender");
            std::thread::sleep(Duration::from_millis(20));
            sender.send("a", &b"wake"[..]).unwrap();
        });
        let msg = a
            .recv_timeout(Duration::from_secs(2))
            .expect("woken by arrival");
        assert_eq!(&msg.payload[..], b"wake");
        handle.join().unwrap();
    }

    #[test]
    fn network_is_cloneable_and_shared() {
        let net = Network::new(LinkModel::lan());
        let a = net.register("a");
        let net2 = net.clone();
        let b = net2.register("b");
        a.send("b", &b"via clone"[..]).unwrap();
        assert!(b.recv().is_some());
    }
}
