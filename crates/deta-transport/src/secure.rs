//! TLS-like secure channels over the simulated network.
//!
//! A channel is established with a one-round-trip handshake:
//!
//! 1. The initiator (an FL party) sends a *hello*: its ephemeral DH public
//!    value plus a fresh challenge nonce.
//! 2. The responder (an aggregator) replies with its own ephemeral DH
//!    value and a **signature over the transcript (including the
//!    challenge nonce) with its provisioned token key** — this is the
//!    challenge-response step of DeTA's Phase II authentication: only a
//!    CVM that received the token at verified launch can produce it.
//! 3. Both sides derive directional AEAD keys from the DH secret bound to
//!    the transcript hash.
//!
//! Messages then flow through [`SecureChannel::seal_msg`] /
//! [`SecureChannel::open_msg`] with per-direction sequence numbers, which
//! gives confidentiality, integrity, and replay protection in order.

use deta_crypto::dh::{EphemeralSecret, PublicKey as DhPublicKey};
use deta_crypto::sha256::{hkdf, sha256_concat};
use deta_crypto::{open, seal, AeadKey, DetRng, Nonce, Signature, SigningKey, VerifyingKey};

/// Errors from handshakes and record protection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A handshake message failed to parse.
    Malformed,
    /// The responder's signature did not verify against the expected key.
    BadAuthentication,
    /// The peer's DH value is invalid.
    BadKeyExchange,
    /// Decryption or authentication of a record failed.
    BadRecord,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TransportError::Malformed => "malformed handshake message",
            TransportError::BadAuthentication => "responder authentication failed",
            TransportError::BadKeyExchange => "invalid key exchange value",
            TransportError::BadRecord => "record decryption failed",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for TransportError {}

/// Directional record protection state.
pub struct SecureChannel {
    send_key: AeadKey,
    recv_key: AeadKey,
    send_seq: u64,
    recv_seq: u64,
    channel_id: u32,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keys are intentionally not printed.
        f.debug_struct("SecureChannel")
            .field("channel_id", &self.channel_id)
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

impl SecureChannel {
    /// Encrypts and authenticates one message.
    pub fn seal_msg(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Nonce::from_parts(self.channel_id, self.send_seq);
        self.send_seq += 1;
        seal(&self.send_key, &nonce, b"deta-record", plaintext)
    }

    /// Decrypts and verifies the next message in sequence.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::BadRecord`] for tampered, reordered, or
    /// replayed records.
    pub fn open_msg(&mut self, sealed: &[u8]) -> Result<Vec<u8>, TransportError> {
        let nonce = Nonce::from_parts(self.channel_id, self.recv_seq);
        let out = open(&self.recv_key, &nonce, b"deta-record", sealed)
            .map_err(|_| TransportError::BadRecord)?;
        self.recv_seq += 1;
        Ok(out)
    }

    /// Number of records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.send_seq
    }
}

const HELLO_MAGIC: &[u8; 8] = b"DETAHELO";
const RESP_MAGIC: &[u8; 8] = b"DETARESP";

/// Initiator-side handshake state.
pub struct HandshakeInitiator {
    eph: EphemeralSecret,
    nonce: [u8; 16],
    hello: Vec<u8>,
}

impl HandshakeInitiator {
    /// Starts a handshake, producing the hello message to send.
    pub fn new(rng: &mut DetRng) -> HandshakeInitiator {
        let eph = EphemeralSecret::generate(rng);
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let mut hello = Vec::with_capacity(8 + 32 + 16);
        hello.extend_from_slice(HELLO_MAGIC);
        hello.extend_from_slice(&eph.public_key().to_bytes());
        hello.extend_from_slice(&nonce);
        HandshakeInitiator { eph, nonce, hello }
    }

    /// The hello message bytes.
    pub fn hello(&self) -> &[u8] {
        &self.hello
    }

    /// Processes the responder's reply, verifying its signature against
    /// `expected_peer` (the token key attested in Phase I).
    pub fn complete(
        self,
        response: &[u8],
        expected_peer: &VerifyingKey,
    ) -> Result<SecureChannel, TransportError> {
        if response.len() != 8 + 32 + 64 || &response[..8] != RESP_MAGIC {
            return Err(TransportError::Malformed);
        }
        let peer_pub =
            DhPublicKey::from_bytes(&response[8..40]).ok_or(TransportError::BadKeyExchange)?;
        let sig = Signature::from_bytes(&response[40..104]).ok_or(TransportError::Malformed)?;
        let transcript = transcript_hash(&self.hello, &response[..40]);
        if !expected_peer.verify(&transcript, &sig) {
            return Err(TransportError::BadAuthentication);
        }
        let secret = self
            .eph
            .agree(&peer_pub, &transcript)
            .map_err(|_| TransportError::BadKeyExchange)?;
        Ok(derive_channel(&secret, &self.nonce, true))
    }
}

/// Responder side: processes a hello, producing the response message and a
/// ready channel.
///
/// `identity` is the responder's authentication token key (provisioned
/// into the CVM at verified launch).
pub fn respond(
    hello: &[u8],
    identity: &SigningKey,
    rng: &mut DetRng,
) -> Result<(Vec<u8>, SecureChannel), TransportError> {
    if hello.len() != 8 + 32 + 16 || &hello[..8] != HELLO_MAGIC {
        return Err(TransportError::Malformed);
    }
    let peer_pub = DhPublicKey::from_bytes(&hello[8..40]).ok_or(TransportError::BadKeyExchange)?;
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&hello[40..56]);
    let eph = EphemeralSecret::generate(rng);
    let mut response = Vec::with_capacity(8 + 32 + 64);
    response.extend_from_slice(RESP_MAGIC);
    response.extend_from_slice(&eph.public_key().to_bytes());
    let transcript = transcript_hash(hello, &response[..40]);
    let sig = identity.sign(&transcript);
    response.extend_from_slice(&sig.to_bytes());
    let secret = eph
        .agree(&peer_pub, &transcript)
        .map_err(|_| TransportError::BadKeyExchange)?;
    Ok((response, derive_channel(&secret, &nonce, false)))
}

/// Hashes the handshake transcript (hello || response prefix).
fn transcript_hash(hello: &[u8], resp_prefix: &[u8]) -> [u8; 32] {
    sha256_concat(&[b"deta-handshake-v1", hello, resp_prefix])
}

/// Derives the two directional keys and channel id from the DH secret.
fn derive_channel(secret: &[u8; 32], nonce: &[u8; 16], initiator: bool) -> SecureChannel {
    let okm = hkdf(b"deta-channel-v1", secret, nonce, 68);
    let mut k_i2r = [0u8; 32];
    let mut k_r2i = [0u8; 32];
    k_i2r.copy_from_slice(&okm[..32]);
    k_r2i.copy_from_slice(&okm[32..64]);
    let mut id_bytes = [0u8; 4];
    id_bytes.copy_from_slice(&okm[64..68]);
    let channel_id = u32::from_le_bytes(id_bytes);
    let (send, recv) = if initiator {
        (k_i2r, k_r2i)
    } else {
        (k_r2i, k_i2r)
    };
    SecureChannel {
        send_key: AeadKey(send),
        recv_key: AeadKey(recv),
        send_seq: 0,
        recv_seq: 0,
        channel_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(seed: u64) -> SigningKey {
        SigningKey::generate(&mut DetRng::from_u64(seed))
    }

    fn handshake() -> (SecureChannel, SecureChannel) {
        let id = identity(1);
        let mut rng_i = DetRng::from_u64(2);
        let mut rng_r = DetRng::from_u64(3);
        let init = HandshakeInitiator::new(&mut rng_i);
        let (resp, chan_r) = respond(init.hello(), &id, &mut rng_r).unwrap();
        let chan_i = init.complete(&resp, &id.verifying_key()).unwrap();
        (chan_i, chan_r)
    }

    #[test]
    fn bidirectional_messaging() {
        let (mut i, mut r) = handshake();
        let c1 = i.seal_msg(b"model update fragment");
        assert_eq!(r.open_msg(&c1).unwrap(), b"model update fragment");
        let c2 = r.seal_msg(b"aggregated update");
        assert_eq!(i.open_msg(&c2).unwrap(), b"aggregated update");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut i, _r) = handshake();
        let sealed = i.seal_msg(b"supersecret-update");
        assert!(!sealed
            .windows(b"supersecret".len())
            .any(|w| w == b"supersecret"));
    }

    #[test]
    fn wrong_identity_key_rejected() {
        let real = identity(1);
        let impostor = identity(99);
        let mut rng_i = DetRng::from_u64(2);
        let mut rng_r = DetRng::from_u64(3);
        let init = HandshakeInitiator::new(&mut rng_i);
        // The impostor (an unattested aggregator without the token) signs.
        let (resp, _chan) = respond(init.hello(), &impostor, &mut rng_r).unwrap();
        assert_eq!(
            init.complete(&resp, &real.verifying_key()).unwrap_err(),
            TransportError::BadAuthentication
        );
    }

    #[test]
    fn tampered_response_rejected() {
        let id = identity(1);
        let mut rng_i = DetRng::from_u64(2);
        let mut rng_r = DetRng::from_u64(3);
        let init = HandshakeInitiator::new(&mut rng_i);
        let (mut resp, _chan) = respond(init.hello(), &id, &mut rng_r).unwrap();
        resp[10] ^= 1;
        assert!(init.complete(&resp, &id.verifying_key()).is_err());
    }

    #[test]
    fn malformed_messages_rejected() {
        let id = identity(1);
        let mut rng = DetRng::from_u64(2);
        assert_eq!(
            respond(b"short", &id, &mut rng).unwrap_err(),
            TransportError::Malformed
        );
        let init = HandshakeInitiator::new(&mut rng);
        assert_eq!(
            init.complete(b"bogus", &id.verifying_key()).unwrap_err(),
            TransportError::Malformed
        );
    }

    #[test]
    fn replay_rejected() {
        let (mut i, mut r) = handshake();
        let c1 = i.seal_msg(b"first");
        assert!(r.open_msg(&c1).is_ok());
        // Replaying the same record must fail (sequence advanced).
        assert_eq!(r.open_msg(&c1).unwrap_err(), TransportError::BadRecord);
    }

    #[test]
    fn reorder_rejected() {
        let (mut i, mut r) = handshake();
        let c1 = i.seal_msg(b"first");
        let c2 = i.seal_msg(b"second");
        assert_eq!(r.open_msg(&c2).unwrap_err(), TransportError::BadRecord);
        // In-order delivery still works after the failed attempt.
        assert_eq!(r.open_msg(&c1).unwrap(), b"first");
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut i, mut r) = handshake();
        let mut c = i.seal_msg(b"payload");
        c[0] ^= 1;
        assert_eq!(r.open_msg(&c).unwrap_err(), TransportError::BadRecord);
    }

    #[test]
    fn channels_are_independent() {
        let (mut i1, _r1) = handshake();
        // A different handshake yields different keys even with the same
        // identity (ephemeral DH): records cannot cross channels.
        let id = identity(1);
        let mut rng_i = DetRng::from_u64(20);
        let mut rng_r = DetRng::from_u64(30);
        let init = HandshakeInitiator::new(&mut rng_i);
        let (resp, mut r2) = respond(init.hello(), &id, &mut rng_r).unwrap();
        let _i2 = init.complete(&resp, &id.verifying_key()).unwrap();
        let c = i1.seal_msg(b"cross");
        assert!(r2.open_msg(&c).is_err());
    }

    #[test]
    fn empty_and_large_payloads() {
        let (mut i, mut r) = handshake();
        let c = i.seal_msg(b"");
        assert_eq!(r.open_msg(&c).unwrap(), b"");
        let big = vec![0xabu8; 1 << 18];
        let c = i.seal_msg(&big);
        assert_eq!(r.open_msg(&c).unwrap(), big);
    }
}
