//! A minimal deterministic property-testing helper.
//!
//! The workspace builds fully offline, so the `proptest` crate is not
//! available; this crate provides the small subset of its functionality
//! the DeTA test suites use: run a closure over many generated inputs
//! and report the failing case reproducibly.
//!
//! Design points:
//!
//! * **Determinism.** Every case's generator is a [`DetRng`] forked from
//!   a hash of the property name and the case index, so a failure
//!   reported as `property "x", case 17` reproduces exactly — on any
//!   machine, in any test order, with no seed file.
//! * **Set shrinking only.** Cases are generated small-ish by
//!   construction (generators take explicit size ranges), so value
//!   shrinking is not needed; for *sets* of independent items — e.g. a
//!   simnet fault plan — [`shrink_set`] reduces a failing collection to
//!   a 1-minimal subset that still fails.
//! * **Plain assertions.** Properties use `assert!`/`assert_eq!`; the
//!   runner catches the panic, prints the case number, and re-raises.
//!
//! ```
//! use deta_proptest::{cases, Gen};
//!
//! cases("addition commutes", 64, |g: &mut Gen| {
//!     let (a, b) = (g.u32() as u64, g.u32() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

pub use deta_crypto::DetRng;

/// Per-case input generator: a thin convenience wrapper over [`DetRng`].
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// Builds a generator for one case (exposed for re-running a single
    /// failing case by hand).
    pub fn for_case(property: &str, case: u64) -> Gen {
        let rng = DetRng::from_entropy(property.as_bytes()).fork_indexed(b"case", case);
        Gen { rng }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u32() as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u32() as u8
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.rng.next_bool(0.5)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.gen_range(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.rng.next_f32() * (hi - lo)
    }

    /// An arbitrary `f32` bit pattern — includes negative zero, both
    /// infinities, NaNs, and subnormals (what `any::<f32>()` exercised).
    pub fn f32_any(&mut self) -> f32 {
        f32::from_bits(self.rng.next_u32())
    }

    /// A byte vector with length drawn from `[lo, hi)`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let len = self.usize_in(lo, hi);
        let mut out = vec![0u8; len];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A fixed-size byte array.
    pub fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A vector with length drawn from `[lo, hi)`, elements from `f`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(lo, hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// A string of length in `[lo, hi)` over the given alphabet.
    pub fn string_of(&mut self, alphabet: &str, lo: usize, hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "empty alphabet");
        let len = self.usize_in(lo, hi);
        (0..len)
            .map(|_| chars[self.usize_in(0, chars.len())])
            .collect()
    }
}

/// Runs `property` over `n` deterministic cases.
///
/// Case counts are overridable globally via `DETA_PROPTEST_CASES` (e.g.
/// to crank coverage up in a nightly run or down while iterating).
///
/// # Panics
///
/// Re-raises the property's panic after printing which case failed.
pub fn cases(name: &str, n: u64, mut property: impl FnMut(&mut Gen)) {
    let n = std::env::var("DETA_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(n);
    for case in 0..n {
        // The panic is re-raised immediately, so observing the closure's
        // captures in a broken state is impossible; AssertUnwindSafe
        // keeps the API ergonomic (properties may capture anything).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::for_case(name, case);
            property(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property {name:?} failed at case {case}/{n} (deterministic; rerun reproduces it)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Greedily minimizes a failing collection: starting from `items` (for
/// which `fails` must return `true`), repeatedly re-tests with one
/// element removed and keeps every removal that still fails, until the
/// result is **1-minimal** — removing any single remaining element makes
/// the failure disappear.
///
/// The predicate must be deterministic; with `n` items it is invoked
/// `O(n²)` times in the worst case, so keep it cheap or `items` small.
/// Typical use: shrink a simnet fault plan to the smallest fault set
/// that still breaks an invariant, then report that set.
///
/// # Panics
///
/// Panics if `fails(items)` is not already `true` — shrinking a passing
/// input is a harness bug, not a property failure.
pub fn shrink_set<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items.to_vec();
    assert!(fails(&current), "shrink_set needs a failing input");
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same index now holds the next element; retry it.
            } else {
                i += 1;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        for case in 0..5 {
            first.push(Gen::for_case("det", case).u64());
        }
        for (case, want) in first.iter().enumerate() {
            assert_eq!(Gen::for_case("det", case as u64).u64(), *want);
        }
        // Distinct properties draw distinct streams.
        assert_ne!(
            Gen::for_case("det", 0).u64(),
            Gen::for_case("other", 0).u64()
        );
    }

    #[test]
    fn ranges_respected() {
        cases("ranges", 200, |g| {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = g.f32_in(-2.0, 3.0);
            assert!((-2.0..3.5).contains(&f));
            let s = g.string_of("abc", 1, 4);
            assert!((1..4).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
            let b = g.bytes(0, 9);
            assert!(b.len() < 9);
        });
    }

    #[test]
    #[should_panic]
    fn failures_propagate() {
        cases("always-fails", 3, |_| panic!("boom"));
    }

    #[test]
    fn shrink_set_finds_a_one_minimal_subset() {
        // Fails iff the set contains both a 3 and a 7.
        let items = vec![1, 3, 5, 7, 9, 3];
        let min = shrink_set(&items, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min.len(), 2);
        assert!(min.contains(&3) && min.contains(&7));
    }

    #[test]
    fn shrink_set_keeps_irreducible_inputs() {
        let items = vec![4, 2];
        // Fails iff the sum is exactly 6 — both elements are needed.
        let min = shrink_set(&items, |s| s.iter().sum::<i32>() == 6);
        assert_eq!(min, items);
    }

    #[test]
    #[should_panic]
    fn shrink_set_rejects_passing_inputs() {
        shrink_set(&[1, 2, 3], |_| false);
    }

    #[test]
    fn f32_any_hits_special_values_eventually() {
        let mut saw_negative = false;
        let mut saw_non_finite = false;
        cases("f32-any", 300, |g| {
            let v = g.f32_any();
            saw_negative |= v.is_sign_negative();
            saw_non_finite |= !v.is_finite();
        });
        assert!(saw_negative);
        assert!(saw_non_finite);
    }
}
