//! Inverting Gradients (Geiping et al., NeurIPS 2020).
//!
//! IG observes that gradient *direction* carries the signal and matches
//! with a cosine-distance objective, adds a total-variation image prior,
//! constrains the search to `[0, 1]`, and optimizes with Adam on signed
//! gradients — the recipe that scales inversion to deeper networks.
//!
//! As in the paper's Table 3, the reported metric is the final cosine
//! distance of the matching objective: below 0.01 the optimization
//! converged (reconstruction succeeds); against DeTA's partitioned and
//! shuffled views it stalls far above that.

use crate::harness::{AttackTape, BreachedView, GraphModel};
use crate::metrics::cosine_distance;
use crate::optim::Adam;
use deta_autograd::Var;
use deta_crypto::DetRng;

/// IG attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct IgConfig {
    /// Optimization iterations per restart.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Total-variation prior weight.
    pub tv_weight: f64,
    /// Random restarts (the paper uses 2).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Image shape `(channels, height, width)` for the TV prior.
    pub image_shape: (usize, usize, usize),
    /// The (known or separately inferred) ground-truth label.
    pub label: usize,
}

/// Attack outcome.
#[derive(Clone, Debug)]
pub struct IgOutcome {
    /// Best reconstruction across restarts.
    pub reconstruction: Vec<f32>,
    /// Final cosine distance of the best restart (Table 3's metric).
    pub final_cosine: f64,
}

/// Emits the total-variation prior over an image laid out CHW.
fn tv_prior(tape: &mut deta_autograd::Tape, x: &[Var], shape: (usize, usize, usize)) -> Var {
    let (c, h, w) = shape;
    assert_eq!(x.len(), c * h * w, "image shape mismatch");
    let eps = tape.constant(1e-8);
    let mut terms = Vec::new();
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..w {
                let idx = (ch * h + y) * w + xx;
                if xx + 1 < w {
                    let d = tape.sub(x[idx + 1], x[idx]);
                    let d2 = tape.mul(d, d);
                    let s = tape.add(d2, eps);
                    terms.push(tape.sqrt(s));
                }
                if y + 1 < h {
                    let d = tape.sub(x[idx + w], x[idx]);
                    let d2 = tape.mul(d, d);
                    let s = tape.add(d2, eps);
                    terms.push(tape.sqrt(s));
                }
            }
        }
    }
    tape.sum(&terms)
}

/// Runs the IG attack against a breached view.
pub fn run_ig(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &IgConfig,
) -> IgOutcome {
    let k = view.visible.len();
    let mut at = AttackTape::build(model, k);
    // Cosine objective: 1 - <g, g*> / (|g| |g*|), plus the TV prior.
    let objective = {
        let grads = at.grads.clone();
        let gstar = at.gstar.clone();
        let dot = at.tape.dot(&grads, &gstar);
        let gg = at.tape.dot(&grads, &grads);
        let ss = at.tape.dot(&gstar, &gstar);
        let eps = at.tape.constant(1e-12);
        let gg_e = at.tape.add(gg, eps);
        let ss_e = at.tape.add(ss, eps);
        let ng = at.tape.sqrt(gg_e);
        let ns = at.tape.sqrt(ss_e);
        let denom = at.tape.mul(ng, ns);
        let cos_sim = at.tape.div(dot, denom);
        let one = at.tape.constant(1.0);
        let cos_dist = at.tape.sub(one, cos_sim);
        let x_vars = at.x.clone();
        let tv = tv_prior(&mut at.tape, &x_vars, cfg.image_shape);
        let tv_scaled = at.tape.scale(tv, cfg.tv_weight);
        at.tape.add(cos_dist, tv_scaled)
    };
    let opt_grads = at.tape.grad(objective, &at.x.clone());
    let mut ev = at.tape.evaluator();

    let label_logits = at.hard_label_logits(cfg.label);
    let d = model.input_dim();
    let mut best: Option<(f64, Vec<f32>)> = None;
    for restart in 0..cfg.restarts.max(1) {
        let mut rng = DetRng::from_u64(cfg.seed).fork_indexed(b"ig-restart", restart as u64);
        let mut x: Vec<f64> = (0..d).map(|_| rng.next_f64()).collect();
        let mut adam = Adam::new(d, cfg.lr).with_signed().with_bounds(0.0, 1.0);
        for _ in 0..cfg.iterations {
            let inputs = at.pack_inputs(&x, &label_logits, params, &view.visible);
            ev.eval(&at.tape, &inputs);
            let grad: Vec<f64> = opt_grads.iter().map(|&g| ev.value(g)).collect();
            if grad.iter().any(|v| !v.is_finite()) {
                break;
            }
            adam.step(&mut x, &grad);
        }
        // Score with the pure cosine distance (no TV) on the final iterate.
        let inputs = at.pack_inputs(&x, &label_logits, params, &view.visible);
        ev.eval(&at.tape, &inputs);
        let dummy_grad: Vec<f32> = at.grads.iter().map(|&g| ev.value(g) as f32).collect();
        let cos = cosine_distance(&dummy_grad, &view.visible);
        let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        if best.as_ref().is_none_or(|(b, _)| cos < *b) {
            best = Some((cos, xf));
        }
    }
    let (final_cosine, reconstruction) = best.unwrap();
    IgOutcome {
        reconstruction,
        final_cosine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphnet::ConvSpec;
    use crate::harness::{breach_view, AttackView};
    use crate::metrics::mse;

    fn true_gradient(spec: &ConvSpec, params: &[f32], x: &[f32], label: usize) -> Vec<f32> {
        let at = AttackTape::build(spec, spec.param_count());
        let mut ev = at.tape.evaluator();
        let xin: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let inputs = at.pack_inputs(
            &xin,
            &at.hard_label_logits(label),
            params,
            &vec![0.0; spec.param_count()],
        );
        ev.eval(&at.tape, &inputs);
        at.grads.iter().map(|&g| ev.value(g) as f32).collect()
    }

    fn setup() -> (ConvSpec, Vec<f32>, Vec<f32>, usize) {
        let spec = ConvSpec {
            in_c: 1,
            hw: 8,
            out_c: 2,
            k: 3,
            classes: 4,
        };
        let mut rng = DetRng::from_u64(31);
        let params: Vec<f32> = (0..spec.param_count())
            .map(|_| rng.next_gaussian() as f32 * 0.3)
            .collect();
        // A smooth image in [0,1].
        let x: Vec<f32> = (0..64)
            .map(|i| {
                let (y, xx) = (i / 8, i % 8);
                0.5 + 0.4 * ((y as f32 * 0.7).sin() * (xx as f32 * 0.5).cos())
            })
            .collect();
        (spec, params, x, 1)
    }

    fn cfg(label: usize) -> IgConfig {
        IgConfig {
            iterations: 400,
            lr: 0.05,
            tv_weight: 1e-4,
            restarts: 1,
            seed: 5,
            image_shape: (1, 8, 8),
            label,
        }
    }

    #[test]
    fn ig_converges_with_full_view() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let out = run_ig(&spec, &params, &view, &cfg(label));
        assert!(
            out.final_cosine < 0.05,
            "full-view IG should converge, cos={}",
            out.final_cosine
        );
        // Reconstruction should be visibly close.
        assert!(mse(&out.reconstruction, &x) < 0.05);
    }

    #[test]
    fn ig_stalls_with_shuffled_view() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 0.6 },
            1,
            &[3u8; 16],
        );
        let out = run_ig(&spec, &params, &view, &cfg(label));
        assert!(
            out.final_cosine > 0.3,
            "shuffled view must stall IG, cos={}",
            out.final_cosine
        );
    }

    #[test]
    fn reconstruction_respects_box_constraint() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let out = run_ig(&spec, &params, &view, &cfg(label));
        assert!(out.reconstruction.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn tv_prior_penalizes_noise() {
        // TV of a constant image is ~0; of a checkerboard it is large.
        let mut tape = deta_autograd::Tape::new();
        let x = tape.inputs(16);
        let tv = tv_prior(&mut tape, &x, (1, 4, 4));
        let mut ev = tape.evaluator();
        ev.eval(&tape, &vec![0.5; 16]);
        let flat = ev.value(tv);
        let checker: Vec<f64> = (0..16)
            .map(|i| if (i / 4 + i % 4) % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        ev.eval(&tape, &checker);
        let noisy = ev.value(tv);
        assert!(noisy > flat + 10.0, "{noisy} vs {flat}");
    }
}
