//! Optimizers for the attack objectives.

/// Adam with optional signed gradients and box projection.
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Use `sign(grad)` instead of `grad` (the IG variant).
    pub signed: bool,
    /// Project iterates into `[lo, hi]` after each step.
    pub bounds: Option<(f64, f64)>,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for `n` variables.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            signed: false,
            bounds: None,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Enables the signed-gradient variant.
    pub fn with_signed(mut self) -> Adam {
        self.signed = true;
        self
    }

    /// Enables box projection.
    pub fn with_bounds(mut self, lo: f64, hi: f64) -> Adam {
        self.bounds = Some((lo, hi));
        self
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch the construction size.
    pub fn step(&mut self, x: &mut [f64], grad: &[f64]) {
        assert_eq!(x.len(), self.m.len(), "variable count mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..x.len() {
            let g = if self.signed {
                grad[i].signum()
            } else {
                grad[i]
            };
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            x[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            if let Some((lo, hi)) = self.bounds {
                x[i] = x[i].clamp(lo, hi);
            }
        }
    }
}

/// Limited-memory BFGS with Armijo backtracking line search.
///
/// The optimizer the DLG/iDLG papers use for gradient matching. The
/// caller supplies an objective closure returning `(value, gradient)`.
pub struct Lbfgs {
    /// History size.
    pub memory: usize,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Gradient-norm convergence tolerance.
    pub tol: f64,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Lbfgs {
            memory: 10,
            max_iter: 300,
            tol: 1e-10,
        }
    }
}

impl Lbfgs {
    /// Minimizes `f` starting from `x0`, returning `(x, f(x))`.
    pub fn minimize(
        &self,
        x0: Vec<f64>,
        mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    ) -> (Vec<f64>, f64) {
        let n = x0.len();
        let mut x = x0;
        let (mut fx, mut g) = f(&x);
        // (s, y, rho) history.
        let mut hist: std::collections::VecDeque<(Vec<f64>, Vec<f64>, f64)> =
            std::collections::VecDeque::new();
        for _ in 0..self.max_iter {
            let gnorm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
            if gnorm < self.tol || !fx.is_finite() {
                break;
            }
            // Two-loop recursion for the search direction d = -H g.
            let mut q = g.clone();
            let mut alphas = Vec::with_capacity(hist.len());
            for (s, y, rho) in hist.iter().rev() {
                let alpha = rho * dot(s, &q);
                for i in 0..n {
                    q[i] -= alpha * y[i];
                }
                alphas.push(alpha);
            }
            // Initial Hessian scaling gamma = <s,y>/<y,y> of the newest
            // pair; with no history yet, normalize so the first trial step
            // has unit length (a raw gradient step can overshoot wildly).
            match hist.back() {
                Some((s, y, _)) => {
                    let gamma = dot(s, y) / dot(y, y).max(1e-300);
                    for v in &mut q {
                        *v *= gamma;
                    }
                }
                None => {
                    for v in &mut q {
                        *v /= gnorm.max(1e-300);
                    }
                }
            }
            for ((s, y, rho), alpha) in hist.iter().zip(alphas.iter().rev()) {
                let beta = rho * dot(y, &q);
                for i in 0..n {
                    q[i] += s[i] * (alpha - beta);
                }
            }
            let d: Vec<f64> = q.iter().map(|v| -v).collect();
            let dg = dot(&d, &g);
            // Fall back to steepest descent on a non-descent direction.
            let (d, dg) = if dg < 0.0 {
                (d, dg)
            } else {
                let sd: Vec<f64> = g.iter().map(|v| -v).collect();
                let sdg = -gnorm * gnorm;
                (sd, sdg)
            };
            // Armijo backtracking.
            let mut step = 1.0f64;
            let c1 = 1e-4;
            let mut accepted = false;
            let mut x_new = x.clone();
            let mut fx_new = fx;
            let mut g_new = g.clone();
            for _ in 0..30 {
                for i in 0..n {
                    x_new[i] = x[i] + step * d[i];
                }
                let (fv, gv) = f(&x_new);
                if fv.is_finite() && fv <= fx + c1 * step * dg {
                    fx_new = fv;
                    g_new = gv;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break;
            }
            // Update history.
            let s: Vec<f64> = (0..n).map(|i| x_new[i] - x[i]).collect();
            let y: Vec<f64> = (0..n).map(|i| g_new[i] - g[i]).collect();
            let sy = dot(&s, &y);
            if sy > 1e-12 {
                if hist.len() == self.memory {
                    hist.pop_front();
                }
                hist.push_back((s, y, 1.0 / sy));
            }
            x = x_new;
            fx = fx_new;
            g = g_new;
        }
        (x, fx)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = sum (x - target)^2.
        let target = [3.0f64, -1.5, 0.25];
        let mut x = vec![0.0f64; 3];
        let mut adam = Adam::new(3, 0.1);
        for _ in 0..500 {
            let grad: Vec<f64> = x
                .iter()
                .zip(target.iter())
                .map(|(a, t)| 2.0 * (a - t))
                .collect();
            adam.step(&mut x, &grad);
        }
        for (a, t) in x.iter().zip(target.iter()) {
            assert!((a - t).abs() < 1e-2, "{a} vs {t}");
        }
    }

    #[test]
    fn signed_variant_minimizes_too() {
        let mut x = vec![5.0f64];
        let mut adam = Adam::new(1, 0.05).with_signed();
        for _ in 0..400 {
            let grad = vec![2.0 * x[0]];
            adam.step(&mut x, &grad);
        }
        assert!(x[0].abs() < 0.2, "{}", x[0]);
    }

    #[test]
    fn bounds_projection() {
        let mut x = vec![0.5f64];
        let mut adam = Adam::new(1, 1.0).with_bounds(0.0, 1.0);
        // A gradient pushing hard below zero.
        for _ in 0..10 {
            adam.step(&mut x, &[100.0]);
            assert!((0.0..=1.0).contains(&x[0]));
        }
        assert_eq!(x[0], 0.0);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut adam = Adam::new(2, 0.1);
        adam.step(&mut [0.0], &[1.0]);
    }

    #[test]
    fn lbfgs_minimizes_quadratic_exactly() {
        let target = [3.0f64, -1.5, 0.25, 10.0];
        let (x, fx) = Lbfgs::default().minimize(vec![0.0; 4], |x| {
            let v: f64 = x
                .iter()
                .zip(target.iter())
                .map(|(a, t)| (a - t) * (a - t))
                .sum();
            let g: Vec<f64> = x
                .iter()
                .zip(target.iter())
                .map(|(a, t)| 2.0 * (a - t))
                .collect();
            (v, g)
        });
        assert!(fx < 1e-12, "fx={fx}");
        for (a, t) in x.iter().zip(target.iter()) {
            assert!((a - t).abs() < 1e-6);
        }
    }

    #[test]
    fn lbfgs_minimizes_rosenbrock() {
        // The classic ill-conditioned valley Adam crawls through.
        let (x, fx) = Lbfgs {
            max_iter: 500,
            ..Default::default()
        }
        .minimize(vec![-1.2, 1.0], |x| {
            let (a, b) = (x[0], x[1]);
            let v = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
            let g = vec![
                -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                200.0 * (b - a * a),
            ];
            (v, g)
        });
        assert!(fx < 1e-8, "fx={fx}");
        assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lbfgs_handles_flat_start() {
        // Zero gradient at the start terminates immediately without NaN.
        let (x, fx) = Lbfgs::default().minimize(vec![0.0], |x| (x[0] * x[0], vec![2.0 * x[0]]));
        assert_eq!(x[0], 0.0);
        assert_eq!(fx, 0.0);
    }
}
