//! Deep Leakage from Gradients (Zhu et al., NeurIPS 2019).
//!
//! DLG reconstructs a training example from its shared gradient by
//! minimizing `|| grad_theta L(x', y') - g* ||^2` over a randomly
//! initialized dummy input `x'` and soft label `y'`. Gradient steps on
//! this objective require second derivatives of the loss, supplied by the
//! graph-mode tape.
//!
//! As in the original implementation, the objective is minimized with
//! L-BFGS (see [`crate::optim::Lbfgs`]), which handles the
//! ill-conditioned gradient-matching landscape far better than
//! first-order methods.

use crate::harness::{AttackTape, BreachedView, GraphModel};
use crate::optim::Lbfgs;
use deta_crypto::DetRng;

/// DLG attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct DlgConfig {
    /// L-BFGS iteration budget (the paper uses 300).
    pub iterations: usize,
    /// Unused by L-BFGS (kept for harness compatibility; line search
    /// chooses step sizes).
    pub lr: f64,
    /// RNG seed for the dummy initialization.
    pub seed: u64,
    /// Random restarts; the result with the lowest final objective wins.
    pub restarts: usize,
}

impl Default for DlgConfig {
    fn default() -> Self {
        DlgConfig {
            iterations: 300,
            lr: 0.1,
            seed: 0,
            restarts: 1,
        }
    }
}

/// Attack outcome.
#[derive(Clone, Debug)]
pub struct DlgOutcome {
    /// The reconstructed input.
    pub reconstruction: Vec<f32>,
    /// The recovered soft-label distribution.
    pub label_probs: Vec<f64>,
    /// Final value of the gradient-matching objective.
    pub final_objective: f64,
}

/// Runs DLG against a breached view of one example's gradient.
///
/// `params` are the victim model's weights — the relaxed threat model in
/// the paper's Section 6 grants the attacker black-box access to the
/// unperturbed model, which for gradient matching is equivalent to
/// knowing the weights; only the *target* gradient is transformed.
pub fn run_dlg(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &DlgConfig,
) -> DlgOutcome {
    run_dlg_inner(model, params, view, cfg, None)
}

/// DLG with a pinned label (used by iDLG after label inference).
pub fn run_dlg_fixed_label(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &DlgConfig,
    label: usize,
) -> DlgOutcome {
    run_dlg_inner(model, params, view, cfg, Some(label))
}

fn run_dlg_inner(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &DlgConfig,
    fixed_label: Option<usize>,
) -> DlgOutcome {
    let mut best: Option<DlgOutcome> = None;
    for r in 0..cfg.restarts.max(1) {
        let sub = DlgConfig {
            seed: cfg.seed.wrapping_add(1_000_003 * r as u64),
            restarts: 1,
            ..*cfg
        };
        let out = run_dlg_once(model, params, view, &sub, fixed_label);
        if best
            .as_ref()
            .is_none_or(|b| out.final_objective < b.final_objective)
        {
            best = Some(out);
        }
    }
    best.unwrap()
}

fn run_dlg_once(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &DlgConfig,
    fixed_label: Option<usize>,
) -> DlgOutcome {
    let mut at = match &view.known_positions {
        Some(pos) => AttackTape::build_with_positions(model, pos),
        None => AttackTape::build(model, view.visible.len()),
    };
    // Objective: squared L2 distance between the dummy gradient (under
    // the attacker's alignment) and the visible fragment.
    let objective = {
        let grads = at.grads.clone();
        let gstar = at.gstar.clone();
        at.tape.sq_dist(&grads, &gstar)
    };
    let d = model.input_dim();
    let c = model.classes();
    let optimize_label = fixed_label.is_none();
    // Differentiate the objective w.r.t. the dummy input (and soft label).
    let opt_vars: Vec<_> = if optimize_label {
        at.x.iter().chain(at.label_logits.iter()).copied().collect()
    } else {
        at.x.clone()
    };
    let opt_grads = at.tape.grad(objective, &opt_vars);
    let mut ev = at.tape.evaluator();

    // Dummy initialization.
    let mut rng = DetRng::from_u64(cfg.seed).fork(b"dlg-init");
    let mut x: Vec<f64> = (0..d).map(|_| rng.next_f64()).collect();
    let mut label_logits: Vec<f64> = match fixed_label {
        Some(l) => at.hard_label_logits(l),
        None => (0..c).map(|_| rng.next_gaussian() * 0.1).collect(),
    };

    let vars0: Vec<f64> = if optimize_label {
        x.iter().chain(label_logits.iter()).copied().collect()
    } else {
        x.clone()
    };
    let lbfgs = Lbfgs {
        max_iter: cfg.iterations,
        ..Default::default()
    };
    let fixed_logits = label_logits.clone();
    let (vars, final_objective) = lbfgs.minimize(vars0, |vars| {
        let xv = &vars[..d];
        let lv: &[f64] = if optimize_label {
            &vars[d..]
        } else {
            &fixed_logits
        };
        let inputs = at.pack_inputs(xv, lv, params, &view.visible);
        ev.eval(&at.tape, &inputs);
        let value = ev.value(objective);
        let grad: Vec<f64> = opt_grads.iter().map(|&g| ev.value(g)).collect();
        (value, grad)
    });
    x.copy_from_slice(&vars[..d]);
    if optimize_label {
        label_logits.copy_from_slice(&vars[d..]);
    }

    let max = label_logits
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = label_logits.iter().map(|&l| (l - max).exp()).collect();
    let denom: f64 = exps.iter().sum();
    DlgOutcome {
        reconstruction: x.iter().map(|&v| v as f32).collect(),
        label_probs: exps.iter().map(|&e| e / denom).collect(),
        final_objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphnet::MlpSpec;
    use crate::harness::{breach_view, AttackView};
    use crate::metrics::mse;
    use deta_autograd::Tape;
    use deta_crypto::DetRng;

    /// Computes the true single-example gradient via the graph (hard label).
    fn true_gradient(spec: &MlpSpec, params: &[f32], x: &[f32], label: usize) -> Vec<f32> {
        let at = AttackTape::build(spec, spec.param_count());
        let mut ev = at.tape.evaluator();
        let xin: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let inputs = at.pack_inputs(
            &xin,
            &at.hard_label_logits(label),
            params,
            &vec![0.0; spec.param_count()],
        );
        ev.eval(&at.tape, &inputs);
        at.grads.iter().map(|&g| ev.value(g) as f32).collect()
    }

    fn setup() -> (MlpSpec, Vec<f32>, Vec<f32>, usize) {
        let spec = MlpSpec::new(&[16, 12, 4]);
        let mut rng = DetRng::from_u64(11);
        let params: Vec<f32> = (0..spec.param_count())
            .map(|_| rng.next_gaussian() as f32 * 0.3)
            .collect();
        let x: Vec<f32> = (0..16).map(|_| rng.next_f32()).collect();
        (spec, params, x, 2)
    }

    #[test]
    fn dlg_reconstructs_with_full_view() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let out = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 600,
                lr: 0.05,
                seed: 3,
                restarts: 1,
            },
        );
        let err = mse(&out.reconstruction, &x);
        assert!(err < 1e-2, "full-view DLG should reconstruct, mse={err}");
        // The recovered label should be correct.
        let inferred = out
            .label_probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(inferred, label);
    }

    #[test]
    fn dlg_fails_with_shuffled_view() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 1.0 },
            1,
            &[5u8; 16],
        );
        let out = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 300,
                lr: 0.05,
                seed: 3,
                restarts: 1,
            },
        );
        let err = mse(&out.reconstruction, &x);
        assert!(
            err > 0.02,
            "shuffled view must not be reconstructable, mse={err}"
        );
    }

    #[test]
    fn objective_decreases_with_full_view() {
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let short = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 5,
                lr: 0.05,
                seed: 3,
                restarts: 1,
            },
        );
        let long = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 400,
                lr: 0.05,
                seed: 3,
                restarts: 1,
            },
        );
        assert!(long.final_objective < short.final_objective);
    }

    #[test]
    fn oracle_attacker_defeats_partition_alone() {
        // Defense-in-depth: an attacker who learned the model mapper can
        // align a partition-only fragment and reconstruct...
        use crate::harness::oracle_breach_view;
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = oracle_breach_view(&g, 0.6, false, 3, &[2u8; 16]);
        let out = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 600,
                lr: 0.05,
                seed: 1,
                restarts: 2,
            },
        );
        let err = mse(&out.reconstruction, &x);
        assert!(
            err < 0.02,
            "oracle + partition-only should reconstruct, mse={err}"
        );
    }

    #[test]
    fn oracle_attacker_still_fails_against_shuffle() {
        // ...but the keyed shuffle holds even against the oracle.
        use crate::harness::oracle_breach_view;
        let (spec, params, x, label) = setup();
        let g = true_gradient(&spec, &params, &x, label);
        let view = oracle_breach_view(&g, 0.6, true, 3, &[2u8; 16]);
        let out = run_dlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 300,
                lr: 0.05,
                seed: 1,
                restarts: 1,
            },
        );
        let err = mse(&out.reconstruction, &x);
        assert!(
            err > 0.02,
            "shuffle must hold against the oracle, mse={err}"
        );
    }

    #[test]
    fn tape_reuse_is_consistent() {
        // Building the tape twice for the same spec yields the same size
        // (determinism of the graph construction).
        let spec = MlpSpec::new(&[6, 5, 3]);
        let a = AttackTape::build(&spec, 10);
        let b = AttackTape::build(&spec, 10);
        assert_eq!(a.tape.len(), b.tape.len());
        let _ = Tape::new();
    }
}
