//! Reconstruction-fidelity metrics and the paper's bucket scheme.

/// Mean squared error between two images (or any equal-length vectors).
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Cosine distance `1 - <a,b> / (|a||b|)`, in `[0, 2]` (IG's objective).
///
/// Returns 1 for a zero vector.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum();
    let na: f64 = a
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na * nb)
}

/// The MSE buckets of the paper's Tables 1 and 2.
///
/// Bucket 0: `[0, 1e-3)` ("recognizable"), bucket 1: `[1e-3, 1)`,
/// bucket 2: `[1, 1e3)`, bucket 3: `>= 1e3`.
pub const MSE_BUCKET_LABELS: [&str; 4] = ["[0,1e-3)", "[1e-3,1)", "[1,1e3)", ">=1e3"];

/// Classifies an MSE into the paper's four buckets.
pub fn mse_bucket(v: f64) -> usize {
    if v < 1e-3 {
        0
    } else if v < 1.0 {
        1
    } else if v < 1e3 {
        2
    } else {
        3
    }
}

/// The cosine-distance buckets of the paper's Table 3.
pub const COSINE_BUCKET_LABELS: [&str; 6] = [
    "[0,0.01)",
    "[0.01,0.2)",
    "[0.2,0.4)",
    "[0.4,0.6)",
    "[0.6,0.8)",
    "[0.8,1]",
];

/// Classifies a cosine distance into the paper's six buckets.
pub fn cosine_bucket(v: f64) -> usize {
    if v < 0.01 {
        0
    } else if v < 0.2 {
        1
    } else if v < 0.4 {
        2
    } else if v < 0.6 {
        3
    } else if v < 0.8 {
        4
    } else {
        5
    }
}

/// Percentage histogram over buckets.
pub fn bucket_percentages(
    values: &[f64],
    bucket: impl Fn(f64) -> usize,
    n_buckets: usize,
) -> Vec<f64> {
    let mut counts = vec![0usize; n_buckets];
    for &v in values {
        counts[bucket(v)] += 1;
    }
    counts
        .into_iter()
        .map(|c| 100.0 * c as f64 / values.len().max(1) as f64)
        .collect()
}

/// Writes an image as a binary PGM (1 channel) or PPM (3 channels) file,
/// clamping values from `[0, 1]` to bytes. Used to dump the Figure 3/4
/// reconstruction examples.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Panics
///
/// Panics if `data.len() != channels * h * w` or channels not in {1, 3}.
pub fn write_pnm(
    path: &std::path::Path,
    data: &[f32],
    channels: usize,
    h: usize,
    w: usize,
) -> std::io::Result<()> {
    assert!(
        channels == 1 || channels == 3,
        "PNM supports 1 or 3 channels"
    );
    assert_eq!(data.len(), channels * h * w, "image size mismatch");
    let magic = if channels == 1 { "P5" } else { "P6" };
    let mut out = format!("{magic}\n{w} {h}\n255\n").into_bytes();
    // Planar (CHW) to interleaved (HWC).
    for y in 0..h {
        for x in 0..w {
            for c in 0..channels {
                let v = data[(c * h + y) * w + x].clamp(0.0, 1.0);
                out.push((v * 255.0).round() as u8);
            }
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(mse(&[0.0], &[3.0]), 9.0);
    }

    #[test]
    fn cosine_basics() {
        assert!(cosine_distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        // Scale invariance.
        assert!(cosine_distance(&[1.0, 2.0], &[2.0, 4.0]).abs() < 1e-9);
    }

    #[test]
    fn mse_buckets_match_paper() {
        assert_eq!(mse_bucket(0.0), 0);
        assert_eq!(mse_bucket(9.9e-4), 0);
        assert_eq!(mse_bucket(1e-3), 1);
        assert_eq!(mse_bucket(0.5), 1);
        assert_eq!(mse_bucket(1.0), 2);
        assert_eq!(mse_bucket(999.0), 2);
        assert_eq!(mse_bucket(1e3), 3);
    }

    #[test]
    fn cosine_buckets_match_paper() {
        assert_eq!(cosine_bucket(0.005), 0);
        assert_eq!(cosine_bucket(0.1), 1);
        assert_eq!(cosine_bucket(0.3), 2);
        assert_eq!(cosine_bucket(0.5), 3);
        assert_eq!(cosine_bucket(0.7), 4);
        assert_eq!(cosine_bucket(0.95), 5);
    }

    #[test]
    fn percentages_sum_to_100() {
        let vals = vec![0.0, 0.5, 2.0, 5000.0, 0.0002];
        let pct = bucket_percentages(&vals, mse_bucket, 4);
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(pct[0], 40.0);
        assert_eq!(pct[1], 20.0);
        assert_eq!(pct[2], 20.0);
        assert_eq!(pct[3], 20.0);
    }

    #[test]
    fn pnm_roundtrip_header() {
        let dir = std::env::temp_dir().join("deta-pnm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.pgm");
        write_pnm(&path, &[0.0, 0.5, 1.0, 0.25], 1, 2, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n2 2\n255\n".len() + 4);
    }
}
