//! Gradient-inversion attacks and the DeTA security-evaluation harness.
//!
//! Reproduces the paper's Section 6: three published attacks that
//! reconstruct training inputs from shared model updates —
//!
//! * [`dlg`] — Deep Leakage from Gradients (Zhu et al., NeurIPS '19):
//!   L2 gradient matching, jointly optimizing a dummy input and label.
//! * [`idlg`] — Improved DLG (Zhao et al., 2020): analytic ground-truth
//!   label inference from the last-layer bias gradient signs, then
//!   gradient matching on the input alone.
//! * [`ig`] — Inverting Gradients (Geiping et al., NeurIPS '20): cosine
//!   distance objective with a total-variation prior, signed-gradient
//!   Adam, box constraint.
//!
//! All three differentiate *through* the network's gradient computation,
//! which is why they run on the higher-order [`deta_autograd`] tape via
//! the graph builders in [`graphnet`].
//!
//! [`harness`] wires the attacks to DeTA's defenses: it produces exactly
//! the view an adversary obtains by breaching one CC-protected aggregator
//! (a fragmented, possibly shuffled gradient vector), runs an attack
//! against that view, and scores reconstruction fidelity with
//! [`metrics`]. DLG/iDLG minimize with L-BFGS as in the original code;
//! IG uses signed-gradient Adam as its paper specifies. Image
//! resolutions and iteration counts are scaled to CPU budgets (see
//! `DESIGN.md`); neither changes who wins — only how long runs take.
//! [`batch`] extends DLG to mini-batch mean gradients.
//!
//! [`poison`] adds the *active* adversary: untargeted model-poisoning
//! generators (sign-flip, scaled update, collusion) that the
//! adversarial drill suite mounts against live sessions to check the
//! robust aggregation rules reject them (DESIGN.md §14).

pub mod analytic;
pub mod batch;
pub mod dlg;
pub mod graphnet;
pub mod harness;
pub mod idlg;
pub mod ig;
pub mod metrics;
pub mod optim;
pub mod poison;

pub use harness::{AttackView, BreachedView};
pub use metrics::{cosine_distance, mse};
pub use poison::PoisonKind;
