//! Mini-batch gradient inversion.
//!
//! Parties rarely share single-example gradients: FedSGD uploads the
//! *mean* gradient of a batch, and the paper notes that attacks must
//! "scale to gradients computed on mini-batched training data" (its
//! active-attack citations do exactly that). This module extends DLG to
//! jointly reconstruct all `B` examples of a batch from the mean
//! gradient, which quantifies the classic observation that inversion
//! quality degrades as `B` grows — one more reason FedAvg-style batching
//! already raises the attack bar before DeTA's transforms apply.

use crate::harness::{BreachedView, GraphModel};
use crate::metrics::mse;
use crate::optim::Lbfgs;
use deta_autograd::{Tape, Var};
use deta_crypto::DetRng;

/// Batched attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchDlgConfig {
    /// L-BFGS iteration budget.
    pub iterations: usize,
    /// RNG seed for the dummy initialization.
    pub seed: u64,
    /// Random restarts (best final objective wins).
    pub restarts: usize,
}

/// Batched attack outcome.
#[derive(Clone, Debug)]
pub struct BatchDlgOutcome {
    /// One reconstruction per batch slot.
    pub reconstructions: Vec<Vec<f32>>,
    /// Final gradient-matching objective.
    pub final_objective: f64,
}

/// Builds a tape computing the *mean* per-example gradient of a batch of
/// `b` examples w.r.t. the leading `k` parameters.
struct BatchTape {
    tape: Tape,
    xs: Vec<Vec<Var>>,
    label_logits: Vec<Vec<Var>>,
    gstar: Vec<Var>,
    mean_grads: Vec<Var>,
}

impl BatchTape {
    fn build(model: &dyn GraphModel, b: usize, k: usize) -> BatchTape {
        assert!(b > 0 && k > 0 && k <= model.param_count());
        let mut tape = Tape::new();
        let xs: Vec<Vec<Var>> = (0..b).map(|_| tape.inputs(model.input_dim())).collect();
        let label_logits: Vec<Vec<Var>> = (0..b).map(|_| tape.inputs(model.classes())).collect();
        let params = tape.inputs(model.param_count());
        let gstar = tape.inputs(k);
        // Mean loss over the batch, differentiated once w.r.t. params.
        let losses: Vec<Var> = xs
            .iter()
            .zip(label_logits.iter())
            .map(|(x, ll)| {
                let logits = model.forward(&mut tape, x, &params);
                crate::graphnet::soft_cross_entropy(&mut tape, &logits, ll)
            })
            .collect();
        let total = tape.sum(&losses);
        let mean_loss = tape.scale(total, 1.0 / b as f64);
        let mean_grads = tape.grad(mean_loss, &params[..k]);
        BatchTape {
            tape,
            xs,
            label_logits,
            gstar,
            mean_grads,
        }
    }
}

/// Computes the mean gradient of a batch (the victim-side computation).
pub fn batch_mean_gradient(
    model: &dyn GraphModel,
    params: &[f32],
    images: &[Vec<f32>],
    labels: &[usize],
) -> Vec<f32> {
    assert_eq!(images.len(), labels.len());
    let b = images.len();
    let bt = BatchTape::build(model, b, model.param_count());
    let mut ev = bt.tape.evaluator();
    let mut inputs = Vec::new();
    for img in images {
        inputs.extend(img.iter().map(|&v| v as f64));
    }
    for &l in labels {
        for c in 0..model.classes() {
            inputs.push(if c == l { 30.0 } else { -30.0 });
        }
    }
    inputs.extend(params.iter().map(|&v| v as f64));
    inputs.extend(std::iter::repeat_n(0.0, model.param_count()));
    ev.eval(&bt.tape, &inputs);
    bt.mean_grads.iter().map(|&g| ev.value(g) as f32).collect()
}

/// Runs batched DLG: jointly optimizes `b` dummy inputs and soft labels
/// to match the visible (possibly DeTA-transformed) mean gradient.
pub fn run_batch_dlg(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    b: usize,
    cfg: &BatchDlgConfig,
) -> BatchDlgOutcome {
    let k = view.visible.len();
    let mut bt = BatchTape::build(model, b, k);
    let objective = {
        let grads = bt.mean_grads.clone();
        let gstar = bt.gstar.clone();
        bt.tape.sq_dist(&grads, &gstar)
    };
    let d = model.input_dim();
    let c = model.classes();
    let opt_vars: Vec<Var> = bt
        .xs
        .iter()
        .flatten()
        .chain(bt.label_logits.iter().flatten())
        .copied()
        .collect();
    let opt_grads = bt.tape.grad(objective, &opt_vars);
    let mut ev = bt.tape.evaluator();
    let n_opt = opt_vars.len();
    let pack = |vars: &[f64], params: &[f32], gstar: &[f32]| -> Vec<f64> {
        let mut inputs = Vec::with_capacity(n_opt + params.len() + gstar.len());
        inputs.extend_from_slice(&vars[..b * d]); // xs
        inputs.extend_from_slice(&vars[b * d..]); // label logits
        inputs.extend(params.iter().map(|&v| v as f64));
        inputs.extend(gstar.iter().map(|&v| v as f64));
        inputs
    };
    let mut best: Option<(f64, Vec<f64>)> = None;
    for r in 0..cfg.restarts.max(1) {
        let mut rng = DetRng::from_u64(cfg.seed).fork_indexed(b"batch-dlg", r as u64);
        let mut vars0: Vec<f64> = (0..b * d).map(|_| rng.next_f64()).collect();
        vars0.extend((0..b * c).map(|_| rng.next_gaussian() * 0.1));
        let lbfgs = Lbfgs {
            max_iter: cfg.iterations,
            ..Default::default()
        };
        let (vars, fx) = lbfgs.minimize(vars0, |vars| {
            let inputs = pack(vars, params, &view.visible);
            ev.eval(&bt.tape, &inputs);
            let value = ev.value(objective);
            let grad: Vec<f64> = opt_grads.iter().map(|&g| ev.value(g)).collect();
            (value, grad)
        });
        if best.as_ref().is_none_or(|(bfx, _)| fx < *bfx) {
            best = Some((fx, vars));
        }
    }
    let (final_objective, vars) = best.unwrap();
    let reconstructions = (0..b)
        .map(|i| vars[i * d..(i + 1) * d].iter().map(|&v| v as f32).collect())
        .collect();
    BatchDlgOutcome {
        reconstructions,
        final_objective,
    }
}

/// Scores a batched reconstruction against the true batch with the best
/// greedy assignment (batch order is not identifiable), returning the
/// mean per-image MSE.
pub fn best_assignment_mse(recons: &[Vec<f32>], truths: &[Vec<f32>]) -> f64 {
    assert_eq!(recons.len(), truths.len());
    let b = recons.len();
    let mut used = vec![false; b];
    let mut total = 0.0f64;
    // Greedy matching: repeatedly take the globally smallest remaining
    // pair. Exact for b = 1-2 and a close approximation for small b.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (i, r) in recons.iter().enumerate() {
        for (j, t) in truths.iter().enumerate() {
            pairs.push((mse(r, t), i, j));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut r_used = vec![false; b];
    let mut count = 0;
    for (m, i, j) in pairs {
        if !r_used[i] && !used[j] {
            r_used[i] = true;
            used[j] = true;
            total += m;
            count += 1;
            if count == b {
                break;
            }
        }
    }
    total / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphnet::MlpSpec;
    use crate::harness::{breach_view, AttackView};

    fn setup(b: usize) -> (MlpSpec, Vec<f32>, Vec<Vec<f32>>, Vec<usize>) {
        let spec = MlpSpec::new(&[12, 10, 4]);
        let mut rng = DetRng::from_u64(51);
        let params: Vec<f32> = (0..spec.param_count())
            .map(|_| rng.next_gaussian() as f32 * 0.3)
            .collect();
        let images: Vec<Vec<f32>> = (0..b)
            .map(|_| (0..12).map(|_| rng.next_f32()).collect())
            .collect();
        let labels: Vec<usize> = (0..b).map(|i| i % 4).collect();
        (spec, params, images, labels)
    }

    #[test]
    fn batch_of_one_matches_single_gradient() {
        let (spec, params, images, labels) = setup(1);
        let batch_g = batch_mean_gradient(&spec, &params, &images, &labels);
        // Single-example gradient via the standard tape.
        let at = crate::harness::AttackTape::build(&spec, spec.param_count());
        let mut ev = at.tape.evaluator();
        let xin: Vec<f64> = images[0].iter().map(|&v| v as f64).collect();
        let inputs = at.pack_inputs(
            &xin,
            &at.hard_label_logits(labels[0]),
            &params,
            &vec![0.0; spec.param_count()],
        );
        ev.eval(&at.tape, &inputs);
        let single: Vec<f32> = at.grads.iter().map(|&g| ev.value(g) as f32).collect();
        for (a, b) in batch_g.iter().zip(single.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_gradient_is_mean_of_singles() {
        let (spec, params, images, labels) = setup(3);
        let batch_g = batch_mean_gradient(&spec, &params, &images, &labels);
        let mut acc = vec![0.0f32; spec.param_count()];
        for (img, &l) in images.iter().zip(labels.iter()) {
            let g = batch_mean_gradient(&spec, &params, &[img.clone()], &[l]);
            for (a, v) in acc.iter_mut().zip(g.iter()) {
                *a += v / 3.0;
            }
        }
        for (a, b) in batch_g.iter().zip(acc.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn batch_dlg_reconstructs_pairs() {
        let (spec, params, images, labels) = setup(2);
        let g = batch_mean_gradient(&spec, &params, &images, &labels);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let out = run_batch_dlg(
            &spec,
            &params,
            &view,
            2,
            &BatchDlgConfig {
                iterations: 800,
                seed: 3,
                restarts: 2,
            },
        );
        let err = best_assignment_mse(&out.reconstructions, &images);
        assert!(err < 0.05, "B=2 full-view batch DLG should work, mse={err}");
    }

    #[test]
    fn batch_dlg_fails_under_deta() {
        let (spec, params, images, labels) = setup(2);
        let g = batch_mean_gradient(&spec, &params, &images, &labels);
        let view = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 0.6 },
            1,
            &[4u8; 16],
        );
        let out = run_batch_dlg(
            &spec,
            &params,
            &view,
            2,
            &BatchDlgConfig {
                iterations: 300,
                seed: 3,
                restarts: 1,
            },
        );
        let err = best_assignment_mse(&out.reconstructions, &images);
        assert!(err > 0.02, "DeTA must defeat batched DLG too, mse={err}");
    }

    #[test]
    fn assignment_is_permutation_invariant() {
        let a = vec![vec![0.0f32; 4], vec![1.0f32; 4]];
        let b = vec![vec![1.0f32; 4], vec![0.0f32; 4]];
        assert_eq!(best_assignment_mse(&a, &b), 0.0);
        assert_eq!(best_assignment_mse(&a, &a), 0.0);
    }
}
