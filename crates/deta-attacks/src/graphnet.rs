//! Differentiable-graph network builders for the attack tape.
//!
//! The attacks need the victim model's *gradient* as a differentiable
//! function of the dummy input, so the forward pass, loss, and first
//! backward pass are all built as [`Tape`] nodes. Two architectures cover
//! the paper's attack experiments:
//!
//! * [`MlpSpec`] — a Tanh MLP whose flat-parameter layout matches
//!   `deta_nn::models::mlp` exactly (per layer: `W` row-major, then `b`),
//!   so gradients computed here can be cross-checked against the fast
//!   layer-based backprop.
//! * [`ConvSpec`] — one strided Tanh convolution followed by a linear
//!   classifier, the small stand-in for the paper's LeNet / ResNet-18
//!   attack targets.
//!
//! Both emit a softmax cross-entropy loss for a single example with a
//! *soft label*: the label enters as logit variables so DLG can optimize
//! it, while iDLG/IG pin it by passing a one-hot value.

use deta_autograd::{Tape, Var};

/// A Tanh multi-layer perceptron specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlpSpec {
    /// Layer dimensions, input first, classes last.
    pub dims: Vec<usize>,
}

impl MlpSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two dims.
    pub fn new(dims: &[usize]) -> MlpSpec {
        assert!(dims.len() >= 2, "need at least input and output dims");
        MlpSpec {
            dims: dims.to_vec(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Total parameter count (matching `deta_nn` layout).
    pub fn param_count(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Emits the forward pass for one example, returning the logits.
    ///
    /// `params` must hold [`MlpSpec::param_count`] variables in the layout
    /// `[W0 row-major, b0, W1, b1, ...]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward(&self, tape: &mut Tape, x: &[Var], params: &[Var]) -> Vec<Var> {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        assert_eq!(params.len(), self.param_count(), "param length mismatch");
        let mut act: Vec<Var> = x.to_vec();
        let mut off = 0usize;
        let n_layers = self.dims.len() - 1;
        for (li, w) in self.dims.windows(2).enumerate() {
            let (ind, outd) = (w[0], w[1]);
            let weights = &params[off..off + ind * outd];
            let biases = &params[off + ind * outd..off + ind * outd + outd];
            off += ind * outd + outd;
            let mut next = Vec::with_capacity(outd);
            for o in 0..outd {
                // Row o of W matches deta_nn's `[out, in]` row-major layout.
                let row = &weights[o * ind..(o + 1) * ind];
                let dot = tape.dot(row, &act);
                let z = tape.add(dot, biases[o]);
                next.push(if li + 1 < n_layers { tape.tanh(z) } else { z });
            }
            act = next;
        }
        act
    }
}

/// A small convolutional classifier: one strided Tanh conv + linear head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub in_c: usize,
    /// Input height/width (square).
    pub hw: usize,
    /// Conv output channels.
    pub out_c: usize,
    /// Kernel size (square), stride 2, padding 1.
    pub k: usize,
    /// Number of classes.
    pub classes: usize,
}

impl ConvSpec {
    /// Spatial output size (stride 2, pad 1).
    pub fn out_hw(&self) -> usize {
        (self.hw + 2 - self.k) / 2 + 1
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.in_c * self.hw * self.hw
    }

    /// Flattened conv feature count.
    pub fn feature_dim(&self) -> usize {
        self.out_c * self.out_hw() * self.out_hw()
    }

    /// Total parameter count: conv `W [out_c, in_c*k*k]` + `b [out_c]`,
    /// then linear `W [classes, features]` + `b [classes]`.
    pub fn param_count(&self) -> usize {
        self.out_c * self.in_c * self.k * self.k
            + self.out_c
            + self.classes * self.feature_dim()
            + self.classes
    }

    /// Emits the forward pass for one image, returning the logits.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward(&self, tape: &mut Tape, x: &[Var], params: &[Var]) -> Vec<Var> {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        assert_eq!(params.len(), self.param_count(), "param length mismatch");
        let (hw, k, out_hw) = (self.hw, self.k, self.out_hw());
        let conv_w_len = self.out_c * self.in_c * k * k;
        let conv_w = &params[..conv_w_len];
        let conv_b = &params[conv_w_len..conv_w_len + self.out_c];
        let fc_off = conv_w_len + self.out_c;
        let features = self.feature_dim();
        let fc_w = &params[fc_off..fc_off + self.classes * features];
        let fc_b = &params[fc_off + self.classes * features..];

        // Strided convolution (stride 2, pad 1) with Tanh.
        let mut feat: Vec<Var> = Vec::with_capacity(features);
        for (oc, &bias) in conv_b.iter().enumerate().take(self.out_c) {
            for oy in 0..out_hw {
                for ox in 0..out_hw {
                    let mut terms: Vec<Var> = Vec::with_capacity(self.in_c * k * k);
                    for ic in 0..self.in_c {
                        for ky in 0..k {
                            let iy = (oy * 2 + ky) as isize - 1;
                            if iy < 0 || iy as usize >= hw {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * 2 + kx) as isize - 1;
                                if ix < 0 || ix as usize >= hw {
                                    continue;
                                }
                                let wi = ((oc * self.in_c + ic) * k + ky) * k + kx;
                                let xi = (ic * hw + iy as usize) * hw + ix as usize;
                                terms.push(tape.mul(conv_w[wi], x[xi]));
                            }
                        }
                    }
                    let s = tape.sum(&terms);
                    let z = tape.add(s, bias);
                    feat.push(tape.tanh(z));
                }
            }
        }
        // Linear head.
        let mut logits = Vec::with_capacity(self.classes);
        for c in 0..self.classes {
            let row = &fc_w[c * features..(c + 1) * features];
            let dot = tape.dot(row, &feat);
            logits.push(tape.add(dot, fc_b[c]));
        }
        logits
    }
}

/// Emits softmax cross-entropy against a *soft label* distribution.
///
/// `label_logits` are variables (DLG optimizes them); the target
/// distribution is `softmax(label_logits)` and the loss is
/// `-sum_c q_c * log p_c`.
pub fn soft_cross_entropy(tape: &mut Tape, logits: &[Var], label_logits: &[Var]) -> Var {
    assert_eq!(logits.len(), label_logits.len(), "class count mismatch");
    let p = tape.softmax(logits);
    let q = tape.softmax(label_logits);
    let terms: Vec<Var> = p
        .iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            let lp = tape.ln(pi);
            let t = tape.mul(qi, lp);
            tape.neg(t)
        })
        .collect();
    tape.sum(&terms)
}

/// Builds the full attack tape for a model: given input variables,
/// soft-label variables, and parameter variables, returns
/// `(loss, grad_wrt_params)` as graph nodes.
pub fn loss_and_param_grad(
    tape: &mut Tape,
    logits: Vec<Var>,
    label_logits: &[Var],
    params: &[Var],
) -> (Var, Vec<Var>) {
    let loss = soft_cross_entropy(tape, &logits, label_logits);
    let grads = tape.grad(loss, params);
    (loss, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_crypto::DetRng;
    use deta_nn::models::mlp;
    use deta_nn::train::batch_gradient;
    use deta_tensor::Tensor;

    #[test]
    fn mlp_param_count_matches_nn() {
        let spec = MlpSpec::new(&[6, 5, 3]);
        let mut rng = DetRng::from_u64(1);
        let model = mlp(&[6, 5, 3], &mut rng);
        assert_eq!(spec.param_count(), model.param_count());
    }

    #[test]
    fn mlp_forward_matches_nn() {
        let dims = [4usize, 6, 3];
        let spec = MlpSpec::new(&dims);
        let mut rng = DetRng::from_u64(2);
        let mut model = mlp(&dims, &mut rng);
        let flat = model.flat_params();
        let x_val: Vec<f32> = vec![0.3, -0.2, 0.8, 0.1];

        let mut tape = Tape::new();
        let x = tape.inputs(4);
        let params = tape.inputs(spec.param_count());
        let logits = spec.forward(&mut tape, &x, &params);
        let mut ev = tape.evaluator();
        let mut inputs: Vec<f64> = x_val.iter().map(|&v| v as f64).collect();
        inputs.extend(flat.iter().map(|&v| v as f64));
        ev.eval(&tape, &inputs);

        let nn_logits = model.forward(&Tensor::from_vec(x_val, &[1, 4]), false);
        for (j, &lv) in logits.iter().enumerate() {
            let graph = ev.value(lv) as f32;
            let nn = nn_logits.at2(0, j);
            assert!((graph - nn).abs() < 1e-4, "logit {j}: {graph} vs {nn}");
        }
    }

    #[test]
    fn mlp_param_gradient_matches_nn_backprop() {
        // The gradient the attack matches against must equal the gradient
        // a real party computes with layer backprop.
        let dims = [5usize, 7, 4];
        let spec = MlpSpec::new(&dims);
        let mut rng = DetRng::from_u64(3);
        let mut model = mlp(&dims, &mut rng);
        let flat = model.flat_params();
        let x_val: Vec<f32> = (0..5).map(|i| (i as f32 * 0.37).sin()).collect();
        let label = 2usize;

        // Graph gradient with a hard one-hot label (large logit margin).
        let mut tape = Tape::new();
        let x = tape.inputs(5);
        let label_logits = tape.inputs(4);
        let params = tape.inputs(spec.param_count());
        let logits = spec.forward(&mut tape, &x, &params);
        let (_, grads) = loss_and_param_grad(&mut tape, logits, &label_logits, &params);
        let mut ev = tape.evaluator();
        let mut inputs: Vec<f64> = x_val.iter().map(|&v| v as f64).collect();
        // One-hot via huge logit separation.
        for c in 0..4 {
            inputs.push(if c == label { 50.0 } else { -50.0 });
        }
        inputs.extend(flat.iter().map(|&v| v as f64));
        ev.eval(&tape, &inputs);
        let graph_grad: Vec<f64> = grads.iter().map(|&g| ev.value(g)).collect();

        // Layer backprop gradient.
        let (_, nn_grad) = batch_gradient(&mut model, &Tensor::from_vec(x_val, &[1, 5]), &[label]);
        assert_eq!(graph_grad.len(), nn_grad.len());
        for (i, (&g, &n)) in graph_grad.iter().zip(nn_grad.iter()).enumerate() {
            assert!(
                (g as f32 - n).abs() < 1e-3,
                "param {i}: graph {g} vs nn {n}"
            );
        }
    }

    #[test]
    fn conv_shapes() {
        let spec = ConvSpec {
            in_c: 3,
            hw: 16,
            out_c: 4,
            k: 3,
            classes: 10,
        };
        assert_eq!(spec.out_hw(), 8); // (16 + 2 - 3) / 2 + 1
        assert_eq!(spec.feature_dim(), 4 * 64);
        assert_eq!(spec.param_count(), 4 * 27 + 4 + 10 * 256 + 10);
    }

    #[test]
    fn conv_forward_finite_and_label_sensitive() {
        let spec = ConvSpec {
            in_c: 1,
            hw: 8,
            out_c: 2,
            k: 3,
            classes: 3,
        };
        let mut tape = Tape::new();
        let x = tape.inputs(spec.input_dim());
        let params = tape.inputs(spec.param_count());
        let logits = spec.forward(&mut tape, &x, &params);
        assert_eq!(logits.len(), 3);
        let mut rng = DetRng::from_u64(5);
        let mut inputs: Vec<f64> = (0..tape.input_count())
            .map(|_| rng.next_gaussian() * 0.3)
            .collect();
        let mut ev = tape.evaluator();
        ev.eval(&tape, &inputs);
        let l0: Vec<f64> = logits.iter().map(|&l| ev.value(l)).collect();
        assert!(l0.iter().all(|v| v.is_finite()));
        // Perturbing the input changes the logits.
        inputs[0] += 1.0;
        ev.eval(&tape, &inputs);
        let l1: Vec<f64> = logits.iter().map(|&l| ev.value(l)).collect();
        assert_ne!(l0, l1);
    }

    #[test]
    fn conv_gradient_matches_numeric() {
        let spec = ConvSpec {
            in_c: 1,
            hw: 6,
            out_c: 2,
            k: 3,
            classes: 2,
        };
        let mut tape = Tape::new();
        let x = tape.inputs(spec.input_dim());
        let label_logits = tape.inputs(2);
        let params = tape.inputs(spec.param_count());
        let logits = spec.forward(&mut tape, &x, &params);
        let (loss, grads) = loss_and_param_grad(&mut tape, logits, &label_logits, &params);
        let mut rng = DetRng::from_u64(7);
        let inputs: Vec<f64> = (0..tape.input_count())
            .map(|_| rng.next_gaussian() * 0.5)
            .collect();
        let mut ev = tape.evaluator();
        ev.eval(&tape, &inputs);
        // Spot-check a few parameter gradients against finite differences.
        let x_len = spec.input_dim() + 2;
        for &pi in &[0usize, 5, 20, spec.param_count() - 1] {
            let analytic = ev.value(grads[pi]);
            let h = 1e-5;
            let mut plus = inputs.clone();
            plus[x_len + pi] += h;
            ev.eval(&tape, &plus);
            let fp = ev.value(loss);
            let mut minus = inputs.clone();
            minus[x_len + pi] -= h;
            ev.eval(&tape, &minus);
            let fm = ev.value(loss);
            let numeric = (fp - fm) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-4,
                "param {pi}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn soft_label_one_hot_limit() {
        // With a huge margin, soft CE equals hard CE.
        let mut tape = Tape::new();
        let logits = tape.inputs(3);
        let label_logits = tape.inputs(3);
        let loss = soft_cross_entropy(&mut tape, &logits, &label_logits);
        let mut ev = tape.evaluator();
        ev.eval(&tape, &[1.0, 2.0, 0.5, -50.0, 50.0, -50.0]);
        // Hard CE for label 1: -log softmax(logits)[1].
        let z = [1.0f64, 2.0, 0.5];
        let denom: f64 = z.iter().map(|v| v.exp()).sum();
        let want = -(z[1].exp() / denom).ln();
        assert!((ev.value(loss) - want).abs() < 1e-9);
    }
}
