//! Active model-poisoning generators (paper Section 7.1's Byzantine
//! setting), extending the passive gradient-inversion attacks with the
//! *untargeted poisoning* adversaries the robust aggregation rules
//! (Krum, FLAME-lite, coordinate median, trimmed mean) are designed to
//! reject.
//!
//! Each generator rewrites a party's post-LDP update before it enters
//! the transform pipeline — the adversary follows the wire protocol
//! perfectly and only lies about values, which is exactly what
//! partitioning + shuffling cannot (and does not claim to) prevent.
//! The drills in `deta-drills` mount these through
//! `Party::set_update_tamper` and assert FedAvg is measurably corrupted
//! while Krum/FLAME-lite hold the aggregate near the honest run.

/// An untargeted model-poisoning strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PoisonKind {
    /// Sign-flipping (Damaskinos et al.): upload `-scale * u` instead
    /// of the honest update `u`, steering the average away from the
    /// descent direction.
    SignFlip {
        /// Magnitude multiplier applied after flipping.
        scale: f32,
    },
    /// Model-replacement boosting (Bagdasaryan et al.): upload
    /// `factor * u`, letting one party dominate a mean-based aggregate.
    ScaledUpdate {
        /// The boost factor.
        factor: f32,
    },
    /// Collusion: every colluder discards its honest update and uploads
    /// the *same* crafted point (an alternating ±`magnitude` pattern),
    /// concentrating mass so distance-based rules see a tight hostile
    /// cluster instead of independent outliers.
    Collusion {
        /// Absolute coordinate magnitude of the crafted point.
        magnitude: f32,
    },
}

impl PoisonKind {
    /// Short name for drill reports.
    pub fn name(&self) -> &'static str {
        match self {
            PoisonKind::SignFlip { .. } => "sign-flip",
            PoisonKind::ScaledUpdate { .. } => "scaled-update",
            PoisonKind::Collusion { .. } => "colluding-pair",
        }
    }

    /// Rewrites one update in place.
    pub fn apply(&self, update: &mut [f32]) {
        match *self {
            PoisonKind::SignFlip { scale } => {
                for v in update.iter_mut() {
                    *v *= -scale;
                }
            }
            PoisonKind::ScaledUpdate { factor } => {
                for v in update.iter_mut() {
                    *v *= factor;
                }
            }
            PoisonKind::Collusion { magnitude } => {
                for (i, v) in update.iter_mut().enumerate() {
                    *v = if i % 2 == 0 { magnitude } else { -magnitude };
                }
            }
        }
    }

    /// The generator as a `Party::set_update_tamper` closure.
    pub fn tamper(self) -> deta_core::party::UpdateTamper {
        Box::new(move |_round, update| self.apply(update))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_core::agg::AggKind;

    #[test]
    fn sign_flip_reverses_and_scales() {
        let mut u = vec![1.0f32, -2.0, 0.5];
        PoisonKind::SignFlip { scale: 10.0 }.apply(&mut u);
        assert_eq!(u, vec![-10.0, 20.0, -5.0]);
    }

    #[test]
    fn scaled_update_multiplies() {
        let mut u = vec![1.0f32, -2.0];
        PoisonKind::ScaledUpdate { factor: 100.0 }.apply(&mut u);
        assert_eq!(u, vec![100.0, -200.0]);
    }

    #[test]
    fn colluders_produce_identical_points() {
        let kind = PoisonKind::Collusion { magnitude: 7.0 };
        let mut a = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut b = vec![-9.0f32, 0.0, 5.0, 1.0];
        kind.apply(&mut a);
        kind.apply(&mut b);
        assert_eq!(a, b, "collusion must erase per-party differences");
        assert_eq!(a, vec![7.0, -7.0, 7.0, -7.0]);
    }

    #[test]
    fn krum_rejects_a_generated_poison() {
        // Four near-identical honest updates plus one sign-flipped
        // boosted one: Krum must select an honest input.
        let honest: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..6).map(|c| 1.0 + 0.01 * (i * 6 + c) as f32).collect())
            .collect();
        let mut poisoned = honest[0].clone();
        PoisonKind::SignFlip { scale: 50.0 }.apply(&mut poisoned);
        let mut inputs = honest.clone();
        inputs.push(poisoned);
        let out = AggKind::Krum { f: 1 }.build().aggregate(&inputs, &[1.0; 5]);
        assert!(
            honest.contains(&out),
            "krum picked the poisoned update: {out:?}"
        );
    }

    #[test]
    fn mean_is_dragged_by_the_same_poison() {
        let honest: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..6).map(|c| 1.0 + 0.01 * (i * 6 + c) as f32).collect())
            .collect();
        let mut poisoned = honest[0].clone();
        PoisonKind::SignFlip { scale: 50.0 }.apply(&mut poisoned);
        let mut inputs = honest;
        inputs.push(poisoned);
        let out = AggKind::IterativeAveraging
            .build()
            .aggregate(&inputs, &[1.0; 5]);
        assert!(
            out.iter().all(|&v| v < 0.0),
            "a 5x-weighted sign flip must drag the mean negative: {out:?}"
        );
    }
}
