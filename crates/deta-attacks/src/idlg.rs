//! Improved Deep Leakage from Gradients (Zhao et al., 2020).
//!
//! iDLG's contribution over DLG is *analytic label inference*: for
//! softmax cross-entropy on a single example, the gradient of the final
//! layer's bias is `p - onehot(y)`, so exactly the true class's entry is
//! negative. Having pinned the label, the input-only gradient matching is
//! easier and reconstructions are more faithful.
//!
//! Against DeTA the inference rule itself degrades: the attacker can no
//! longer locate the bias-gradient block inside a fragmented (and
//! possibly shuffled) vector, so it applies the sign rule to where the
//! block *would* be under its assumed alignment — correct on a full
//! in-order view, garbage otherwise. The reconstruction step then fails
//! just as DLG's does.

use crate::dlg::{run_dlg_fixed_label, DlgConfig, DlgOutcome};
use crate::harness::{BreachedView, GraphModel};

/// Infers the ground-truth label from the visible gradient fragment.
///
/// The last-layer bias gradient occupies the final `classes` entries of a
/// full flat gradient. The attacker applies the rule to the trailing
/// `classes` entries of whatever it sees; when the view is partitioned or
/// shuffled those entries are not the bias block and the inference is
/// unreliable — which is the point.
///
/// Returns `None` if the fragment is shorter than the class count.
pub fn infer_label(view: &BreachedView, classes: usize) -> Option<usize> {
    if view.visible.len() < classes {
        return None;
    }
    let tail = &view.visible[view.visible.len() - classes..];
    let mut best = 0usize;
    for (i, &v) in tail.iter().enumerate() {
        if v < tail[best] {
            best = i;
        }
    }
    Some(best)
}

/// iDLG outcome: the DLG-style reconstruction plus the inferred label.
#[derive(Clone, Debug)]
pub struct IdlgOutcome {
    /// Reconstruction result.
    pub dlg: DlgOutcome,
    /// The label the attacker inferred (fallback 0 if unavailable).
    pub inferred_label: usize,
}

/// Runs iDLG: label inference followed by fixed-label gradient matching.
pub fn run_idlg(
    model: &dyn GraphModel,
    params: &[f32],
    view: &BreachedView,
    cfg: &DlgConfig,
) -> IdlgOutcome {
    let inferred_label = infer_label(view, model.classes()).unwrap_or(0);
    let dlg = run_dlg_fixed_label(model, params, view, cfg, inferred_label);
    IdlgOutcome {
        dlg,
        inferred_label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphnet::MlpSpec;
    use crate::harness::{breach_view, AttackTape, AttackView};
    use crate::metrics::mse;
    use deta_crypto::DetRng;

    fn true_gradient(spec: &MlpSpec, params: &[f32], x: &[f32], label: usize) -> Vec<f32> {
        let at = AttackTape::build(spec, spec.param_count());
        let mut ev = at.tape.evaluator();
        let xin: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let inputs = at.pack_inputs(
            &xin,
            &at.hard_label_logits(label),
            params,
            &vec![0.0; spec.param_count()],
        );
        ev.eval(&at.tape, &inputs);
        at.grads.iter().map(|&g| ev.value(g) as f32).collect()
    }

    fn setup() -> (MlpSpec, Vec<f32>, Vec<f32>) {
        let spec = MlpSpec::new(&[16, 12, 5]);
        let mut rng = DetRng::from_u64(21);
        let params: Vec<f32> = (0..spec.param_count())
            .map(|_| rng.next_gaussian() as f32 * 0.3)
            .collect();
        let x: Vec<f32> = (0..16).map(|_| rng.next_f32()).collect();
        (spec, params, x)
    }

    #[test]
    fn label_inference_correct_on_full_view() {
        let (spec, params, x) = setup();
        for label in 0..5 {
            let g = true_gradient(&spec, &params, &x, label);
            let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
            assert_eq!(infer_label(&view, 5), Some(label), "label {label}");
        }
    }

    #[test]
    fn label_inference_unreliable_when_shuffled() {
        // Over all 5 labels, shuffled views should misinfer at least once
        // (the bias block is dispersed).
        let (spec, params, x) = setup();
        let mut wrong = 0;
        for label in 0..5 {
            let g = true_gradient(&spec, &params, &x, label);
            let view = breach_view(
                &g,
                AttackView::PartitionShuffle { factor: 1.0 },
                1,
                &[9u8; 16],
            );
            if infer_label(&view, 5) != Some(label) {
                wrong += 1;
            }
        }
        assert!(
            wrong >= 3,
            "shuffling should break label inference ({wrong}/5 wrong)"
        );
    }

    #[test]
    fn too_short_fragment_yields_none() {
        let view = BreachedView {
            visible: vec![0.1, 0.2],
            full_len: 100,
            view: AttackView::Partition { factor: 0.02 },
            known_positions: None,
        };
        assert_eq!(infer_label(&view, 5), None);
    }

    #[test]
    fn idlg_reconstructs_with_full_view() {
        let (spec, params, x) = setup();
        let label = 3usize;
        let g = true_gradient(&spec, &params, &x, label);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let out = run_idlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 600,
                lr: 0.05,
                seed: 4,
                restarts: 1,
            },
        );
        assert_eq!(out.inferred_label, label);
        let err = mse(&out.dlg.reconstruction, &x);
        assert!(err < 1e-2, "full-view iDLG should reconstruct, mse={err}");
    }

    #[test]
    fn idlg_fails_with_partitioned_view() {
        let (spec, params, x) = setup();
        let g = true_gradient(&spec, &params, &x, 3);
        let view = breach_view(&g, AttackView::Partition { factor: 0.2 }, 1, &[0u8; 16]);
        let out = run_idlg(
            &spec,
            &params,
            &view,
            &DlgConfig {
                iterations: 300,
                lr: 0.05,
                seed: 4,
                restarts: 1,
            },
        );
        let err = mse(&out.dlg.reconstruction, &x);
        assert!(err > 0.02, "partitioned view must fail, mse={err}");
    }
}
