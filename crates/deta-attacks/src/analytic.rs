//! The closed-form first-layer reconstruction attack.
//!
//! For any network whose first layer is fully connected with a bias, the
//! single-example gradient satisfies `dL/dW1[i][j] = delta_i * x[j]` and
//! `dL/db1[i] = delta_i`, so the input is recovered **exactly** — no
//! optimization at all — as `x = gradW1[i] / gradb1[i]` for any row with
//! a non-zero bias gradient. This is the mechanism behind the "curious
//! abandon honesty" class of attacks the paper cites ([8] Boenisch et
//! al.): a strong-but-simple adversary that makes leakage from a central
//! aggregator *trivial*.
//!
//! Against DeTA the attack dies at the addressing step: the attacker
//! must locate matching `(W1 row, b1 slot)` pairs inside the fragment,
//! but partitioning removes coordinates and scatters the rest into a
//! dense architecture-less vector, and shuffling randomizes what is
//! left. The implementation here lets the attacker apply its best
//! heuristic (assume leading-coordinate alignment) so the failure is
//! demonstrated mechanically rather than assumed.

use crate::harness::BreachedView;

/// Layout of the victim's first fully connected layer inside the flat
/// gradient, in `deta_nn` order: `W1` (row-major `[rows, in_dim]`)
/// followed by `b1` (`[rows]`).
#[derive(Clone, Copy, Debug)]
pub struct FirstLayerLayout {
    /// Input dimension (pixels).
    pub in_dim: usize,
    /// First-layer output rows.
    pub rows: usize,
}

impl FirstLayerLayout {
    /// Offset of `b1` within the flat gradient.
    fn bias_offset(&self) -> usize {
        self.rows * self.in_dim
    }
}

/// Attempts the closed-form reconstruction from the attacker's view.
///
/// The attacker assumes the fragment's leading coordinates line up with
/// the flat gradient (its only option without the mapper), reads
/// `(W1, b1)` under that assumption, and divides the row with the
/// largest |bias gradient| (the numerically best-conditioned choice).
///
/// Returns `None` when the visible fragment is too short to even cover
/// the assumed `W1 || b1` region, or when every bias gradient is ~0.
pub fn reconstruct_first_layer(view: &BreachedView, layout: &FirstLayerLayout) -> Option<Vec<f32>> {
    let needed = layout.bias_offset() + layout.rows;
    if view.visible.len() < needed {
        return None;
    }
    let g = &view.visible;
    let bias = &g[layout.bias_offset()..layout.bias_offset() + layout.rows];
    let (best_row, best_delta) = bias
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())?;
    if best_delta.abs() < 1e-9 {
        return None;
    }
    let row = &g[best_row * layout.in_dim..(best_row + 1) * layout.in_dim];
    Some(row.iter().map(|&w| w / best_delta).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphnet::MlpSpec;
    use crate::harness::{breach_view, AttackTape, AttackView};
    use crate::metrics::mse;
    use deta_crypto::DetRng;

    fn setup() -> (MlpSpec, Vec<f32>, Vec<f32>, FirstLayerLayout) {
        let spec = MlpSpec::new(&[20, 14, 6]);
        let mut rng = DetRng::from_u64(81);
        let params: Vec<f32> = (0..spec.param_count())
            .map(|_| rng.next_gaussian() as f32 * 0.3)
            .collect();
        let x: Vec<f32> = (0..20).map(|_| rng.next_f32()).collect();
        let layout = FirstLayerLayout {
            in_dim: 20,
            rows: 14,
        };
        (spec, params, x, layout)
    }

    fn gradient(spec: &MlpSpec, params: &[f32], x: &[f32], label: usize) -> Vec<f32> {
        let at = AttackTape::build(spec, spec.param_count());
        let mut ev = at.tape.evaluator();
        let xin: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let inputs = at.pack_inputs(
            &xin,
            &at.hard_label_logits(label),
            params,
            &vec![0.0; spec.param_count()],
        );
        ev.eval(&at.tape, &inputs);
        at.grads.iter().map(|&g| ev.value(g) as f32).collect()
    }

    #[test]
    fn exact_reconstruction_on_full_view() {
        let (spec, params, x, layout) = setup();
        let g = gradient(&spec, &params, &x, 2);
        let view = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        let recon = reconstruct_first_layer(&view, &layout).expect("reconstruction");
        let err = mse(&recon, &x);
        assert!(err < 1e-8, "closed form must be exact, mse={err}");
    }

    #[test]
    fn fails_under_partitioning() {
        let (spec, params, x, layout) = setup();
        let g = gradient(&spec, &params, &x, 2);
        let view = breach_view(&g, AttackView::Partition { factor: 0.6 }, 1, &[0u8; 16]);
        // Either the assumed region is out of reach or the division
        // produces garbage.
        match reconstruct_first_layer(&view, &layout) {
            None => {}
            Some(recon) => {
                let err = mse(&recon, &x);
                assert!(err > 1e-2, "partitioned view leaked the input, mse={err}");
            }
        }
    }

    #[test]
    fn fails_under_shuffling() {
        let (spec, params, x, layout) = setup();
        let g = gradient(&spec, &params, &x, 2);
        let view = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 1.0 },
            1,
            &[3u8; 16],
        );
        let recon = reconstruct_first_layer(&view, &layout).expect("length suffices");
        let err = mse(&recon, &x);
        assert!(err > 1e-2, "shuffled view leaked the input, mse={err}");
    }

    #[test]
    fn short_fragment_yields_none() {
        let (spec, params, x, layout) = setup();
        let g = gradient(&spec, &params, &x, 2);
        let view = breach_view(&g, AttackView::Partition { factor: 0.2 }, 1, &[0u8; 16]);
        // 20% of ~400 params cannot cover W1 (280) + b1 (14).
        assert!(view.visible.len() < layout.bias_offset() + layout.rows);
        assert!(reconstruct_first_layer(&view, &layout).is_none());
    }

    #[test]
    fn every_row_reconstructs_identically() {
        // Sanity on the math: all rows with non-negligible delta agree.
        let (spec, params, x, layout) = setup();
        let g = gradient(&spec, &params, &x, 2);
        let bias = &g[layout.bias_offset()..layout.bias_offset() + layout.rows];
        for (i, &d) in bias.iter().enumerate() {
            if d.abs() < 1e-4 {
                continue;
            }
            let row = &g[i * layout.in_dim..(i + 1) * layout.in_dim];
            let recon: Vec<f32> = row.iter().map(|&w| w / d).collect();
            assert!(mse(&recon, &x) < 1e-6, "row {i} disagrees");
        }
    }
}
