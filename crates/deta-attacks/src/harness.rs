//! The breach-view harness: what an attacker actually obtains from a
//! compromised DeTA aggregator, and shared attack-tape construction.
//!
//! The paper's security analysis (Section 6) assumes the worst case: the
//! attacker has breached the CC protection and holds everything the
//! aggregator holds. Under DeTA that is a *fragment* of each model update
//! — parameters from random positions, squeezed into a dense vector in
//! position order, and (with shuffling on) permuted by the round's keyed
//! permutation. The attacker does not hold the model mapper or the
//! permutation key (both stay in participant-controlled domains), so its
//! best strategy is to align the fragment against the leading coordinates
//! of its dummy gradient — exactly the relaxed-but-strong attacker the
//! paper evaluates (it may even query the unperturbed model as a black
//! box; only the *target* gradients are transformed).

use crate::graphnet::{loss_and_param_grad, ConvSpec, MlpSpec};
use deta_autograd::{Tape, Var};
use deta_core::mapper::ModelMapper;
use deta_core::shuffle::RoundPermutation;
use deta_crypto::DetRng;

/// Which defense layers stand between the gradient and the attacker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttackView {
    /// No DeTA: the attacker sees the full, in-order update.
    Full,
    /// Partitioning only; the breached aggregator holds `factor` of the
    /// parameters (the paper's 1.0 / 0.6 / 0.2 columns).
    Partition {
        /// Fraction of parameters on the breached aggregator.
        factor: f32,
    },
    /// Partitioning plus the keyed per-round shuffle.
    PartitionShuffle {
        /// Fraction of parameters on the breached aggregator.
        factor: f32,
    },
}

impl AttackView {
    /// Short label used in report tables.
    pub fn label(&self) -> String {
        match self {
            AttackView::Full => "full".to_string(),
            AttackView::Partition { factor } => format!("part-{factor:.1}"),
            AttackView::PartitionShuffle { factor } => format!("part-{factor:.1}+shuf"),
        }
    }
}

/// The attacker's obtained view of one model update.
#[derive(Clone, Debug)]
pub struct BreachedView {
    /// The dense fragment the breached aggregator held.
    pub visible: Vec<f32>,
    /// Length of the original (hidden) update.
    pub full_len: usize,
    /// The view configuration that produced this.
    pub view: AttackView,
    /// Oracle knowledge: the true model positions of `visible`'s slots
    /// (pre-shuffle order). `None` for the standard attacker; `Some` for
    /// the strengthened adversary of the oracle ablation, e.g. an insider
    /// who learned the model mapper.
    pub known_positions: Option<Vec<u32>>,
}

/// Applies DeTA's transformations to a gradient and returns what a breach
/// of the first aggregator reveals.
///
/// `seed` derives the model mapper (fixed per session); `training_id`
/// drives the per-round permutation.
///
/// # Panics
///
/// Panics if a partition factor is outside `(0, 1]`.
pub fn breach_view(
    gradient: &[f32],
    view: AttackView,
    seed: u64,
    training_id: &[u8; 16],
) -> BreachedView {
    let full_len = gradient.len();
    let perm_key = DetRng::from_u64(seed)
        .fork(b"perm-key")
        .derive_bytes(b"k", 32);
    let perm_key: [u8; 32] = perm_key.try_into().unwrap();
    let fragment = |factor: f32| -> Vec<f32> {
        assert!(factor > 0.0 && factor <= 1.0, "bad partition factor");
        if factor >= 0.999 {
            gradient.to_vec()
        } else {
            let mapper = ModelMapper::generate(
                full_len,
                2,
                Some(&[factor, 1.0 - factor]),
                &mut DetRng::from_u64(seed).fork(b"mapper"),
            );
            mapper.partition(gradient).swap_remove(0)
        }
    };
    let visible = match view {
        AttackView::Full => gradient.to_vec(),
        AttackView::Partition { factor } => fragment(factor),
        AttackView::PartitionShuffle { factor } => {
            let frag = fragment(factor);
            RoundPermutation::derive(&perm_key, training_id, 0, frag.len()).apply(&frag)
        }
    };
    BreachedView {
        visible,
        full_len,
        view,
        known_positions: None,
    }
}

/// The **oracle-attacker** ablation: like [`breach_view`], but the
/// adversary additionally knows the model mapper (e.g. a compromised
/// participant leaked it), so it can place each fragment slot at its true
/// model position — *unless* shuffling hid the order.
///
/// This goes beyond the paper's threat model and demonstrates
/// defense-in-depth: partitioning alone falls to this adversary, the
/// keyed shuffle does not.
pub fn oracle_breach_view(
    gradient: &[f32],
    factor: f32,
    shuffled: bool,
    seed: u64,
    training_id: &[u8; 16],
) -> BreachedView {
    assert!(factor > 0.0 && factor <= 1.0, "bad partition factor");
    let full_len = gradient.len();
    let (fragment, positions): (Vec<f32>, Vec<u32>) = if factor >= 0.999 {
        (gradient.to_vec(), (0..full_len as u32).collect())
    } else {
        let mapper = ModelMapper::generate(
            full_len,
            2,
            Some(&[factor, 1.0 - factor]),
            &mut DetRng::from_u64(seed).fork(b"mapper"),
        );
        let frag = mapper.partition(gradient).swap_remove(0);
        (frag, mapper.fragment_positions(0).to_vec())
    };
    let visible = if shuffled {
        let perm_key: [u8; 32] = DetRng::from_u64(seed)
            .fork(b"perm-key")
            .derive_bytes(b"k", 32)
            .try_into()
            .unwrap();
        // The oracle knows pre-shuffle positions but NOT the permutation
        // key, so its position map no longer matches the data it holds.
        RoundPermutation::derive(&perm_key, training_id, 0, fragment.len()).apply(&fragment)
    } else {
        fragment
    };
    BreachedView {
        visible,
        full_len,
        view: if shuffled {
            AttackView::PartitionShuffle { factor }
        } else {
            AttackView::Partition { factor }
        },
        known_positions: Some(positions),
    }
}

/// A differentiable single-example classifier usable on the attack tape.
pub trait GraphModel {
    /// Input dimension.
    fn input_dim(&self) -> usize;
    /// Number of classes.
    fn classes(&self) -> usize;
    /// Flat parameter count.
    fn param_count(&self) -> usize;
    /// Emits logits for one example.
    fn forward(&self, tape: &mut Tape, x: &[Var], params: &[Var]) -> Vec<Var>;
}

impl GraphModel for MlpSpec {
    fn input_dim(&self) -> usize {
        MlpSpec::input_dim(self)
    }
    fn classes(&self) -> usize {
        MlpSpec::classes(self)
    }
    fn param_count(&self) -> usize {
        MlpSpec::param_count(self)
    }
    fn forward(&self, tape: &mut Tape, x: &[Var], params: &[Var]) -> Vec<Var> {
        MlpSpec::forward(self, tape, x, params)
    }
}

impl GraphModel for ConvSpec {
    fn input_dim(&self) -> usize {
        ConvSpec::input_dim(self)
    }
    fn classes(&self) -> usize {
        self.classes
    }
    fn param_count(&self) -> usize {
        ConvSpec::param_count(self)
    }
    fn forward(&self, tape: &mut Tape, x: &[Var], params: &[Var]) -> Vec<Var> {
        ConvSpec::forward(self, tape, x, params)
    }
}

/// The pre-built attack tape: dummy input, soft label, parameters, and
/// the visible-prefix gradient nodes.
pub struct AttackTape {
    /// The tape (attacks append their objective to it).
    pub tape: Tape,
    /// Dummy-input variables.
    pub x: Vec<Var>,
    /// Soft-label logit variables.
    pub label_logits: Vec<Var>,
    /// Model parameter variables.
    pub params: Vec<Var>,
    /// Target-gradient variables (length = visible fragment length).
    pub gstar: Vec<Var>,
    /// Gradient nodes `dL/dparams[i]` for `i < gstar.len()` — the
    /// attacker's assumed alignment of the fragment.
    pub grads: Vec<Var>,
    /// The training loss node.
    pub loss: Var,
}

impl AttackTape {
    /// Builds the tape for matching a visible fragment of length `k`
    /// under the attacker's leading-coordinate alignment.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the model's parameter count.
    pub fn build(model: &dyn GraphModel, k: usize) -> AttackTape {
        assert!(k > 0 && k <= model.param_count(), "bad fragment length");
        let positions: Vec<u32> = (0..k as u32).collect();
        Self::build_with_positions(model, &positions)
    }

    /// Builds the tape for matching a fragment whose slots correspond to
    /// the given model positions (the oracle attacker's alignment).
    ///
    /// # Panics
    ///
    /// Panics if positions are empty or out of range.
    pub fn build_with_positions(model: &dyn GraphModel, positions: &[u32]) -> AttackTape {
        assert!(!positions.is_empty(), "no positions to match");
        let p = model.param_count();
        assert!(
            positions.iter().all(|&i| (i as usize) < p),
            "position out of range"
        );
        let mut tape = Tape::new();
        let x = tape.inputs(model.input_dim());
        let label_logits = tape.inputs(model.classes());
        let params = tape.inputs(p);
        let gstar = tape.inputs(positions.len());
        let logits = model.forward(&mut tape, &x, &params);
        let selected: Vec<Var> = positions.iter().map(|&i| params[i as usize]).collect();
        let (loss, grads) = loss_and_param_grad(&mut tape, logits, &label_logits, &selected);
        AttackTape {
            tape,
            x,
            label_logits,
            params,
            gstar,
            grads,
            loss,
        }
    }

    /// Assembles the flat input vector for evaluation.
    pub fn pack_inputs(
        &self,
        x: &[f64],
        label_logits: &[f64],
        params: &[f32],
        gstar: &[f32],
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(
            self.x.len() + self.label_logits.len() + self.params.len() + self.gstar.len(),
        );
        assert_eq!(x.len(), self.x.len());
        assert_eq!(label_logits.len(), self.label_logits.len());
        assert_eq!(params.len(), self.params.len());
        assert_eq!(gstar.len(), self.gstar.len());
        out.extend_from_slice(x);
        out.extend_from_slice(label_logits);
        out.extend(params.iter().map(|&v| v as f64));
        out.extend(gstar.iter().map(|&v| v as f64));
        out
    }

    /// One-hot label logits with a large margin (pins the soft label).
    pub fn hard_label_logits(&self, label: usize) -> Vec<f64> {
        (0..self.label_logits.len())
            .map(|c| if c == label { 30.0 } else { -30.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad() -> Vec<f32> {
        (0..100).map(|i| (i as f32 * 0.1).sin()).collect()
    }

    #[test]
    fn full_view_is_identity() {
        let g = grad();
        let v = breach_view(&g, AttackView::Full, 1, &[0u8; 16]);
        assert_eq!(v.visible, g);
        assert_eq!(v.full_len, 100);
    }

    #[test]
    fn partition_view_has_expected_size() {
        let g = grad();
        let v = breach_view(&g, AttackView::Partition { factor: 0.6 }, 1, &[0u8; 16]);
        assert_eq!(v.visible.len(), 60);
        let v2 = breach_view(&g, AttackView::Partition { factor: 0.2 }, 1, &[0u8; 16]);
        assert_eq!(v2.visible.len(), 20);
    }

    #[test]
    fn partition_full_factor_keeps_everything() {
        let g = grad();
        let v = breach_view(&g, AttackView::Partition { factor: 1.0 }, 1, &[0u8; 16]);
        assert_eq!(v.visible, g);
    }

    #[test]
    fn shuffle_permutes_but_preserves_multiset() {
        let g = grad();
        let p = breach_view(&g, AttackView::Partition { factor: 0.6 }, 1, &[7u8; 16]);
        let s = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 0.6 },
            1,
            &[7u8; 16],
        );
        assert_ne!(p.visible, s.visible);
        let mut a = p.visible.clone();
        let mut b = s.visible.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_changes_per_round() {
        let g = grad();
        let r1 = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 1.0 },
            1,
            &[1u8; 16],
        );
        let r2 = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 1.0 },
            1,
            &[2u8; 16],
        );
        assert_ne!(r1.visible, r2.visible);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grad();
        let a = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 0.6 },
            5,
            &[1u8; 16],
        );
        let b = breach_view(
            &g,
            AttackView::PartitionShuffle { factor: 0.6 },
            5,
            &[1u8; 16],
        );
        assert_eq!(a.visible, b.visible);
    }

    #[test]
    fn attack_tape_layout() {
        let spec = MlpSpec::new(&[4, 5, 3]);
        let at = AttackTape::build(&spec, 10);
        assert_eq!(at.x.len(), 4);
        assert_eq!(at.label_logits.len(), 3);
        assert_eq!(at.params.len(), spec.param_count());
        assert_eq!(at.gstar.len(), 10);
        assert_eq!(at.grads.len(), 10);
        let inputs = at.pack_inputs(
            &[0.0; 4],
            &at.hard_label_logits(1),
            &vec![0.1; spec.param_count()],
            &vec![0.0; 10],
        );
        assert_eq!(inputs.len(), at.tape.input_count());
    }

    #[test]
    fn labels_pin_correctly() {
        let spec = MlpSpec::new(&[4, 5, 3]);
        let at = AttackTape::build(&spec, 5);
        let l = at.hard_label_logits(2);
        assert_eq!(l.len(), 3);
        assert!(l[2] > l[0] && l[2] > l[1]);
    }
}
