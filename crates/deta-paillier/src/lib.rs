//! Textbook Paillier additively homomorphic encryption.
//!
//! DeTA's evaluation (Figure 5c/5f in the paper) includes a Paillier-based
//! fusion algorithm, where parties upload *encrypted* model updates and the
//! aggregator sums them homomorphically without seeing plaintexts. This
//! crate provides:
//!
//! * [`KeyPair`] / [`PublicKey`] / [`PrivateKey`] — Paillier key material.
//! * [`PublicKey::encrypt`] / [`PrivateKey::decrypt`] — core operations.
//! * [`Ciphertext::add`] / [`Ciphertext::mul_scalar`] — homomorphisms.
//! * [`VectorCodec`] — fixed-point packing of `f32` slices into plaintext
//!   slots so one ciphertext carries many parameters, the standard batching
//!   trick real deployments use to amortize the heavyweight modular
//!   exponentiation.
//!
//! Key sizes here are simulation-grade (hundreds of bits). The paper's
//! observation that Paillier aggregation is ~100x slower than plain
//! averaging is reproduced by the benchmark harness regardless of the
//! exact key size.

use deta_bignum::{gen_prime, prime::random_below, BigUint};
use deta_crypto::DetRng;

/// A Paillier public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// The modulus `n = p * q`.
    pub n: BigUint,
    /// Cached `n^2`.
    pub n2: BigUint,
}

/// A Paillier private key.
#[derive(Clone)]
pub struct PrivateKey {
    /// Carmichael function `lambda = lcm(p - 1, q - 1)`.
    lambda: BigUint,
    /// Precomputed `mu = L(g^lambda mod n^2)^{-1} mod n`.
    mu: BigUint,
    /// The public part.
    pub public: PublicKey,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Secret components are intentionally not printed.
        f.debug_struct("PrivateKey")
            .field("public", &self.public)
            .finish()
    }
}

impl Drop for PrivateKey {
    fn drop(&mut self) {
        // Best-effort secret erasure when key material leaves scope.
        self.lambda.zeroize();
        self.mu.zeroize();
    }
}

/// A Paillier key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    /// The public key, distributed to all parties and aggregators.
    pub public: PublicKey,
    /// The private key, held only by the parties.
    pub private: PrivateKey,
}

/// A Paillier ciphertext (an element of `Z_{n^2}*`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(pub BigUint);

impl KeyPair {
    /// Generates a key pair with an `n` of approximately `n_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits < 16`.
    pub fn generate(n_bits: usize, rng: &mut DetRng) -> KeyPair {
        assert!(n_bits >= 16, "modulus too small");
        let half = n_bits / 2;
        let (p, q) = loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = &p * &q;
        let n2 = &n * &n;
        let one = BigUint::one();
        let lambda = (&p - &one).lcm(&(&q - &one));
        let public = PublicKey { n: n.clone(), n2 };
        // mu = L(g^lambda mod n^2)^{-1} mod n, with g = n + 1.
        let g_lambda = public.g_pow(&lambda);
        let l = public.l_function(&g_lambda);
        let mu = l
            .modinv(&n)
            .expect("L(g^lambda) must be invertible for valid primes");
        KeyPair {
            private: PrivateKey {
                lambda,
                mu,
                public: public.clone(),
            },
            public,
        }
    }
}

impl PublicKey {
    /// Computes `(1 + n)^m mod n^2 = 1 + n*m mod n^2` (the g = n+1 shortcut).
    fn g_pow(&self, m: &BigUint) -> BigUint {
        let nm = (&self.n * &(m % &self.n)).rem_ref(&self.n2);
        (&nm + &BigUint::one()).rem_ref(&self.n2)
    }

    /// The Paillier `L` function: `L(x) = (x - 1) / n`.
    fn l_function(&self, x: &BigUint) -> BigUint {
        &(x - &BigUint::one()) / &self.n
    }

    /// Encrypts a plaintext `m` (must satisfy `m < n`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn encrypt(&self, m: &BigUint, rng: &mut DetRng) -> Ciphertext {
        assert!(m < &self.n, "plaintext out of range");
        let r = loop {
            let r = random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                break r;
            }
        };
        let rn = r.modpow(&self.n, &self.n2);
        Ciphertext(self.g_pow(m).mul_mod(&rn, &self.n2))
    }

    /// Returns the additive identity ciphertext Enc(0) with fixed
    /// randomness 1 (useful as a fold seed; not semantically hiding).
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }
}

impl PrivateKey {
    /// Decrypts a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not in `Z_{n^2}`.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        assert!(c.0 < self.public.n2, "ciphertext out of range");
        let x = c.0.modpow(&self.lambda, &self.public.n2);
        let l = self.public.l_function(&x);
        l.mul_mod(&self.mu, &self.public.n)
    }
}

impl Ciphertext {
    /// Homomorphic addition: `Dec(a.add(b)) = Dec(a) + Dec(b) mod n`.
    pub fn add(&self, other: &Ciphertext, pk: &PublicKey) -> Ciphertext {
        Ciphertext(self.0.mul_mod(&other.0, &pk.n2))
    }

    /// Homomorphic scalar multiplication: `Dec(c.mul_scalar(k)) = k * Dec(c) mod n`.
    pub fn mul_scalar(&self, k: &BigUint, pk: &PublicKey) -> Ciphertext {
        Ciphertext(self.0.modpow(k, &pk.n2))
    }
}

/// Fixed-point packing of `f32` values into Paillier plaintexts.
///
/// Each value is clamped to `[-clip, clip]`, shifted to be non-negative,
/// and quantized to `value_bits` bits. Slots are separated by
/// `headroom_bits` guard bits so that up to `2^headroom_bits` ciphertexts
/// can be summed homomorphically without inter-slot carry propagation.
#[derive(Clone, Debug)]
pub struct VectorCodec {
    /// Symmetric clamp bound for encoded values.
    pub clip: f64,
    /// Bits of precision per value.
    pub value_bits: u32,
    /// Guard bits per slot (bounds how many ciphertexts may be summed).
    pub headroom_bits: u32,
    /// Number of slots packed into one plaintext.
    pub slots: usize,
}

impl VectorCodec {
    /// Creates a codec sized for the given public key.
    ///
    /// `max_summands` bounds how many ciphertexts will be homomorphically
    /// accumulated before decryption.
    ///
    /// # Panics
    ///
    /// Panics if even a single slot does not fit in the plaintext space.
    pub fn for_key(pk: &PublicKey, clip: f64, value_bits: u32, max_summands: usize) -> VectorCodec {
        let headroom_bits = usize::BITS - max_summands.leading_zeros();
        let slot_bits = (value_bits + headroom_bits) as usize;
        // Leave 2 spare bits below the modulus bit length for safety.
        let usable = pk.n.bit_len().saturating_sub(2);
        let slots = usable / slot_bits;
        assert!(slots >= 1, "plaintext space too small for one slot");
        VectorCodec {
            clip,
            value_bits,
            headroom_bits,
            slots,
        }
    }

    fn slot_bits(&self) -> usize {
        (self.value_bits + self.headroom_bits) as usize
    }

    fn scale(&self) -> f64 {
        // Quantized values occupy [0, 2^value_bits): v in [-clip, clip]
        // maps to (v + clip) * scale.
        (((1u64 << self.value_bits) - 1) as f64) / (2.0 * self.clip)
    }

    /// Number of plaintexts needed for `len` values.
    pub fn plaintexts_for(&self, len: usize) -> usize {
        len.div_ceil(self.slots)
    }

    /// Packs a slice of `f32` into plaintext integers.
    pub fn encode(&self, values: &[f32]) -> Vec<BigUint> {
        let scale = self.scale();
        let slot_bits = self.slot_bits();
        values
            .chunks(self.slots)
            .map(|chunk| {
                let mut m = BigUint::zero();
                // Pack the highest slot first so slot 0 ends in the low bits.
                for &v in chunk.iter().rev() {
                    let clamped = (v as f64).clamp(-self.clip, self.clip);
                    let q = ((clamped + self.clip) * scale).round() as u64;
                    m = &m.shl_bits(slot_bits) + &BigUint::from_u64(q);
                }
                m
            })
            .collect()
    }

    /// Unpacks plaintexts produced by summing `summands` encoded vectors,
    /// returning the *sums* of the original values.
    ///
    /// `len` is the original vector length (the final plaintext may be
    /// partially filled).
    ///
    /// # Panics
    ///
    /// Panics if `plaintexts` does not contain at least `len` slots.
    pub fn decode_sum(&self, plaintexts: &[BigUint], len: usize, summands: usize) -> Vec<f32> {
        let scale = self.scale();
        let slot_bits = self.slot_bits();
        let modulus = BigUint::one().shl_bits(slot_bits);
        let mut out = Vec::with_capacity(len);
        'outer: for pt in plaintexts {
            let mut rest = pt.clone();
            for _ in 0..self.slots {
                if out.len() == len {
                    break 'outer;
                }
                let (q, slot) = rest.div_rem(&modulus);
                rest = q;
                let raw = slot.to_u64().expect("slot exceeds 64 bits") as f64;
                // Each summand contributed a +clip offset.
                let v = raw / scale - self.clip * summands as f64;
                out.push(v as f32);
            }
        }
        assert_eq!(out.len(), len, "not enough plaintexts for {len} values");
        out
    }

    /// Convenience: encrypts a whole `f32` vector.
    pub fn encrypt_vector(
        &self,
        pk: &PublicKey,
        values: &[f32],
        rng: &mut DetRng,
    ) -> Vec<Ciphertext> {
        self.encode(values)
            .iter()
            .map(|m| pk.encrypt(m, rng))
            .collect()
    }

    /// Convenience: decrypts a summed ciphertext vector back to value sums.
    pub fn decrypt_sum(
        &self,
        sk: &PrivateKey,
        cts: &[Ciphertext],
        len: usize,
        summands: usize,
    ) -> Vec<f32> {
        let pts: Vec<BigUint> = cts.iter().map(|c| sk.decrypt(c)).collect();
        self.decode_sum(&pts, len, summands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> KeyPair {
        let mut rng = DetRng::from_u64(42);
        KeyPair::generate(256, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(1);
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let m = BigUint::from_u64(m);
            let c = kp.public.encrypt(&m, &mut rng);
            assert_eq!(kp.private.decrypt(&c), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(2);
        let m = BigUint::from_u64(7);
        let c1 = kp.public.encrypt(&m, &mut rng);
        let c2 = kp.public.encrypt(&m, &mut rng);
        assert_ne!(c1, c2);
        assert_eq!(kp.private.decrypt(&c1), kp.private.decrypt(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(3);
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(8766);
        let ca = kp.public.encrypt(&a, &mut rng);
        let cb = kp.public.encrypt(&b, &mut rng);
        let sum = ca.add(&cb, &kp.public);
        assert_eq!(kp.private.decrypt(&sum), BigUint::from_u64(10_000));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_n() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(4);
        let big = &kp.public.n - &BigUint::one();
        let c1 = kp.public.encrypt(&big, &mut rng);
        let c2 = kp.public.encrypt(&BigUint::from_u64(2), &mut rng);
        let sum = c1.add(&c2, &kp.public);
        assert_eq!(kp.private.decrypt(&sum), BigUint::one());
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(5);
        let m = BigUint::from_u64(111);
        let c = kp.public.encrypt(&m, &mut rng);
        let scaled = c.mul_scalar(&BigUint::from_u64(9), &kp.public);
        assert_eq!(kp.private.decrypt(&scaled), BigUint::from_u64(999));
    }

    #[test]
    fn zero_ciphertext_is_identity() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(6);
        let m = BigUint::from_u64(55);
        let c = kp.public.encrypt(&m, &mut rng);
        let sum = c.add(&kp.public.zero_ciphertext(), &kp.public);
        assert_eq!(kp.private.decrypt(&sum), m);
    }

    #[test]
    #[should_panic]
    fn oversized_plaintext_panics() {
        let kp = keypair();
        let mut rng = DetRng::from_u64(7);
        let too_big = kp.public.n.clone();
        kp.public.encrypt(&too_big, &mut rng);
    }

    #[test]
    fn codec_roundtrip_single_summand() {
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 1.0, 16, 8);
        let values = vec![0.5f32, -0.25, 0.0, 0.99, -0.99, 0.125, -0.333];
        let pts = codec.encode(&values);
        let decoded = codec.decode_sum(&pts, values.len(), 1);
        for (v, d) in values.iter().zip(decoded.iter()) {
            assert!((v - d).abs() < 1e-3, "{v} vs {d}");
        }
    }

    #[test]
    fn codec_clamps_out_of_range() {
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 1.0, 16, 8);
        let pts = codec.encode(&[5.0f32, -5.0]);
        let decoded = codec.decode_sum(&pts, 2, 1);
        assert!((decoded[0] - 1.0).abs() < 1e-3);
        assert!((decoded[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn codec_packs_multiple_slots() {
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 1.0, 16, 8);
        assert!(
            codec.slots > 1,
            "expected multiple slots, got {}",
            codec.slots
        );
        let n = codec.slots * 2 + 1;
        let values: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32) - 0.5).collect();
        assert_eq!(codec.plaintexts_for(n), 3);
        let decoded = codec.decode_sum(&codec.encode(&values), n, 1);
        for (v, d) in values.iter().zip(decoded.iter()) {
            assert!((v - d).abs() < 1e-3);
        }
    }

    #[test]
    fn encrypted_vector_sum_matches_plain_sum() {
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 1.0, 12, 4);
        let mut rng = DetRng::from_u64(8);
        let parties: Vec<Vec<f32>> = (0..4)
            .map(|p| {
                (0..10)
                    .map(|i| ((p * 10 + i) as f32 / 40.0) - 0.5)
                    .collect()
            })
            .collect();
        // Each party encrypts; the aggregator sums ciphertexts.
        let mut acc: Option<Vec<Ciphertext>> = None;
        for pv in &parties {
            let cts = codec.encrypt_vector(&kp.public, pv, &mut rng);
            acc = Some(match acc {
                None => cts,
                Some(prev) => prev
                    .iter()
                    .zip(cts.iter())
                    .map(|(a, b)| a.add(b, &kp.public))
                    .collect(),
            });
        }
        let sums = codec.decrypt_sum(&kp.private, &acc.unwrap(), 10, 4);
        for i in 0..10 {
            let expected: f32 = parties.iter().map(|p| p[i]).sum();
            assert!(
                (sums[i] - expected).abs() < 5e-3,
                "slot {i}: {} vs {expected}",
                sums[i]
            );
        }
    }

    #[test]
    fn distinct_keys_for_distinct_seeds() {
        let mut r1 = DetRng::from_u64(1);
        let mut r2 = DetRng::from_u64(2);
        let k1 = KeyPair::generate(128, &mut r1);
        let k2 = KeyPair::generate(128, &mut r2);
        assert_ne!(k1.public.n, k2.public.n);
    }
}
