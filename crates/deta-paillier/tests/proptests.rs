//! Property tests for the Paillier homomorphisms.
//!
//! Key generation is expensive, so one simulation-grade key pair is
//! shared across all cases via a lazy static.

use deta_bignum::BigUint;
use deta_crypto::DetRng;
use deta_paillier::{KeyPair, VectorCodec};
use deta_proptest::cases;
use std::sync::OnceLock;

fn keypair() -> &'static KeyPair {
    static KP: OnceLock<KeyPair> = OnceLock::new();
    KP.get_or_init(|| KeyPair::generate(128, &mut DetRng::from_u64(1234)))
}

#[test]
fn roundtrip() {
    cases("paillier_roundtrip", 32, |g| {
        let kp = keypair();
        let m = BigUint::from_u64(g.u32() as u64);
        let c = kp.public.encrypt(&m, &mut DetRng::from_u64(g.u64()));
        assert_eq!(kp.private.decrypt(&c), m);
    });
}

#[test]
fn additive_homomorphism() {
    cases("additive_homomorphism", 32, |g| {
        let kp = keypair();
        let (a, b) = (g.u32(), g.u32());
        let mut rng = DetRng::from_u64(g.u64());
        let ca = kp.public.encrypt(&BigUint::from_u64(a as u64), &mut rng);
        let cb = kp.public.encrypt(&BigUint::from_u64(b as u64), &mut rng);
        let sum = ca.add(&cb, &kp.public);
        let want =
            (&BigUint::from_u64(a as u64) + &BigUint::from_u64(b as u64)).rem_ref(&kp.public.n);
        assert_eq!(kp.private.decrypt(&sum), want);
    });
}

#[test]
fn scalar_homomorphism() {
    cases("scalar_homomorphism", 32, |g| {
        let kp = keypair();
        let m = g.u16();
        let k = g.u64_in(1, 500) as u16;
        let mut rng = DetRng::from_u64(g.u64());
        let c = kp.public.encrypt(&BigUint::from_u64(m as u64), &mut rng);
        let scaled = c.mul_scalar(&BigUint::from_u64(k as u64), &kp.public);
        let want = BigUint::from_u64(m as u64 * k as u64).rem_ref(&kp.public.n);
        assert_eq!(kp.private.decrypt(&scaled), want);
    });
}

#[test]
fn ciphertexts_never_repeat() {
    cases("ciphertexts_never_repeat", 32, |g| {
        let s1 = g.u64();
        let mut s2 = g.u64();
        if s1 == s2 {
            s2 = s2.wrapping_add(1);
        }
        let kp = keypair();
        let m = BigUint::from_u64(g.u16() as u64);
        let c1 = kp.public.encrypt(&m, &mut DetRng::from_u64(s1));
        let c2 = kp.public.encrypt(&m, &mut DetRng::from_u64(s2));
        assert_ne!(c1, c2);
    });
}

#[test]
fn codec_roundtrip() {
    cases("codec_roundtrip", 32, |g| {
        let values = g.vec_of(1, 40, |g| g.f32_in(-3.9, 3.9));
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 4.0, 16, 4);
        let decoded = codec.decode_sum(&codec.encode(&values), values.len(), 1);
        for (v, d) in values.iter().zip(decoded.iter()) {
            assert!((v - d).abs() < 1e-3, "{v} vs {d}");
        }
    });
}

#[test]
fn codec_sum_linear() {
    cases("codec_sum_linear", 32, |g| {
        // Summing two encoded vectors decodes to the element-wise sum.
        let a = g.vec_of(1, 20, |g| g.f32_in(-1.9, 1.9));
        let offset = g.f32_in(-1.9, 1.9);
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 4.0, 16, 4);
        let b: Vec<f32> = a.iter().map(|v| (v + offset).clamp(-3.9, 3.9)).collect();
        let ea = codec.encode(&a);
        let eb = codec.encode(&b);
        let sums: Vec<_> = ea.iter().zip(eb.iter()).map(|(x, y)| x + y).collect();
        let decoded = codec.decode_sum(&sums, a.len(), 2);
        for ((x, y), d) in a.iter().zip(b.iter()).zip(decoded.iter()) {
            assert!((x + y - d).abs() < 2e-3, "{} vs {d}", x + y);
        }
    });
}
