//! Property tests for the Paillier homomorphisms.
//!
//! Key generation is expensive, so one simulation-grade key pair is
//! shared across all cases via a lazy static.

use deta_bignum::BigUint;
use deta_crypto::DetRng;
use deta_paillier::{KeyPair, VectorCodec};
use proptest::prelude::*;
use std::sync::OnceLock;

fn keypair() -> &'static KeyPair {
    static KP: OnceLock<KeyPair> = OnceLock::new();
    KP.get_or_init(|| KeyPair::generate(128, &mut DetRng::from_u64(1234)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip(m in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let m = BigUint::from_u64(m as u64);
        let c = kp.public.encrypt(&m, &mut DetRng::from_u64(seed));
        prop_assert_eq!(kp.private.decrypt(&c), m);
    }

    #[test]
    fn additive_homomorphism(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = DetRng::from_u64(seed);
        let ca = kp.public.encrypt(&BigUint::from_u64(a as u64), &mut rng);
        let cb = kp.public.encrypt(&BigUint::from_u64(b as u64), &mut rng);
        let sum = ca.add(&cb, &kp.public);
        let want = (&BigUint::from_u64(a as u64) + &BigUint::from_u64(b as u64))
            .rem_ref(&kp.public.n);
        prop_assert_eq!(kp.private.decrypt(&sum), want);
    }

    #[test]
    fn scalar_homomorphism(m in any::<u16>(), k in 1u16..500, seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = DetRng::from_u64(seed);
        let c = kp.public.encrypt(&BigUint::from_u64(m as u64), &mut rng);
        let scaled = c.mul_scalar(&BigUint::from_u64(k as u64), &kp.public);
        let want = BigUint::from_u64(m as u64 * k as u64).rem_ref(&kp.public.n);
        prop_assert_eq!(kp.private.decrypt(&scaled), want);
    }

    #[test]
    fn ciphertexts_never_repeat(m in any::<u16>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let kp = keypair();
        let m = BigUint::from_u64(m as u64);
        let c1 = kp.public.encrypt(&m, &mut DetRng::from_u64(s1));
        let c2 = kp.public.encrypt(&m, &mut DetRng::from_u64(s2));
        prop_assert_ne!(c1, c2);
    }

    #[test]
    fn codec_roundtrip(values in proptest::collection::vec(-3.9f32..3.9, 1..40)) {
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 4.0, 16, 4);
        let decoded = codec.decode_sum(&codec.encode(&values), values.len(), 1);
        for (v, d) in values.iter().zip(decoded.iter()) {
            prop_assert!((v - d).abs() < 1e-3, "{v} vs {d}");
        }
    }

    #[test]
    fn codec_sum_linear(
        a in proptest::collection::vec(-1.9f32..1.9, 1..20),
        offset in -1.9f32..1.9,
    ) {
        // Summing two encoded vectors decodes to the element-wise sum.
        let kp = keypair();
        let codec = VectorCodec::for_key(&kp.public, 4.0, 16, 4);
        let b: Vec<f32> = a.iter().map(|v| (v + offset).clamp(-3.9, 3.9)).collect();
        let ea = codec.encode(&a);
        let eb = codec.encode(&b);
        let sums: Vec<_> = ea.iter().zip(eb.iter()).map(|(x, y)| x + y).collect();
        let decoded = codec.decode_sum(&sums, a.len(), 2);
        for ((x, y), d) in a.iter().zip(b.iter()).zip(decoded.iter()) {
            prop_assert!((x + y - d).abs() < 2e-3, "{} vs {d}", x + y);
        }
    }
}
