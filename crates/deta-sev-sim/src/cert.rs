//! Minimal X.509-like certificates for the simulated SEV chain of trust.
//!
//! Real SEV platforms carry an ARK → ASK → CEK → PEK/PDH chain; this
//! module models the same structure with the Schnorr keys from
//! `deta-crypto`. A [`Certificate`] binds a subject name to a public key
//! (either a signing key or raw key material such as a DH value), signed
//! by an issuer.

use deta_crypto::{Signature, SigningKey, VerifyingKey};

/// A signed binding of a subject name to public key material.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Subject name (e.g. a chip id, "AMD-ARK").
    pub subject: String,
    /// Subject public key bytes. For signature keys this is a serialized
    /// [`VerifyingKey`]; for transport keys it may be a raw DH value.
    pub subject_key: Vec<u8>,
    /// Issuer name.
    pub issuer: String,
    /// Issuer signature over `(subject, subject_key, issuer)`.
    pub signature: Signature,
}

impl Certificate {
    fn signed_bytes(subject: &str, subject_key: &[u8], issuer: &str) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"deta-cert-v1");
        out.extend_from_slice(&(subject.len() as u32).to_le_bytes());
        out.extend_from_slice(subject.as_bytes());
        out.extend_from_slice(&(subject_key.len() as u32).to_le_bytes());
        out.extend_from_slice(subject_key);
        out.extend_from_slice(issuer.as_bytes());
        out
    }

    /// Issues a certificate for a signature key.
    pub fn issue(
        subject: &str,
        subject_key: &VerifyingKey,
        issuer: &str,
        issuer_key: &SigningKey,
    ) -> Certificate {
        Self::issue_raw(subject, &subject_key.to_bytes(), issuer, issuer_key)
    }

    /// Issues a certificate over raw key bytes (e.g. a DH public value).
    pub fn issue_raw(
        subject: &str,
        subject_key: &[u8],
        issuer: &str,
        issuer_key: &SigningKey,
    ) -> Certificate {
        let body = Self::signed_bytes(subject, subject_key, issuer);
        Certificate {
            subject: subject.to_string(),
            subject_key: subject_key.to_vec(),
            issuer: issuer.to_string(),
            signature: issuer_key.sign(&body),
        }
    }

    /// Issues a self-signed root certificate.
    pub fn self_signed(subject: &str, key: &SigningKey) -> Certificate {
        Certificate::issue(subject, &key.verifying_key(), subject, key)
    }

    /// Verifies the signature with the given issuer key and, on success,
    /// parses the subject key as a [`VerifyingKey`].
    ///
    /// Returns `None` on signature failure or if the subject key is not a
    /// valid signature key.
    pub fn verify_with(&self, issuer_key: &VerifyingKey) -> Option<VerifyingKey> {
        let body = Self::signed_bytes(&self.subject, &self.subject_key, &self.issuer);
        if !issuer_key.verify(&body, &self.signature) {
            return None;
        }
        VerifyingKey::from_bytes(&self.subject_key)
    }

    /// Verifies the raw subject key bytes against the issuer signature
    /// without interpreting them (for transport-key certificates).
    pub fn verify_raw_with(&self, issuer_key: &VerifyingKey) -> Option<&[u8]> {
        let body = Self::signed_bytes(&self.subject, &self.subject_key, &self.issuer);
        if issuer_key.verify(&body, &self.signature) {
            Some(&self.subject_key)
        } else {
            None
        }
    }

    /// Verifies a self-signed certificate, returning the embedded key.
    pub fn self_verify(&self) -> Option<VerifyingKey> {
        let key = VerifyingKey::from_bytes(&self.subject_key)?;
        self.verify_with(&key)
    }
}

/// An ordered certificate chain, leaf last.
#[derive(Clone, Debug)]
pub struct CertChain(pub Vec<Certificate>);

impl CertChain {
    /// Verifies the whole chain starting from a trusted root key,
    /// returning the leaf's verified key.
    ///
    /// Returns `None` if any link fails.
    pub fn verify(&self, root: &VerifyingKey) -> Option<VerifyingKey> {
        let mut current = root.clone();
        for cert in &self.0 {
            current = cert.verify_with(&current)?;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deta_crypto::DetRng;

    fn key(seed: u64) -> SigningKey {
        SigningKey::generate(&mut DetRng::from_u64(seed))
    }

    #[test]
    fn issue_and_verify() {
        let root = key(1);
        let leaf = key(2);
        let cert = Certificate::issue("leaf", &leaf.verifying_key(), "root", &root);
        let recovered = cert.verify_with(&root.verifying_key()).unwrap();
        assert_eq!(recovered, leaf.verifying_key());
    }

    #[test]
    fn wrong_issuer_key_fails() {
        let root = key(1);
        let other = key(3);
        let leaf = key(2);
        let cert = Certificate::issue("leaf", &leaf.verifying_key(), "root", &root);
        assert!(cert.verify_with(&other.verifying_key()).is_none());
    }

    #[test]
    fn tampered_subject_fails() {
        let root = key(1);
        let leaf = key(2);
        let mut cert = Certificate::issue("leaf", &leaf.verifying_key(), "root", &root);
        cert.subject = "evil".to_string();
        assert!(cert.verify_with(&root.verifying_key()).is_none());
    }

    #[test]
    fn tampered_key_fails() {
        let root = key(1);
        let leaf = key(2);
        let other = key(4);
        let mut cert = Certificate::issue("leaf", &leaf.verifying_key(), "root", &root);
        cert.subject_key = other.verifying_key().to_bytes();
        assert!(cert.verify_with(&root.verifying_key()).is_none());
    }

    #[test]
    fn self_signed_roundtrip() {
        let root = key(5);
        let cert = Certificate::self_signed("root", &root);
        assert_eq!(cert.self_verify().unwrap(), root.verifying_key());
        // A certificate signed by someone else fails self-verification.
        let other = key(6);
        let fake = Certificate::issue("root", &root.verifying_key(), "root", &other);
        assert!(fake.self_verify().is_none());
    }

    #[test]
    fn raw_certificates() {
        let root = key(7);
        let cert = Certificate::issue_raw("pdh", b"raw-dh-bytes", "chip", &root);
        assert_eq!(
            cert.verify_raw_with(&root.verifying_key()),
            Some(&b"raw-dh-bytes"[..])
        );
        // Raw bytes that are not a group element cannot be parsed as a
        // verifying key.
        assert!(cert.verify_with(&root.verifying_key()).is_none());
    }

    #[test]
    fn chain_verification() {
        let root = key(10);
        let mid = key(11);
        let leaf = key(12);
        let chain = CertChain(vec![
            Certificate::issue("mid", &mid.verifying_key(), "root", &root),
            Certificate::issue("leaf", &leaf.verifying_key(), "mid", &mid),
        ]);
        assert_eq!(
            chain.verify(&root.verifying_key()).unwrap(),
            leaf.verifying_key()
        );
        // Break the middle link.
        let bad_chain = CertChain(vec![
            Certificate::issue("mid", &mid.verifying_key(), "root", &leaf),
            Certificate::issue("leaf", &leaf.verifying_key(), "mid", &mid),
        ]);
        assert!(bad_chain.verify(&root.verifying_key()).is_none());
    }
}
