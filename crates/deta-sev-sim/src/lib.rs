//! A software model of an AMD SEV confidential-computing platform.
//!
//! The paper shields every DeTA aggregator inside an SEV confidential VM
//! (CVM) and verifies it through AMD's remote attestation service before
//! provisioning an authentication token (Phase I of the two-phase
//! protocol). This crate reproduces that machinery in software so the
//! protocol logic — what is measured, what is signed, what the attestation
//! proxy verifies, and what secret injection implies — runs unchanged,
//! while the hardware root of trust is simulated:
//!
//! * [`AmdRas`] — the vendor root: an ARK/ASK certificate hierarchy that
//!   endorses genuine chips, standing in for AMD's remote attestation
//!   service (`https://kdsintf.amd.com` in real deployments).
//! * [`Platform`] — one SEV-capable machine with a chip endorsement key
//!   (CEK) and a platform Diffie-Hellman key (PDH) for secret transport.
//! * [`GuestImage`] / launch flow — `launch_start` → [`Platform::launch_measure`]
//!   → [`LaunchContext::inject_secret`] → `launch_finish`, mirroring the
//!   SEV `LAUNCH_*` command sequence (including the QEMU
//!   `sev-inject-launch-secret` patch the paper applies).
//! * [`Cvm`] — a running confidential VM whose memory is modelled as
//!   encrypted under a per-VM VEK: the host sees ciphertext, the guest
//!   sees plaintext.
//! * [`Cvm::breach`] — **breach injection**: deterministically simulates a
//!   CC vulnerability (the paper's worst-case scenario) by handing an
//!   attacker the decrypted memory image. Real hardware cannot do this on
//!   demand, which is precisely why a simulator is the right substrate for
//!   evaluating DeTA's defense-in-depth claims.

//!
//! # Examples
//!
//! ```
//! use deta_crypto::DetRng;
//! use deta_sev_sim::{AmdRas, GuestImage, Platform};
//!
//! let mut rng = DetRng::from_u64(1);
//! let ras = AmdRas::new(&mut rng.fork(b"ras"));
//! let mut platform = Platform::genuine(&ras, "chip-0", &mut rng.fork(b"p"));
//! let image = GuestImage::new(b"firmware".to_vec(), b"workload".to_vec());
//! let (ctx, report) = platform.launch_measure(&image);
//! report.verify(&ras.root_certs(), &image).expect("genuine launch attests");
//! let cvm = ctx.finish();
//! assert_eq!(cvm.guest().read(), b"workload");
//! ```

pub mod cert;

pub use cert::{CertChain, Certificate};

use deta_crypto::dh::{EphemeralSecret, PublicKey as DhPublicKey};
use deta_crypto::sha256::sha256_concat;
use deta_crypto::{open, seal, AeadKey, DetRng, Nonce, Signature, SigningKey, VerifyingKey};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks the CVM state, recovering the data from a poisoned lock (guest
/// state stays consistent across every critical section, so a panic on
/// another thread never leaves it half-updated).
fn lock(m: &Mutex<CvmState>) -> MutexGuard<'_, CvmState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The SEV API version this simulator models (the paper uses 0.22).
pub const SEV_API_VERSION: (u8, u8) = (0, 22);

/// Errors surfaced by attestation and launch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SevError {
    /// The certificate chain does not verify up to the trusted root.
    BadCertChain(&'static str),
    /// The attestation report signature is invalid.
    BadReportSignature,
    /// The launch measurement does not match the expected guest image.
    MeasurementMismatch {
        /// Measurement the verifier expected.
        expected: [u8; 32],
        /// Measurement the platform reported.
        reported: [u8; 32],
    },
    /// A sealed secret failed to decrypt during injection.
    SecretUnsealFailed,
    /// The platform reports an unsupported API version.
    UnsupportedApiVersion,
    /// The launch policy does not satisfy the verifier's requirements.
    PolicyViolation(&'static str),
}

impl std::fmt::Display for SevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SevError::BadCertChain(why) => write!(f, "certificate chain invalid: {why}"),
            SevError::BadReportSignature => write!(f, "attestation report signature invalid"),
            SevError::MeasurementMismatch { .. } => write!(f, "launch measurement mismatch"),
            SevError::SecretUnsealFailed => write!(f, "launch secret failed to unseal"),
            SevError::UnsupportedApiVersion => write!(f, "unsupported SEV API version"),
            SevError::PolicyViolation(why) => write!(f, "launch policy violation: {why}"),
        }
    }
}

/// The SEV guest launch policy, set at `LAUNCH_START` and covered by the
/// attestation report. Mirrors the real policy bits that matter for
/// DeTA: debugging must be disallowed (a debug-enabled CVM lets the
/// hypervisor read guest memory, voiding every confidentiality claim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuestPolicy {
    /// Debug access is disallowed (the SEV `NODBG` bit).
    pub no_debug: bool,
    /// Guest migration to another platform is disallowed (`NOSEND`).
    pub no_send: bool,
}

impl Default for GuestPolicy {
    fn default() -> Self {
        GuestPolicy {
            no_debug: true,
            no_send: true,
        }
    }
}

impl GuestPolicy {
    /// Serializes the policy bits for measurement/signing.
    pub fn to_bytes(&self) -> [u8; 2] {
        [u8::from(self.no_debug), u8::from(self.no_send)]
    }

    /// Checks this (reported) policy against a verifier requirement:
    /// every protection the verifier requires must be enabled.
    pub fn satisfies(&self, required: &GuestPolicy) -> Result<(), SevError> {
        if required.no_debug && !self.no_debug {
            return Err(SevError::PolicyViolation("debug access must be disabled"));
        }
        if required.no_send && !self.no_send {
            return Err(SevError::PolicyViolation("migration must be disabled"));
        }
        Ok(())
    }
}

impl std::error::Error for SevError {}

/// The vendor root of trust (stand-in for AMD's key distribution service).
pub struct AmdRas {
    ark: SigningKey,
    ask: SigningKey,
    ark_cert: Certificate,
    ask_cert: Certificate,
}

/// The public root certificates an attestation proxy downloads from the
/// vendor to verify platforms.
#[derive(Clone)]
pub struct RootCerts {
    /// Self-signed AMD Root Key certificate.
    pub ark_cert: Certificate,
    /// AMD SEV Signing Key certificate, signed by the ARK.
    pub ask_cert: Certificate,
}

impl AmdRas {
    /// Creates a fresh vendor root.
    pub fn new(rng: &mut DetRng) -> AmdRas {
        let ark = SigningKey::generate(&mut rng.fork(b"amd-ark"));
        let ask = SigningKey::generate(&mut rng.fork(b"amd-ask"));
        let ark_cert = Certificate::self_signed("AMD-ARK", &ark);
        let ask_cert = Certificate::issue("AMD-ASK", &ask.verifying_key(), "AMD-ARK", &ark);
        AmdRas {
            ark,
            ask,
            ark_cert,
            ask_cert,
        }
    }

    /// Returns the public root certificates.
    pub fn root_certs(&self) -> RootCerts {
        RootCerts {
            ark_cert: self.ark_cert.clone(),
            ask_cert: self.ask_cert.clone(),
        }
    }

    /// Endorses a chip: issues a CEK certificate signed by the ASK.
    ///
    /// Called at "manufacturing time" for genuine platforms.
    pub fn endorse_chip(&self, chip_id: &str, cek: &VerifyingKey) -> Certificate {
        Certificate::issue(chip_id, cek, "AMD-ASK", &self.ask)
    }

    /// Returns the ARK verifying key (pinned root of trust).
    pub fn ark_key(&self) -> VerifyingKey {
        self.ark.verifying_key()
    }
}

/// A guest image: the firmware (OVMF stand-in) plus the workload payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestImage {
    /// UEFI firmware bytes (what SEV measures at launch).
    pub firmware: Vec<u8>,
    /// Workload identifier/payload baked into the image.
    pub workload: Vec<u8>,
}

impl GuestImage {
    /// Creates an image.
    pub fn new(firmware: impl Into<Vec<u8>>, workload: impl Into<Vec<u8>>) -> GuestImage {
        GuestImage {
            firmware: firmware.into(),
            workload: workload.into(),
        }
    }

    /// Computes the launch measurement: a digest over the API version,
    /// firmware, and workload.
    ///
    /// Both the platform (at launch) and the verifier (from the reference
    /// image) compute this; equality is the launch-integrity check.
    pub fn measurement(&self) -> [u8; 32] {
        sha256_concat(&[
            b"sev-launch-measurement",
            &[SEV_API_VERSION.0, SEV_API_VERSION.1],
            &(self.firmware.len() as u64).to_le_bytes(),
            &self.firmware,
            &self.workload,
        ])
    }
}

/// A signed attestation report for a paused CVM launch.
#[derive(Clone, Debug)]
pub struct AttestationReport {
    /// Chip identifier.
    pub chip_id: String,
    /// SEV API version on the platform.
    pub api_version: (u8, u8),
    /// The guest launch policy in force.
    pub policy: GuestPolicy,
    /// Launch measurement of the guest image.
    pub measurement: [u8; 32],
    /// Certificate chain: CEK certificate (signed by ASK).
    pub cek_cert: Certificate,
    /// Platform Diffie-Hellman public key for secret transport, with its
    /// certificate signed by the CEK.
    pub pdh_cert: Certificate,
    /// PDH public value.
    pub pdh_pub: DhPublicKey,
    /// Fresh launch nonce (anti-replay).
    pub nonce: [u8; 16],
    /// CEK signature over the report body.
    pub signature: Signature,
}

/// Serializes the signed portion of an attestation report.
fn report_signed_bytes(
    chip_id: &str,
    api_version: (u8, u8),
    policy: &GuestPolicy,
    measurement: &[u8; 32],
    pdh_pub: &DhPublicKey,
    nonce: &[u8; 16],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"sev-attestation-report");
    out.extend_from_slice(chip_id.as_bytes());
    out.push(api_version.0);
    out.push(api_version.1);
    out.extend_from_slice(&policy.to_bytes());
    out.extend_from_slice(measurement);
    out.extend_from_slice(&pdh_pub.to_bytes());
    out.extend_from_slice(nonce);
    out
}

impl AttestationReport {
    /// Serializes the signed portion of the report.
    fn signed_bytes(&self) -> Vec<u8> {
        report_signed_bytes(
            &self.chip_id,
            self.api_version,
            &self.policy,
            &self.measurement,
            &self.pdh_pub,
            &self.nonce,
        )
    }

    /// Verifies the report against pinned vendor roots and an expected
    /// guest measurement, requiring the default (fully locked-down)
    /// launch policy.
    ///
    /// Checks, in order: API version support, the launch policy, the
    /// ASK→CEK→PDH certificate chain rooted in the ARK, the CEK signature
    /// over the report, and the launch measurement.
    pub fn verify(&self, roots: &RootCerts, expected: &GuestImage) -> Result<(), SevError> {
        self.verify_with_policy(roots, expected, &GuestPolicy::default())
    }

    /// [`AttestationReport::verify`] with an explicit policy requirement.
    pub fn verify_with_policy(
        &self,
        roots: &RootCerts,
        expected: &GuestImage,
        required: &GuestPolicy,
    ) -> Result<(), SevError> {
        if self.api_version != SEV_API_VERSION {
            return Err(SevError::UnsupportedApiVersion);
        }
        self.policy.satisfies(required)?;
        // ARK must be self-consistent and the ASK must chain to it.
        let ark_key = roots
            .ark_cert
            .self_verify()
            .ok_or(SevError::BadCertChain("ARK certificate invalid"))?;
        let ask_key = roots
            .ask_cert
            .verify_with(&ark_key)
            .ok_or(SevError::BadCertChain("ASK not signed by ARK"))?;
        let cek_key = self
            .cek_cert
            .verify_with(&ask_key)
            .ok_or(SevError::BadCertChain("CEK not signed by ASK"))?;
        let _pdh_key = self
            .pdh_cert
            .verify_with(&cek_key)
            .ok_or(SevError::BadCertChain("PDH not signed by CEK"))?;
        if !cek_key.verify(&self.signed_bytes(), &self.signature) {
            return Err(SevError::BadReportSignature);
        }
        let want = expected.measurement();
        // Constant-time digest comparison: verification timing must not
        // reveal how close a forged measurement came to the reference.
        if !deta_crypto::ct_eq(&want, &self.measurement) {
            return Err(SevError::MeasurementMismatch {
                expected: want,
                reported: self.measurement,
            });
        }
        Ok(())
    }
}

/// One SEV-capable machine.
pub struct Platform {
    /// Chip identifier.
    pub chip_id: String,
    cek: SigningKey,
    cek_cert: Certificate,
    pdh_secret_seed: DetRng,
    api_version: (u8, u8),
    policy: GuestPolicy,
    launch_counter: u64,
}

impl Platform {
    /// Creates a genuine platform endorsed by the vendor root.
    pub fn genuine(ras: &AmdRas, chip_id: &str, rng: &mut DetRng) -> Platform {
        let cek = SigningKey::generate(&mut rng.fork(b"platform-cek"));
        let cek_cert = ras.endorse_chip(chip_id, &cek.verifying_key());
        Platform {
            chip_id: chip_id.to_string(),
            cek,
            cek_cert,
            pdh_secret_seed: rng.fork(b"platform-pdh"),
            api_version: SEV_API_VERSION,
            policy: GuestPolicy::default(),
            launch_counter: 0,
        }
    }

    /// Creates a counterfeit platform whose chain is *not* rooted in the
    /// vendor: it self-issues a look-alike CEK certificate. Attestation
    /// against genuine roots must fail for such a platform.
    pub fn counterfeit(chip_id: &str, rng: &mut DetRng) -> Platform {
        let fake_ask = SigningKey::generate(&mut rng.fork(b"fake-ask"));
        let cek = SigningKey::generate(&mut rng.fork(b"platform-cek"));
        let cek_cert = Certificate::issue(chip_id, &cek.verifying_key(), "AMD-ASK", &fake_ask);
        Platform {
            chip_id: chip_id.to_string(),
            cek,
            cek_cert,
            pdh_secret_seed: rng.fork(b"platform-pdh"),
            api_version: SEV_API_VERSION,
            policy: GuestPolicy::default(),
            launch_counter: 0,
        }
    }

    /// Begins a paused CVM launch over `image`, returning the launch
    /// context and the attestation report for the verifier.
    ///
    /// Mirrors `LAUNCH_START` + `LAUNCH_UPDATE_DATA` + `LAUNCH_MEASURE`:
    /// the VM is not running yet; secrets may be injected before
    /// [`LaunchContext::finish`].
    pub fn launch_measure(&mut self, image: &GuestImage) -> (LaunchContext, AttestationReport) {
        self.launch_counter += 1;
        let mut launch_rng = self
            .pdh_secret_seed
            .fork_indexed(b"launch", self.launch_counter);
        // Per-launch PDH key pair for secret transport.
        let pdh = EphemeralSecret::generate(&mut launch_rng.fork(b"pdh"));
        let pdh_pub = pdh.public_key();
        let pdh_cert = Certificate::issue_raw("PDH", &pdh_pub.to_bytes(), &self.chip_id, &self.cek);
        let mut nonce = [0u8; 16];
        launch_rng.fill_bytes(&mut nonce);
        // Per-VM memory encryption key (the VEK, owned by the "SP").
        let mut vek = [0u8; 32];
        launch_rng.fill_bytes(&mut vek);
        let measurement = image.measurement();
        let body = report_signed_bytes(
            &self.chip_id,
            self.api_version,
            &self.policy,
            &measurement,
            &pdh_pub,
            &nonce,
        );
        let signature = self.cek.sign(&body);
        let report = AttestationReport {
            chip_id: self.chip_id.clone(),
            api_version: self.api_version,
            policy: self.policy,
            measurement,
            cek_cert: self.cek_cert.clone(),
            pdh_cert,
            pdh_pub,
            nonce,
            signature,
        };
        let ctx = LaunchContext {
            image: image.clone(),
            vek: AeadKey(vek),
            pdh: Some(pdh),
            secrets: HashMap::new(),
            asid: self.launch_counter as u32,
        };
        (ctx, report)
    }

    /// Overrides the reported API version (test hook for downgrade
    /// scenarios).
    pub fn set_api_version(&mut self, version: (u8, u8)) {
        self.api_version = version;
    }

    /// Overrides the launch policy (e.g. to model an operator enabling
    /// debug access; the attestation proxy must reject such launches).
    pub fn set_policy(&mut self, policy: GuestPolicy) {
        self.policy = policy;
    }
}

/// A secret sealed to a platform's PDH key for launch injection.
#[derive(Clone)]
pub struct SealedSecret {
    /// Label under which the guest will find the secret.
    pub label: String,
    /// Verifier's ephemeral DH public value.
    pub sender_pub: DhPublicKey,
    /// AEAD-sealed secret bytes.
    pub sealed: Vec<u8>,
}

impl std::fmt::Debug for SealedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Ciphertext bytes stay out of logs: even sealed material should
        // not be copy-pasteable from debug output.
        f.debug_struct("SealedSecret")
            .field("label", &self.label)
            .field("sealed", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl SealedSecret {
    /// Seals `secret` to the platform identified by `report`, binding the
    /// transport key to the report nonce.
    ///
    /// This is what the attestation proxy does after verifying a report
    /// (the paper's "launch blob with a packaged secret").
    ///
    /// # Errors
    ///
    /// Fails if the report's PDH public key is not a valid group element
    /// (a malformed or malicious report).
    pub fn seal_to(
        report: &AttestationReport,
        label: &str,
        secret: &[u8],
        rng: &mut DetRng,
    ) -> Result<SealedSecret, SevError> {
        let eph = EphemeralSecret::generate(rng);
        let sender_pub = eph.public_key();
        let key = eph
            .agree(&report.pdh_pub, &report.nonce)
            .map_err(|_| SevError::BadCertChain("report PDH key invalid"))?;
        let sealed = seal(
            &AeadKey(key),
            &Nonce::from_parts(0x5ec, 0),
            label.as_bytes(),
            secret,
        );
        Ok(SealedSecret {
            label: label.to_string(),
            sender_pub,
            sealed,
        })
    }
}

/// A paused CVM launch accepting secret injection.
pub struct LaunchContext {
    image: GuestImage,
    vek: AeadKey,
    pdh: Option<EphemeralSecret>,
    secrets: HashMap<String, Vec<u8>>,
    asid: u32,
}

impl LaunchContext {
    /// Injects a sealed secret into the pending CVM's encrypted memory
    /// (the `LAUNCH_SECRET` command).
    ///
    /// # Errors
    ///
    /// Returns [`SevError::SecretUnsealFailed`] if the blob does not
    /// decrypt (wrong platform, tampered blob, or replayed nonce).
    pub fn inject_secret(
        &mut self,
        blob: &SealedSecret,
        report_nonce: &[u8; 16],
    ) -> Result<(), SevError> {
        let pdh = self.pdh.take().ok_or(SevError::SecretUnsealFailed)?;
        // The platform-side PDH secret is consumed by the agreement; a
        // second injection requires a fresh launch (matching SEV, where
        // LAUNCH_SECRET is a launch-time one-shot per blob).
        let key = pdh
            .agree(&blob.sender_pub, report_nonce)
            .map_err(|_| SevError::SecretUnsealFailed)?;
        let secret = open(
            &AeadKey(key),
            &Nonce::from_parts(0x5ec, 0),
            blob.label.as_bytes(),
            &blob.sealed,
        )
        .map_err(|_| SevError::SecretUnsealFailed)?;
        self.secrets.insert(blob.label.clone(), secret);
        Ok(())
    }

    /// Resumes the launch, producing a running CVM (`LAUNCH_FINISH`).
    pub fn finish(self) -> Cvm {
        Cvm {
            asid: self.asid,
            vek: self.vek,
            inner: Arc::new(Mutex::new(CvmState {
                memory: self.image.workload.clone(),
                secrets: self.secrets,
            })),
        }
    }
}

/// Plaintext state of a CVM, protected by the VEK in the memory model.
struct CvmState {
    memory: Vec<u8>,
    secrets: HashMap<String, Vec<u8>>,
}

/// A running confidential VM.
///
/// The guest view ([`Cvm::guest`]) reads and writes plaintext, because the
/// on-die AES engine transparently decrypts for the guest. The host view
/// ([`Cvm::host_memory_image`]) only ever sees ciphertext. [`Cvm::breach`]
/// simulates a CC compromise that bypasses the VEK.
#[derive(Clone)]
pub struct Cvm {
    /// Address space identifier.
    pub asid: u32,
    vek: AeadKey,
    inner: Arc<Mutex<CvmState>>,
}

/// Plaintext view from inside the guest.
pub struct GuestView<'a> {
    cvm: &'a Cvm,
}

/// The result of breaching a CVM: the attacker's plaintext view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreachDump {
    /// Decrypted guest memory.
    pub memory: Vec<u8>,
    /// All injected secrets, by label.
    pub secrets: Vec<(String, Vec<u8>)>,
}

impl Cvm {
    /// Returns the guest's plaintext view.
    pub fn guest(&self) -> GuestView<'_> {
        GuestView { cvm: self }
    }

    /// Returns the hypervisor's view of guest memory: ciphertext under the
    /// VEK. Two snapshots of identical memory differ only if memory
    /// changed (deterministic nonce per snapshot length/asid).
    pub fn host_memory_image(&self) -> Vec<u8> {
        let state = lock(&self.inner);
        seal(
            &self.vek,
            &Nonce::from_parts(self.asid, 0),
            b"sev-memory",
            &state.memory,
        )
    }

    /// **Breach injection**: simulates a successful attack on the CC
    /// execution environment (e.g. the SEV vulnerabilities cited in the
    /// paper), yielding the attacker's plaintext view of everything the
    /// CVM holds.
    ///
    /// DeTA's security evaluation (paper Section 6) assumes exactly this
    /// worst case for *all* aggregators and shows the attacker still
    /// cannot reconstruct training data.
    pub fn breach(&self) -> BreachDump {
        let state = lock(&self.inner);
        let mut secrets: Vec<(String, Vec<u8>)> = state
            .secrets
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        secrets.sort();
        BreachDump {
            memory: state.memory.clone(),
            secrets,
        }
    }
}

impl GuestView<'_> {
    /// Reads a secret injected at launch.
    pub fn secret(&self, label: &str) -> Option<Vec<u8>> {
        lock(&self.cvm.inner).secrets.get(label).cloned()
    }

    /// Reads guest memory.
    pub fn read(&self) -> Vec<u8> {
        lock(&self.cvm.inner).memory.clone()
    }

    /// Replaces guest memory contents.
    pub fn write(&self, data: &[u8]) {
        lock(&self.cvm.inner).memory = data.to_vec();
    }

    /// Appends to guest memory.
    pub fn append(&self, data: &[u8]) {
        lock(&self.cvm.inner).memory.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AmdRas, Platform, GuestImage, DetRng) {
        let rng = DetRng::from_u64(1);
        let ras = AmdRas::new(&mut rng.fork(b"ras"));
        let platform = Platform::genuine(&ras, "EPYC-7642-001", &mut rng.fork(b"plat"));
        let image = GuestImage::new(b"ovmf-firmware-v1".to_vec(), b"aggregator-v1".to_vec());
        (ras, platform, image, rng)
    }

    #[test]
    fn genuine_platform_attests() {
        let (ras, mut platform, image, _) = setup();
        let (_ctx, report) = platform.launch_measure(&image);
        assert!(report.verify(&ras.root_certs(), &image).is_ok());
    }

    #[test]
    fn counterfeit_platform_rejected() {
        let (ras, _, image, mut rng) = setup();
        let mut fake = Platform::counterfeit("EPYC-FAKE", &mut rng);
        let (_ctx, report) = fake.launch_measure(&image);
        assert!(matches!(
            report.verify(&ras.root_certs(), &image),
            Err(SevError::BadCertChain(_))
        ));
    }

    #[test]
    fn tampered_firmware_rejected() {
        let (ras, mut platform, image, _) = setup();
        // The platform launches a *modified* image (e.g. with collusion
        // code); verification against the reference image must fail.
        let tampered = GuestImage::new(b"ovmf-firmware-v1".to_vec(), b"aggregator-evil".to_vec());
        let (_ctx, report) = platform.launch_measure(&tampered);
        assert!(matches!(
            report.verify(&ras.root_certs(), &image),
            Err(SevError::MeasurementMismatch { .. })
        ));
    }

    #[test]
    fn tampered_report_signature_rejected() {
        let (ras, mut platform, image, _) = setup();
        let (_ctx, mut report) = platform.launch_measure(&image);
        report.measurement[0] ^= 1;
        let err = report.verify(&ras.root_certs(), &image).unwrap_err();
        assert!(matches!(err, SevError::BadReportSignature), "got {err:?}");
    }

    #[test]
    fn wrong_vendor_roots_rejected() {
        let (_, mut platform, image, rng) = setup();
        let other_ras = AmdRas::new(&mut rng.fork(b"other"));
        let (_ctx, report) = platform.launch_measure(&image);
        assert!(report.verify(&other_ras.root_certs(), &image).is_err());
    }

    #[test]
    fn debug_enabled_policy_rejected() {
        // An operator relaunching the aggregator with debug access (the
        // hypervisor can then read guest memory) must fail attestation.
        let (ras, mut platform, image, _) = setup();
        platform.set_policy(GuestPolicy {
            no_debug: false,
            no_send: true,
        });
        let (_ctx, report) = platform.launch_measure(&image);
        assert!(matches!(
            report.verify(&ras.root_certs(), &image),
            Err(SevError::PolicyViolation(_))
        ));
    }

    #[test]
    fn policy_is_covered_by_the_signature() {
        // Flipping the policy bits after signing must break verification
        // even if the relaxed policy itself would have been acceptable.
        let (ras, mut platform, image, _) = setup();
        let (_ctx, mut report) = platform.launch_measure(&image);
        report.policy = GuestPolicy {
            no_debug: true,
            no_send: false,
        };
        let relaxed = GuestPolicy {
            no_debug: true,
            no_send: false,
        };
        assert!(matches!(
            report.verify_with_policy(&ras.root_certs(), &image, &relaxed),
            Err(SevError::BadReportSignature)
        ));
    }

    #[test]
    fn relaxed_requirement_accepts_relaxed_policy() {
        let (ras, mut platform, image, _) = setup();
        platform.set_policy(GuestPolicy {
            no_debug: true,
            no_send: false,
        });
        let (_ctx, report) = platform.launch_measure(&image);
        let required = GuestPolicy {
            no_debug: true,
            no_send: false,
        };
        report
            .verify_with_policy(&ras.root_certs(), &image, &required)
            .unwrap();
        // But the default (strict) requirement still rejects it.
        assert!(report.verify(&ras.root_certs(), &image).is_err());
    }

    #[test]
    fn api_version_downgrade_rejected() {
        let (ras, mut platform, image, _) = setup();
        platform.set_api_version((0, 16));
        let (_ctx, report) = platform.launch_measure(&image);
        assert_eq!(
            report.verify(&ras.root_certs(), &image),
            Err(SevError::UnsupportedApiVersion)
        );
    }

    #[test]
    fn secret_injection_reaches_guest_only() {
        let (ras, mut platform, image, mut rng) = setup();
        let (mut ctx, report) = platform.launch_measure(&image);
        report.verify(&ras.root_certs(), &image).unwrap();
        let blob =
            SealedSecret::seal_to(&report, "auth-token", b"ecdsa-key-bytes", &mut rng).unwrap();
        ctx.inject_secret(&blob, &report.nonce).unwrap();
        let cvm = ctx.finish();
        // Guest sees the secret.
        assert_eq!(
            cvm.guest().secret("auth-token"),
            Some(b"ecdsa-key-bytes".to_vec())
        );
        assert_eq!(cvm.guest().secret("missing"), None);
        // Host memory image is ciphertext: it must not contain the
        // workload plaintext.
        let host = cvm.host_memory_image();
        assert!(!contains(&host, b"aggregator-v1"));
    }

    #[test]
    fn tampered_secret_blob_rejected() {
        let (_, mut platform, image, mut rng) = setup();
        let (mut ctx, report) = platform.launch_measure(&image);
        let mut blob = SealedSecret::seal_to(&report, "auth-token", b"secret", &mut rng).unwrap();
        blob.sealed[0] ^= 1;
        assert_eq!(
            ctx.inject_secret(&blob, &report.nonce),
            Err(SevError::SecretUnsealFailed)
        );
    }

    #[test]
    fn secret_for_other_launch_rejected() {
        // A blob sealed to launch A must not inject into launch B
        // (different PDH and nonce).
        let (_, mut platform, image, mut rng) = setup();
        let (_ctx_a, report_a) = platform.launch_measure(&image);
        let (mut ctx_b, report_b) = platform.launch_measure(&image);
        let blob = SealedSecret::seal_to(&report_a, "auth-token", b"secret", &mut rng).unwrap();
        assert_eq!(
            ctx_b.inject_secret(&blob, &report_b.nonce),
            Err(SevError::SecretUnsealFailed)
        );
    }

    #[test]
    fn guest_memory_roundtrip() {
        let (_, mut platform, image, _) = setup();
        let (ctx, _report) = platform.launch_measure(&image);
        let cvm = ctx.finish();
        assert_eq!(cvm.guest().read(), b"aggregator-v1");
        cvm.guest().write(b"model-update-fragment");
        assert_eq!(cvm.guest().read(), b"model-update-fragment");
        cvm.guest().append(b"-more");
        assert_eq!(cvm.guest().read(), b"model-update-fragment-more");
    }

    #[test]
    fn breach_reveals_plaintext_and_secrets() {
        let (ras, mut platform, image, mut rng) = setup();
        let (mut ctx, report) = platform.launch_measure(&image);
        report.verify(&ras.root_certs(), &image).unwrap();
        let blob = SealedSecret::seal_to(&report, "auth-token", b"token-123", &mut rng).unwrap();
        ctx.inject_secret(&blob, &report.nonce).unwrap();
        let cvm = ctx.finish();
        cvm.guest().write(b"fragmented-shuffled-update");
        let dump = cvm.breach();
        assert_eq!(dump.memory, b"fragmented-shuffled-update");
        assert_eq!(
            dump.secrets,
            vec![("auth-token".to_string(), b"token-123".to_vec())]
        );
    }

    #[test]
    fn distinct_launches_have_distinct_asids() {
        let (_, mut platform, image, _) = setup();
        let (ctx1, _) = platform.launch_measure(&image);
        let (ctx2, _) = platform.launch_measure(&image);
        assert_ne!(ctx1.finish().asid, ctx2.finish().asid);
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }
}
