//! The supervisor: spawns node threads, enforces phase deadlines,
//! retries idempotent requests with capped backoff, reaps panicked
//! threads, and shuts the deployment down cleanly.

use crate::actor::{self, ActorContext, NodeExit};
use crate::rtmsg::{CtlMsg, SUPERVISOR};
use crate::{Phase, RuntimeConfig, RuntimeError};
use deta_core::aggregator::AggregatorNode;
use deta_core::party::Party;
use deta_crypto::VerifyingKey;
use deta_telemetry::{FlightRecorder, TelemetryRecord, TelemetryValue, TraceDump};
use deta_transport::{Endpoint, Network, RecvError};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Supervises a set of node threads over a shared [`Network`].
pub struct Supervisor {
    network: Network,
    ctl: Endpoint,
    cfg: RuntimeConfig,
    stop: Arc<AtomicBool>,
    /// Per-node halt flags (see [`ActorContext::halt`]): lets the
    /// supervisor retire exactly one node during a failover.
    halts: HashMap<String, Arc<AtomicBool>>,
    nodes: HashMap<String, JoinHandle<NodeExit>>,
    /// Nodes hosted outside this process (see [`Supervisor::adopt`]):
    /// no join handle, but shutdown still sends them `Shutdown` and
    /// closes their mailboxes so a transport bridge can propagate the
    /// stop signal.
    remote: HashSet<String>,
    recovered: HashMap<String, NodeExit>,
    last_seen: HashMap<String, Instant>,
    /// Control-plane payload bytes observed (sent by the supervisor plus
    /// received from nodes) — the control-plane share of the network's
    /// aggregate byte counter (round bandwidth itself is attributed from
    /// per-link counters, see [`Network::link_bytes`]).
    pub ctl_bytes: u64,
    /// Every node's flight recorder, plus the supervisor's own (first).
    recorders: Vec<Arc<FlightRecorder>>,
    /// The supervisor's own ring: verdicts, retries, reaps, deadlines.
    own: Arc<FlightRecorder>,
    /// The first flight-recorder dump written for a fault verdict.
    trace_dump_path: Option<PathBuf>,
}

impl Supervisor {
    /// Creates a supervisor with its own control endpoint on `network`.
    pub fn new(network: Network, cfg: RuntimeConfig) -> Supervisor {
        let ctl = network.register(SUPERVISOR);
        let own = FlightRecorder::new(SUPERVISOR, cfg.telemetry.ring_capacity);
        Supervisor {
            network,
            ctl,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            halts: HashMap::new(),
            nodes: HashMap::new(),
            remote: HashSet::new(),
            recovered: HashMap::new(),
            last_seen: HashMap::new(),
            ctl_bytes: 0,
            recorders: vec![Arc::clone(&own)],
            own,
            trace_dump_path: None,
        }
    }

    /// The runtime policy in effect.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Names of the nodes still running (not yet joined).
    pub fn running_nodes(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.keys().cloned().collect();
        names.sort();
        names
    }

    fn context_for(&mut self, name: &str) -> ActorContext {
        let halt = Arc::new(AtomicBool::new(false));
        self.halts.insert(name.to_string(), Arc::clone(&halt));
        ActorContext {
            stop: Arc::clone(&self.stop),
            halt,
            tick: self.cfg.tick,
        }
    }

    fn spawn(
        &mut self,
        name: String,
        f: impl FnOnce() -> NodeExit + Send + 'static,
    ) -> Result<(), RuntimeError> {
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(f)
            .map_err(RuntimeError::Spawn)?;
        self.nodes.insert(name, handle);
        Ok(())
    }

    /// Spawns an aggregator node on its own thread. Any stall configured
    /// for this node name in [`RuntimeConfig::stalls`] is armed here.
    ///
    /// # Errors
    ///
    /// Fails if the OS refuses the thread.
    pub fn spawn_aggregator(&mut self, agg: AggregatorNode) -> Result<(), RuntimeError> {
        let name = agg.name.clone();
        let stall = self
            .cfg
            .stalls
            .iter()
            .find(|s| s.node == name)
            .map(|s| s.round);
        let ctx = self.context_for(&name);
        let recorder = self.recorder_for(&name);
        self.spawn(name, move || {
            actor::run_aggregator(agg, stall, ctx, recorder)
        })
    }

    /// Spawns a party node on its own thread; it runs Phase II against
    /// `tokens` immediately.
    ///
    /// # Errors
    ///
    /// Fails if the OS refuses the thread.
    pub fn spawn_party(
        &mut self,
        party: Party,
        tokens: HashMap<String, VerifyingKey>,
    ) -> Result<(), RuntimeError> {
        let name = party.name.clone();
        let ctx = self.context_for(&name);
        let recorder = self.recorder_for(&name);
        self.spawn(name, move || actor::run_party(party, tokens, ctx, recorder))
    }

    /// Creates and registers the flight recorder a node thread will
    /// attach; the supervisor keeps a handle so it can drain every ring
    /// into a dump when it constructs a fault verdict.
    fn recorder_for(&mut self, name: &str) -> Arc<FlightRecorder> {
        let recorder = FlightRecorder::new(name, self.cfg.telemetry.ring_capacity);
        self.recorders.push(Arc::clone(&recorder));
        recorder
    }

    /// Registers a node that runs outside this process — behind a
    /// transport bridge rather than on a spawned thread. The supervisor
    /// waits on its control messages exactly as for a thread-hosted
    /// node; there is no join handle, so `reap` never blames it for a
    /// silent thread death (a dead remote peer surfaces as a closed
    /// mailbox or a phase timeout instead). Shutdown and `kill_node`
    /// still send `Shutdown` and close the node's mailbox, which the
    /// bridge propagates to the remote process.
    pub fn adopt(&mut self, name: &str) {
        self.remote.insert(name.to_string());
    }

    /// Sends a control message to a node, counting its bytes.
    pub fn send_ctl(&mut self, to: &str, msg: &CtlMsg) {
        if let Ok(frame) = msg.encode() {
            self.ctl_bytes += frame.len() as u64;
            let _ = self.ctl.send(to, frame);
        }
    }

    /// Retires one node during a failover: sets its private halt flag
    /// (which also wakes a deliberately stalled node), closes its mailbox
    /// (which wakes a blocked `recv_timeout`), joins the thread, and
    /// records its final state under [`Supervisor::recovered`]. A
    /// panicked thread is absorbed rather than propagated — failover
    /// exists precisely to outlive it.
    pub fn kill_node(&mut self, name: &str) {
        if let Some(halt) = self.halts.remove(name) {
            halt.store(true, Ordering::Relaxed);
        }
        self.network.close(name);
        self.remote.remove(name);
        if let Some(handle) = self.nodes.remove(name) {
            match handle.join() {
                Ok(exit) => {
                    self.recovered.insert(name.to_string(), exit);
                }
                Err(_) => {
                    self.note("panic_absorbed", &[("node", TelemetryValue::from(name))]);
                }
            }
        }
        self.last_seen.remove(name);
    }

    /// Emits an event on the supervisor's own flight-recorder ring (used
    /// by the session layer for failover milestones, so they appear in
    /// trace dumps). A no-op while telemetry is disabled.
    pub fn note(&self, name: &'static str, fields: &[(&'static str, TelemetryValue)]) {
        if deta_telemetry::enabled() {
            self.own.event(name, fields);
        }
    }

    /// The supervisor's own flight recorder. The session driver attaches
    /// it to the driving thread for the duration of a round so transport
    /// edge events (`net_send`/`net_recv`) emitted by the control
    /// endpoint land in the supervisor's ring.
    pub fn own_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.own)
    }

    /// Waits until every node in `expected` has satisfied its phase
    /// obligation, with a hard deadline.
    ///
    /// `on_msg` sees every decoded control message (except heartbeats and
    /// failures, which the supervisor consumes) and returns `true` when
    /// the sender's obligation for this phase is fulfilled. `retry`, when
    /// set, is re-sent with capped exponential backoff while waiting —
    /// the retried request must be idempotent at the receiver.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Timeout`] when the deadline passes — `missing`
    ///   lists the outstanding nodes and `stalled` the subset that also
    ///   stopped heartbeating.
    /// * [`RuntimeError::NodeFailed`] if a node reports failure or exits
    ///   without fulfilling the phase.
    /// * [`RuntimeError::NodePanicked`] if an outstanding node's thread
    ///   panicked (reaped via its join handle).
    pub fn wait(
        &mut self,
        phase: Phase,
        round: u64,
        deadline: std::time::Duration,
        expected: HashSet<String>,
        retry: Option<(String, CtlMsg)>,
        mut on_msg: impl FnMut(&str, CtlMsg) -> bool,
    ) -> Result<(), RuntimeError> {
        let start = Instant::now();
        let mut expected = expected;
        let mut backoff = self.cfg.retry_initial;
        let mut next_retry = start + backoff;
        while !expected.is_empty() {
            let now = Instant::now();
            let waited = now.duration_since(start);
            if waited >= deadline {
                if let Some(err) = self.reap(&expected) {
                    return Err(self.record_failure(err));
                }
                let mut missing: Vec<String> = expected.iter().cloned().collect();
                missing.sort();
                let stale_after = self.cfg.tick * 4;
                let mut stalled: Vec<String> = missing
                    .iter()
                    .filter(|n| {
                        self.last_seen
                            .get(*n)
                            .is_none_or(|t| now.duration_since(*t) > stale_after)
                    })
                    .cloned()
                    .collect();
                stalled.sort();
                self.own.event(
                    "deadline_expired",
                    &[
                        ("round", TelemetryValue::from(round)),
                        ("missing", TelemetryValue::from(missing.len())),
                        ("stalled", TelemetryValue::from(stalled.len())),
                    ],
                );
                return Err(self.record_failure(RuntimeError::Timeout {
                    phase,
                    round,
                    missing,
                    stalled,
                    waited,
                }));
            }
            if let Some((to, msg)) = &retry {
                if now >= next_retry {
                    let msg = msg.clone();
                    let to = to.clone();
                    self.send_ctl(&to, &msg);
                    if deta_telemetry::enabled() {
                        deta_telemetry::metrics::counter_add(
                            "deta_supervisor_retries_total",
                            &to,
                            1,
                        );
                        self.own.event(
                            "retry",
                            &[
                                ("round", TelemetryValue::from(round)),
                                (
                                    "backoff_ms",
                                    TelemetryValue::from(
                                        backoff.as_millis().min(u128::from(u64::MAX)) as u64,
                                    ),
                                ),
                            ],
                        );
                    }
                    backoff = (backoff * 2).min(self.cfg.retry_max);
                    next_retry = now + backoff;
                }
            }
            match self.ctl.recv_timeout(self.cfg.tick) {
                Ok(m) => {
                    self.ctl_bytes += m.payload.len() as u64;
                    let from = m.from.to_string();
                    let seen = Instant::now();
                    let gap = self.last_seen.get(&from).map(|t| seen.duration_since(*t));
                    self.last_seen.insert(from.clone(), seen);
                    match CtlMsg::decode(&m.payload) {
                        Ok(CtlMsg::Heartbeat { .. }) => {
                            if deta_telemetry::enabled() {
                                if let Some(gap) = gap {
                                    deta_telemetry::metrics::histogram_observe(
                                        "deta_heartbeat_gap_seconds",
                                        &from,
                                        gap.as_secs_f64(),
                                    );
                                }
                            }
                        }
                        Ok(CtlMsg::Failed { reason }) => {
                            return Err(self
                                .record_failure(RuntimeError::NodeFailed { node: from, reason }));
                        }
                        Ok(msg) => {
                            if on_msg(&from, msg) {
                                expected.remove(&from);
                            }
                        }
                        Err(_) => {} // Malformed control traffic is dropped.
                    }
                }
                Err(RecvError::Timeout) => {
                    // An idle tick: check for nodes that died silently.
                    if let Some(err) = self.reap(&expected) {
                        return Err(self.record_failure(err));
                    }
                }
                Err(RecvError::Closed) => {
                    return Err(self.record_failure(RuntimeError::NodeFailed {
                        node: SUPERVISOR.to_string(),
                        reason: "control mailbox closed".to_string(),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Joins any `watched` node whose thread already exited; a panic or a
    /// premature exit is converted into a structured error.
    fn reap(&mut self, watched: &HashSet<String>) -> Option<RuntimeError> {
        let finished: Vec<String> = watched
            .iter()
            .filter(|n| self.nodes.get(*n).is_some_and(|h| h.is_finished()))
            .cloned()
            .collect();
        for name in finished {
            let Some(handle) = self.nodes.remove(&name) else {
                continue;
            };
            if deta_telemetry::enabled() {
                self.own.event(
                    "node_reaped",
                    &[("node", TelemetryValue::from(name.as_str()))],
                );
            }
            match handle.join() {
                Err(_) => return Some(RuntimeError::NodePanicked { node: name }),
                Ok(exit) => {
                    self.recovered.insert(name.clone(), exit);
                    return Some(RuntimeError::NodeFailed {
                        node: name,
                        reason: "exited before completing the phase".to_string(),
                    });
                }
            }
        }
        None
    }

    /// Stops every node and joins all threads: sets the stop flag and
    /// every per-node halt flag, then closes *all* node mailboxes before
    /// joining *any* thread (so a node blocked in `recv_timeout` — e.g.
    /// mid-failover, or one deliberately stalled — wakes immediately
    /// instead of extending shutdown by a full deadline), sends
    /// `Shutdown` as a courtesy to actors mid-drain, then joins.
    /// Idempotent — a second call is a no-op over an empty node set.
    ///
    /// # Errors
    ///
    /// Reports the first panicked thread as [`RuntimeError::NodePanicked`]
    /// (remaining threads are still joined first, so nothing leaks).
    pub fn shutdown(&mut self) -> Result<(), RuntimeError> {
        // Teardown is not part of any round: clear the driver thread's
        // trace context so Shutdown frames (and the recvs they cause on
        // remote nodes) don't inflate the last round's wall time in a
        // merged trace.
        deta_telemetry::trace::begin(0);
        self.stop.store(true, Ordering::Relaxed);
        for halt in self.halts.values() {
            halt.store(true, Ordering::Relaxed);
        }
        self.halts.clear();
        let names: Vec<String> = self
            .nodes
            .keys()
            .cloned()
            .chain(self.remote.drain())
            .collect();
        for name in &names {
            self.send_ctl(name, &CtlMsg::Shutdown);
        }
        for name in &names {
            self.network.close(name);
        }
        let mut panicked: Option<String> = None;
        for (name, handle) in self.nodes.drain() {
            match handle.join() {
                Ok(exit) => {
                    self.recovered.insert(name, exit);
                }
                Err(_) => panicked = Some(name),
            }
        }
        // Drain any control messages still queued for us.
        for m in self.ctl.drain() {
            self.ctl_bytes += m.payload.len() as u64;
        }
        match panicked {
            Some(node) => {
                let err = self.record_failure(RuntimeError::NodePanicked { node });
                Err(err)
            }
            None => Ok(()),
        }
    }

    /// Records a fault verdict on the supervisor's own ring and, for the
    /// *first* verdict only, drains every flight recorder into a JSONL
    /// dump under the configured trace directory (so the dump captures
    /// the timeline leading up to the fault, not post-shutdown noise).
    /// Returns the error unchanged; a no-op while telemetry is disabled.
    pub(crate) fn record_failure(&mut self, err: RuntimeError) -> RuntimeError {
        if deta_telemetry::enabled() {
            self.own.event(
                "fault_verdict",
                &[("kind", TelemetryValue::from(error_kind(&err)))],
            );
            if self.trace_dump_path.is_none() {
                if let Ok(dump) = self.dump("fault", &implicated_nodes(&err)) {
                    self.trace_dump_path = Some(dump.jsonl);
                }
            }
        }
        err
    }

    /// Drains every registered flight recorder and writes a trace dump.
    fn dump(&self, prefix: &str, implicated: &[String]) -> std::io::Result<TraceDump> {
        let nodes: Vec<(String, Vec<TelemetryRecord>, u64)> = self
            .recorders
            .iter()
            .map(|r| {
                let (records, dropped) = r.drain();
                (r.node().to_string(), records, dropped)
            })
            .collect();
        deta_telemetry::trace_dump(
            &self.cfg.telemetry.trace_dir,
            &deta_telemetry::unique_stem(prefix),
            &nodes,
            implicated,
        )
    }

    /// The JSONL dump written for the first fault verdict (or by
    /// [`Supervisor::dump_trace`]), if any.
    pub fn trace_dump_path(&self) -> Option<&Path> {
        self.trace_dump_path.as_deref()
    }

    /// Forces a flight-recorder dump now (no implicated nodes) — used by
    /// trace-capture runs that want a timeline even on success. Returns
    /// the JSONL path, or `None` while telemetry is disabled or when the
    /// write fails.
    pub fn dump_trace(&mut self) -> Option<PathBuf> {
        if !deta_telemetry::enabled() {
            return None;
        }
        let dump = self.dump("trace", &[]).ok()?;
        if self.trace_dump_path.is_none() {
            self.trace_dump_path = Some(dump.jsonl.clone());
        }
        Some(dump.jsonl)
    }

    /// Whether shutdown has completed (no live node threads).
    pub fn is_shut_down(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The final state of a node recovered at shutdown (or after an early
    /// exit was reaped).
    pub fn recovered(&self, name: &str) -> Option<&NodeExit> {
        self.recovered.get(name)
    }
}

/// A short static tag for a [`RuntimeError`] variant (dump metadata).
fn error_kind(err: &RuntimeError) -> &'static str {
    match err {
        RuntimeError::Setup(_) => "setup",
        RuntimeError::Spawn(_) => "spawn",
        RuntimeError::NodeFailed { .. } => "node_failed",
        RuntimeError::NodePanicked { .. } => "node_panicked",
        RuntimeError::Timeout { .. } => "timeout",
        RuntimeError::Protocol(_) => "protocol",
    }
}

/// The node(s) a fault verdict blames, for the dump's `meta` line (and
/// for failover target selection). A timeout blames the stalled subset
/// when there is one (those nodes also stopped heartbeating), otherwise
/// everything still missing.
pub(crate) fn implicated_nodes(err: &RuntimeError) -> Vec<String> {
    match err {
        RuntimeError::NodeFailed { node, .. } | RuntimeError::NodePanicked { node } => {
            vec![node.clone()]
        }
        RuntimeError::Timeout {
            missing, stalled, ..
        } => {
            if stalled.is_empty() {
                missing.clone()
            } else {
                stalled.clone()
            }
        }
        RuntimeError::Setup(_) | RuntimeError::Spawn(_) | RuntimeError::Protocol(_) => Vec::new(),
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        if !self.nodes.is_empty() || !self.remote.is_empty() {
            // Best effort: never leak running threads (and always signal
            // bridged remote nodes to stop).
            let _ = self.shutdown();
        }
    }
}
