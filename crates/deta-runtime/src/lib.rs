//! # deta-runtime — threaded actor deployment of a DeTA session
//!
//! The paper's prototype is a distributed system: parties and k
//! CC-protected aggregators are separate processes exchanging messages.
//! `DetaSession` reproduces the *protocol* but drives every node from one
//! thread, so concurrency, timeouts, and partial failure never happen.
//! This crate deploys the same nodes the way the paper does: each
//! aggregator and each party runs on its own OS thread, owns its
//! [`deta_transport::Endpoint`] mailbox, and is driven entirely by wire
//! messages — round announcements, fragment uploads/downloads, follower
//! sync, completion acks.
//!
//! A supervisor thread (the operator) owns the control plane:
//!
//! * per-phase deadlines enforced with `recv_timeout` — a stalled or
//!   panicked node surfaces as a structured [`RuntimeError`] within the
//!   deadline, never a hang,
//! * liveness via heartbeats (idle actors tick) and join handles
//!   (panicked actors are reaped and reported),
//! * idempotent retries with capped exponential backoff for round
//!   triggers (re-announcing a round is a no-op at every node),
//! * clean shutdown: a stop flag plus mailbox close wakes every actor,
//!   and all threads are joined before [`ThreadedSession`] returns.
//!
//! [`ThreadedSession`] exposes the same surface as
//! `deta_core::DetaSession` (`setup` → `run` → `Vec<RoundMetrics>`) and
//! guarantees bit-identical model parameters for a fixed seed: node
//! construction is shared (`SessionParts::build`), per-party RNGs are
//! independent forks, and aggregation orders uploads by party name, so
//! thread scheduling cannot reach any numeric path.

use std::path::PathBuf;
use std::time::Duration;

pub mod actor;
pub mod rtmsg;
pub mod session;
pub mod supervisor;

pub use rtmsg::{CtlMsg, RebindEntry, SUPERVISOR};
pub use session::{DetachedNodes, MapperEpoch, RoundCheckpoint, ThreadedSession};
pub use supervisor::Supervisor;

/// Telemetry wiring for a threaded deployment (see `deta-telemetry` and
/// DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Turn the process-global telemetry sink on at setup. The switch is
    /// sticky-on for the life of the process; leaving it `false` costs a
    /// branch plus one atomic load per emit site.
    pub enabled: bool,
    /// Per-node flight-recorder capacity, in records. Each node thread
    /// keeps this many recent spans/events for post-mortem dumps.
    pub ring_capacity: usize,
    /// Directory flight-recorder dumps (JSONL + Prometheus text) are
    /// written to whenever the supervisor constructs a `RuntimeError`.
    pub trace_dir: PathBuf,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 256,
            trace_dir: PathBuf::from("results/traces"),
        }
    }
}

/// A deliberately injected stall, for fault-tolerance tests: the named
/// aggregator stops servicing its mailbox the moment it sees the
/// announcement of `round` (it stays joinable — shutdown still works).
#[derive(Clone, Debug)]
pub struct StallFault {
    /// Aggregator endpoint name (e.g. `agg-1`).
    pub node: String,
    /// First round whose announcement triggers the stall.
    pub round: u64,
}

/// What the supervisor does when a round fails with aggregators
/// implicated (see DESIGN.md §12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailoverPolicy {
    /// Today's behaviour: the first terminal failure ends the session
    /// with a structured [`RuntimeError`].
    #[default]
    None,
    /// Respawn each dead aggregator as a freshly attested CVM under a
    /// new endpoint name, rebind every party to it (re-running the
    /// Phase II challenge-response against the proxy's new token), and
    /// replay the failed round from the checkpoint.
    Restart,
    /// Drop the dead aggregators and rebuild the model partition over
    /// the survivors: the failed round is discarded (never merged), a
    /// deterministic replacement `ModelMapper` is generated over the
    /// surviving set, and the round replays under the new epoch.
    Repartition,
}

/// Runtime policy knobs: deadlines, tick rate, retry backoff, fault
/// injection, and failover.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Deadline for Phase II bootstrap (attested channels + registration
    /// across every node).
    pub setup_deadline: Duration,
    /// Deadline for one full training round (trigger to last party sync).
    pub round_deadline: Duration,
    /// Actor mailbox poll tick; idle actors heartbeat at this cadence and
    /// the supervisor polls completion at this granularity.
    pub tick: Duration,
    /// Initial retry backoff for idempotent round triggers.
    pub retry_initial: Duration,
    /// Backoff cap (doubling stops here).
    pub retry_max: Duration,
    /// Injected stalls (empty in production use).
    pub stalls: Vec<StallFault>,
    /// Telemetry: global sink switch, flight-recorder depth, dump
    /// directory.
    pub telemetry: TelemetryConfig,
    /// What to do when a round fails with aggregators implicated.
    pub failover: FailoverPolicy,
    /// Recovery budget: how many failovers each aggregator (counted by
    /// its base name across reincarnations) may consume before the
    /// session degrades to a terminal [`RuntimeError`].
    pub recovery_attempts: u32,
    /// Maintain per-round checkpoints (global model, round counter,
    /// mapper bytes, training id). Required for any failover policy;
    /// cheap enough to default on.
    pub checkpoint: bool,
    /// Graceful degradation to partial participation: when a *party*
    /// (never an aggregator) misses a round deadline — e.g. its
    /// transport link exhausted its reconnect budget — drop it from the
    /// session and continue with the survivors, provided the robust
    /// aggregation rule's quorum floor still holds. Off by default:
    /// dropping a party changes the aggregate, so it must be an
    /// explicit operator decision.
    pub party_drop: bool,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            setup_deadline: Duration::from_secs(10),
            round_deadline: Duration::from_secs(60),
            tick: Duration::from_millis(20),
            retry_initial: Duration::from_millis(100),
            retry_max: Duration::from_secs(1),
            stalls: Vec::new(),
            telemetry: TelemetryConfig::default(),
            failover: FailoverPolicy::default(),
            recovery_attempts: 2,
            checkpoint: true,
            party_drop: false,
        }
    }
}

/// The phase a deadline expired in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase II bootstrap: handshakes, registration, readiness.
    Setup,
    /// A training round.
    Round,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Setup => write!(f, "setup"),
            Phase::Round => write!(f, "round"),
        }
    }
}

/// Structured failures from the threaded deployment. Every supervisor
/// wait is bounded, so a misbehaving node yields one of these instead of
/// a hang.
#[derive(Debug)]
pub enum RuntimeError {
    /// Node construction failed (Phase I attestation, configuration).
    Setup(deta_core::session::SetupError),
    /// The OS refused to spawn a node thread.
    Spawn(std::io::Error),
    /// A node reported an unrecoverable failure.
    NodeFailed {
        /// Node endpoint name.
        node: String,
        /// The node's reason string.
        reason: String,
    },
    /// A node thread panicked (reaped via its join handle).
    NodePanicked {
        /// Node endpoint name.
        node: String,
    },
    /// A phase deadline expired with nodes still outstanding.
    Timeout {
        /// Which phase timed out.
        phase: Phase,
        /// Round number (0 during setup).
        round: u64,
        /// Nodes whose completion signal never arrived.
        missing: Vec<String>,
        /// Of `missing`, the nodes that also stopped heartbeating —
        /// stalled rather than merely slow.
        stalled: Vec<String>,
        /// How long the supervisor waited.
        waited: Duration,
    },
    /// The deployment reached a state the protocol forbids.
    Protocol(&'static str),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Setup(e) => write!(f, "session setup failed: {e}"),
            RuntimeError::Spawn(e) => write!(f, "node thread spawn failed: {e}"),
            RuntimeError::NodeFailed { node, reason } => {
                write!(f, "node {node:?} failed: {reason}")
            }
            RuntimeError::NodePanicked { node } => write!(f, "node {node:?} panicked"),
            RuntimeError::Timeout {
                phase,
                round,
                missing,
                stalled,
                waited,
            } => {
                write!(
                    f,
                    "{phase} phase (round {round}) timed out after {waited:?}; \
                     missing {missing:?}, stalled {stalled:?}"
                )
            }
            RuntimeError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<deta_core::session::SetupError> for RuntimeError {
    fn from(e: deta_core::session::SetupError) -> Self {
        RuntimeError::Setup(e)
    }
}
