//! Control-plane protocol between the supervisor and its actors.
//!
//! Control messages ride the same simulated network as the training
//! protocol, distinguished purely by the sender: every node treats frames
//! from [`SUPERVISOR`] as control traffic and everything else as wire
//! protocol (`deta_core::wire::Msg`). The codec mirrors the wire codec's
//! discipline: a tag byte plus length-prefixed fields, total in both
//! directions — decoding never panics on malformed bytes, and encoding
//! refuses fields that would overflow their `u32` length prefix instead
//! of truncating.

/// The supervisor's endpoint name. Reserved: no party or aggregator is
/// ever named this, so the sender check is unambiguous.
pub const SUPERVISOR: &str = "supervisor";

/// One aggregator replacement inside a [`CtlMsg::Rebind`].
#[derive(Clone, PartialEq, Eq)]
pub struct RebindEntry {
    /// Fragment index of the replaced aggregator.
    pub index: u32,
    /// Endpoint name of the replacement.
    pub name: String,
    /// The replacement's token verifying key bytes (public material,
    /// published by the attestation proxy after the nonce challenge).
    pub verifying_key: Vec<u8>,
}

impl std::fmt::Debug for RebindEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The verifying key is public material, but key bytes stay out
        // of logs uniformly (see `SealedSecret`): debug output should
        // never be a place to copy key material from.
        f.debug_struct("RebindEntry")
            .field("index", &self.index)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Control messages.
#[derive(Clone, Debug, PartialEq)]
pub enum CtlMsg {
    /// Node -> supervisor: the node finished its bootstrap (aggregators:
    /// thread up and serving; parties: registered with every aggregator).
    Ready,
    /// Node -> supervisor: unrecoverable node-level failure.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// Node -> supervisor: liveness signal emitted on idle ticks.
    Heartbeat {
        /// Monotonic per-node sequence number.
        seq: u64,
    },
    /// Supervisor -> initiator aggregator: trigger a round (the
    /// operator's `begin_round` call, made message-driven). Idempotent:
    /// re-delivery of an announced or completed round is harmless.
    Trigger {
        /// Round number, starting at 1.
        round: u64,
        /// Per-round training id from the key broker.
        training_id: [u8; 16],
    },
    /// Supervisor -> party: this round's marching orders.
    RoundPlan {
        /// Round number.
        round: u64,
        /// Train and upload (`true`) or only synchronize (`false`).
        train: bool,
        /// Whether to attach a model-parameter snapshot to `PartyDone`
        /// (one designated party per round feeds evaluation).
        report_params: bool,
    },
    /// Party -> supervisor: the round is applied locally.
    PartyDone {
        /// Round number.
        round: u64,
        /// Whether this party trained (vs. synchronized only).
        trained: bool,
        /// Mean local training loss for the round (0 when not trained).
        train_loss: f32,
        /// Cumulative local-training seconds.
        train_s: f64,
        /// Cumulative transform seconds.
        transform_s: f64,
        /// Cumulative Paillier seconds.
        crypto_s: f64,
        /// Post-synchronization parameter snapshot, when requested.
        params: Option<Vec<f32>>,
    },
    /// Aggregator -> supervisor: aggregation for the round is dispatched.
    AggDone {
        /// Round number.
        round: u64,
        /// Cumulative aggregation compute seconds.
        aggregate_s: f64,
    },
    /// Supervisor -> node: drain and exit.
    Shutdown,
    /// Supervisor -> party: the listed aggregators were replaced by
    /// freshly attested nodes; re-run Phase II against each
    /// (challenge-response pinned to its token) and re-register. All
    /// replacements ride one message so the party's readiness signal
    /// can never fire between two rebinds of the same failover.
    Rebind {
        /// One entry per replaced aggregator.
        rebinds: Vec<RebindEntry>,
    },
    /// Supervisor -> party: re-partition over the surviving aggregator
    /// set before replaying `round` (the old epoch's fragments for that
    /// round are discarded, never merged).
    Remap {
        /// The round being replayed under the new partition.
        round: u64,
        /// Serialized replacement `ModelMapper` assignment.
        mapper: Vec<u8>,
        /// Surviving aggregator endpoint names, index = fragment index.
        aggs: Vec<String>,
    },
    /// Supervisor -> party: re-upload the stored update for `round` (the
    /// idempotent round-replay step after a failover).
    Replay {
        /// Round to replay.
        round: u64,
    },
    /// Supervisor -> aggregator: roll completed-round bookkeeping back
    /// so replayed uploads for `round` are accepted again.
    Reopen {
        /// Round being replayed.
        round: u64,
    },
    /// Supervisor -> aggregator: the named party left the session
    /// (partial participation after its link died); stop expecting its
    /// uploads and re-examine every pending round against the shrunk
    /// registered set.
    Deregister {
        /// Endpoint name of the departed party.
        party: String,
    },
    /// Supervisor -> aggregator: the post-failover synchronization
    /// topology. The node named `initiator` adopts the initiator role
    /// over the other listed aggregators; everyone else follows it.
    Topology {
        /// Endpoint name of the (possibly newly promoted) initiator.
        initiator: String,
        /// The full current aggregator set.
        aggs: Vec<String>,
    },
}

const TAG_READY: u8 = 1;
const TAG_FAILED: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_TRIGGER: u8 = 4;
const TAG_ROUND_PLAN: u8 = 5;
const TAG_PARTY_DONE: u8 = 6;
const TAG_AGG_DONE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_REBIND: u8 = 9;
const TAG_REMAP: u8 = 10;
const TAG_REPLAY: u8 = 11;
const TAG_REOPEN: u8 = 12;
const TAG_TOPOLOGY: u8 = 13;
const TAG_DEREGISTER: u8 = 14;

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlDecodeError;

impl std::fmt::Display for CtlDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed control message")
    }
}

impl std::error::Error for CtlDecodeError {}

/// Encode errors: a variable-length field exceeds the u32 length prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlEncodeError;

impl std::fmt::Display for CtlEncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "control message field exceeds u32 length prefix")
    }
}

impl std::error::Error for CtlEncodeError {}

fn put_len(out: &mut Vec<u8>, len: usize) -> Result<(), CtlEncodeError> {
    let len = u32::try_from(len).map_err(|_| CtlEncodeError)?;
    out.extend_from_slice(&len.to_le_bytes());
    Ok(())
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) -> Result<(), CtlEncodeError> {
    put_len(out, b.len())?;
    out.extend_from_slice(b);
    Ok(())
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) -> Result<(), CtlEncodeError> {
    put_len(out, v.len())?;
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Ok(())
}

fn put_strings(out: &mut Vec<u8>, v: &[String]) -> Result<(), CtlEncodeError> {
    put_len(out, v.len())?;
    for s in v {
        put_bytes(out, s.as_bytes())?;
    }
    Ok(())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CtlDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(CtlDecodeError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], CtlDecodeError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CtlDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CtlDecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, CtlDecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32(&mut self) -> Result<f32, CtlDecodeError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, CtlDecodeError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    fn bool(&mut self) -> Result<bool, CtlDecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CtlDecodeError),
        }
    }

    fn string(&mut self) -> Result<String, CtlDecodeError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| CtlDecodeError)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CtlDecodeError> {
        let n = self.u32()? as usize;
        if self.pos + n.checked_mul(4).ok_or(CtlDecodeError)? > self.buf.len() {
            return Err(CtlDecodeError);
        }
        (0..n).map(|_| self.f32()).collect()
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CtlDecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn strings(&mut self) -> Result<Vec<String>, CtlDecodeError> {
        let n = self.u32()? as usize;
        // Each entry costs at least a 4-byte length prefix; reject counts
        // the buffer cannot possibly hold before allocating.
        if self.pos + n.checked_mul(4).ok_or(CtlDecodeError)? > self.buf.len() {
            return Err(CtlDecodeError);
        }
        (0..n).map(|_| self.string()).collect()
    }

    fn finish(self) -> Result<(), CtlDecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CtlDecodeError)
        }
    }
}

impl CtlMsg {
    /// The variant's name, for counted-drop telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            CtlMsg::Ready => "Ready",
            CtlMsg::Failed { .. } => "Failed",
            CtlMsg::Heartbeat { .. } => "Heartbeat",
            CtlMsg::Trigger { .. } => "Trigger",
            CtlMsg::RoundPlan { .. } => "RoundPlan",
            CtlMsg::PartyDone { .. } => "PartyDone",
            CtlMsg::AggDone { .. } => "AggDone",
            CtlMsg::Shutdown => "Shutdown",
            CtlMsg::Rebind { .. } => "Rebind",
            CtlMsg::Remap { .. } => "Remap",
            CtlMsg::Replay { .. } => "Replay",
            CtlMsg::Reopen { .. } => "Reopen",
            CtlMsg::Deregister { .. } => "Deregister",
            CtlMsg::Topology { .. } => "Topology",
        }
    }

    /// Serializes the message.
    ///
    /// # Errors
    ///
    /// Fails when a field holds 2^32 or more elements, instead of
    /// truncating a length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, CtlEncodeError> {
        let mut out = Vec::new();
        match self {
            CtlMsg::Ready => out.push(TAG_READY),
            CtlMsg::Failed { reason } => {
                out.push(TAG_FAILED);
                put_bytes(&mut out, reason.as_bytes())?;
            }
            CtlMsg::Heartbeat { seq } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            CtlMsg::Trigger { round, training_id } => {
                out.push(TAG_TRIGGER);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(training_id);
            }
            CtlMsg::RoundPlan {
                round,
                train,
                report_params,
            } => {
                out.push(TAG_ROUND_PLAN);
                out.extend_from_slice(&round.to_le_bytes());
                out.push(u8::from(*train));
                out.push(u8::from(*report_params));
            }
            CtlMsg::PartyDone {
                round,
                trained,
                train_loss,
                train_s,
                transform_s,
                crypto_s,
                params,
            } => {
                out.push(TAG_PARTY_DONE);
                out.extend_from_slice(&round.to_le_bytes());
                out.push(u8::from(*trained));
                out.extend_from_slice(&train_loss.to_le_bytes());
                out.extend_from_slice(&train_s.to_le_bytes());
                out.extend_from_slice(&transform_s.to_le_bytes());
                out.extend_from_slice(&crypto_s.to_le_bytes());
                match params {
                    None => out.push(0),
                    Some(p) => {
                        out.push(1);
                        put_f32s(&mut out, p)?;
                    }
                }
            }
            CtlMsg::AggDone { round, aggregate_s } => {
                out.push(TAG_AGG_DONE);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&aggregate_s.to_le_bytes());
            }
            CtlMsg::Shutdown => out.push(TAG_SHUTDOWN),
            CtlMsg::Rebind { rebinds } => {
                out.push(TAG_REBIND);
                put_len(&mut out, rebinds.len())?;
                for e in rebinds {
                    out.extend_from_slice(&e.index.to_le_bytes());
                    put_bytes(&mut out, e.name.as_bytes())?;
                    put_bytes(&mut out, &e.verifying_key)?;
                }
            }
            CtlMsg::Remap {
                round,
                mapper,
                aggs,
            } => {
                out.push(TAG_REMAP);
                out.extend_from_slice(&round.to_le_bytes());
                put_bytes(&mut out, mapper)?;
                put_strings(&mut out, aggs)?;
            }
            CtlMsg::Replay { round } => {
                out.push(TAG_REPLAY);
                out.extend_from_slice(&round.to_le_bytes());
            }
            CtlMsg::Reopen { round } => {
                out.push(TAG_REOPEN);
                out.extend_from_slice(&round.to_le_bytes());
            }
            CtlMsg::Topology { initiator, aggs } => {
                out.push(TAG_TOPOLOGY);
                put_bytes(&mut out, initiator.as_bytes())?;
                put_strings(&mut out, aggs)?;
            }
            CtlMsg::Deregister { party } => {
                out.push(TAG_DEREGISTER);
                put_bytes(&mut out, party.as_bytes())?;
            }
        }
        Ok(out)
    }

    /// Parses a control frame.
    ///
    /// # Errors
    ///
    /// Fails on any malformed input; never panics.
    pub fn decode(buf: &[u8]) -> Result<CtlMsg, CtlDecodeError> {
        let mut r = Reader::new(buf);
        let msg = match r.u8()? {
            TAG_READY => CtlMsg::Ready,
            TAG_FAILED => CtlMsg::Failed {
                reason: r.string()?,
            },
            TAG_HEARTBEAT => CtlMsg::Heartbeat { seq: r.u64()? },
            TAG_TRIGGER => CtlMsg::Trigger {
                round: r.u64()?,
                training_id: r.array()?,
            },
            TAG_ROUND_PLAN => CtlMsg::RoundPlan {
                round: r.u64()?,
                train: r.bool()?,
                report_params: r.bool()?,
            },
            TAG_PARTY_DONE => CtlMsg::PartyDone {
                round: r.u64()?,
                trained: r.bool()?,
                train_loss: r.f32()?,
                train_s: r.f64()?,
                transform_s: r.f64()?,
                crypto_s: r.f64()?,
                params: if r.bool()? { Some(r.f32s()?) } else { None },
            },
            TAG_AGG_DONE => CtlMsg::AggDone {
                round: r.u64()?,
                aggregate_s: r.f64()?,
            },
            TAG_SHUTDOWN => CtlMsg::Shutdown,
            TAG_REBIND => {
                let n = r.u32()? as usize;
                // Each entry costs at least 12 bytes of fixed prefixes.
                if r.pos + n.checked_mul(12).ok_or(CtlDecodeError)? > r.buf.len() {
                    return Err(CtlDecodeError);
                }
                let rebinds = (0..n)
                    .map(|_| {
                        Ok(RebindEntry {
                            index: r.u32()?,
                            name: r.string()?,
                            verifying_key: r.bytes()?,
                        })
                    })
                    .collect::<Result<Vec<_>, CtlDecodeError>>()?;
                CtlMsg::Rebind { rebinds }
            }
            TAG_REMAP => CtlMsg::Remap {
                round: r.u64()?,
                mapper: r.bytes()?,
                aggs: r.strings()?,
            },
            TAG_REPLAY => CtlMsg::Replay { round: r.u64()? },
            TAG_REOPEN => CtlMsg::Reopen { round: r.u64()? },
            TAG_TOPOLOGY => CtlMsg::Topology {
                initiator: r.string()?,
                aggs: r.strings()?,
            },
            TAG_DEREGISTER => CtlMsg::Deregister { party: r.string()? },
            _ => return Err(CtlDecodeError),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: CtlMsg) {
        let bytes = msg.encode().expect("encode");
        assert_eq!(CtlMsg::decode(&bytes).expect("decode"), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(CtlMsg::Ready);
        roundtrip(CtlMsg::Failed {
            reason: "agg-1 failed authentication".to_string(),
        });
        roundtrip(CtlMsg::Heartbeat { seq: 42 });
        roundtrip(CtlMsg::Trigger {
            round: 7,
            training_id: [9u8; 16],
        });
        roundtrip(CtlMsg::RoundPlan {
            round: 3,
            train: true,
            report_params: false,
        });
        roundtrip(CtlMsg::PartyDone {
            round: 3,
            trained: true,
            train_loss: 0.25,
            train_s: 1.5,
            transform_s: 0.125,
            crypto_s: 0.0,
            params: Some(vec![1.0, -2.5, 3.25]),
        });
        roundtrip(CtlMsg::PartyDone {
            round: 4,
            trained: false,
            train_loss: 0.0,
            train_s: 0.0,
            transform_s: 0.0,
            crypto_s: 0.0,
            params: None,
        });
        roundtrip(CtlMsg::AggDone {
            round: 3,
            aggregate_s: 0.5,
        });
        roundtrip(CtlMsg::Shutdown);
        roundtrip(CtlMsg::Rebind {
            rebinds: vec![
                RebindEntry {
                    index: 2,
                    name: "agg-2#r1".to_string(),
                    verifying_key: vec![1, 2, 3, 4],
                },
                RebindEntry {
                    index: 0,
                    name: "agg-0#r3".to_string(),
                    verifying_key: vec![9; 32],
                },
            ],
        });
        roundtrip(CtlMsg::Rebind {
            rebinds: Vec::new(),
        });
        roundtrip(CtlMsg::Remap {
            round: 5,
            mapper: vec![0, 0, 1, 0, 0, 0],
            aggs: vec!["agg-0".to_string(), "agg-2".to_string()],
        });
        roundtrip(CtlMsg::Replay { round: 5 });
        roundtrip(CtlMsg::Reopen { round: 5 });
        roundtrip(CtlMsg::Topology {
            initiator: "agg-2".to_string(),
            aggs: vec!["agg-2".to_string(), "agg-0#r1".to_string()],
        });
        roundtrip(CtlMsg::Remap {
            round: 1,
            mapper: Vec::new(),
            aggs: Vec::new(),
        });
        roundtrip(CtlMsg::Deregister {
            party: "party-3".to_string(),
        });
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        assert!(CtlMsg::decode(&[]).is_err());
        assert!(CtlMsg::decode(&[99]).is_err());
        // Truncated Failed payload.
        assert!(CtlMsg::decode(&[TAG_FAILED, 10, 0, 0, 0, b'x']).is_err());
        // Trailing garbage after a valid frame.
        let mut ok = CtlMsg::Ready.encode().expect("encode");
        ok.push(0);
        assert!(CtlMsg::decode(&ok).is_err());
        // Out-of-range bool.
        let mut plan = CtlMsg::RoundPlan {
            round: 1,
            train: true,
            report_params: false,
        }
        .encode()
        .expect("encode");
        let last = plan.len() - 2;
        plan[last] = 7;
        assert!(CtlMsg::decode(&plan).is_err());
        // Truncated Rebind token.
        let mut rebind = CtlMsg::Rebind {
            rebinds: vec![RebindEntry {
                index: 0,
                name: "agg-0#r1".to_string(),
                verifying_key: vec![9; 32],
            }],
        }
        .encode()
        .expect("encode");
        rebind.truncate(rebind.len() - 1);
        assert!(CtlMsg::decode(&rebind).is_err());
        // String-list count larger than the remaining buffer.
        let mut topo = vec![TAG_TOPOLOGY];
        topo.extend_from_slice(&1u32.to_le_bytes());
        topo.push(b'a');
        topo.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(CtlMsg::decode(&topo).is_err());
    }
}
