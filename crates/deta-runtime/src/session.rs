//! [`ThreadedSession`]: the threaded deployment with the sequential
//! session's surface — `setup` → `run` → `Vec<RoundMetrics>`.
//!
//! Node construction is shared with `DetaSession` via
//! `SessionParts::build`, so for a fixed seed both deployments build
//! byte-identical nodes; from there every numeric path is driven by
//! per-node state (independent RNG forks, name-sorted aggregation),
//! which is what makes the final model parameters bit-identical
//! regardless of thread scheduling. Byte accounting is exact: the
//! transport keeps a monotonic per-link delivered-byte counter
//! ([`Network::link_bytes`]), and each round's upload (party→aggregator)
//! and download (aggregator→party) totals are window deltas over those
//! links — control-plane and inter-aggregator traffic never enters
//! either figure (DESIGN.md §7).

use crate::actor::NodeExit;
use crate::rtmsg::CtlMsg;
use crate::supervisor::Supervisor;
use crate::{Phase, RuntimeConfig, RuntimeError};
use deta_core::aggregator::AggregatorNode;
use deta_core::keybroker::KeyBroker;
use deta_core::latency::{LatencyModel, RoundInputs};
use deta_core::party::Party;
use deta_core::session::{DetaConfig, RoundMetrics, SessionParts};
use deta_core::transform::Transformer;
use deta_crypto::DetRng;
use deta_nn::train::LabeledData;
use deta_nn::Sequential;
use deta_transport::Network;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

/// A DeTA session deployed as concurrent, supervised node threads.
pub struct ThreadedSession {
    /// The active configuration.
    pub config: DetaConfig,
    network: Network,
    broker: KeyBroker,
    transformer: Transformer,
    latency_model: LatencyModel,
    eval_model: Sequential,
    supervisor: Supervisor,
    party_names: Vec<String>,
    agg_names: Vec<String>,
    next_round: u64,
    cumulative_latency_s: f64,
    prev_party_timers: HashMap<String, (f64, f64, f64)>,
    prev_agg_times: HashMap<String, f64>,
}

impl ThreadedSession {
    /// Bootstraps the threaded deployment: builds every node
    /// deterministically (`SessionParts::build`), spawns one thread per
    /// node, and waits (bounded by `rt.setup_deadline`) for every node to
    /// report `Ready` — aggregators once their service loop is up,
    /// parties once Phase II (attested channels + registration) is done.
    ///
    /// # Errors
    ///
    /// Structured: attestation/config problems as
    /// [`RuntimeError::Setup`], a node that cannot authenticate as
    /// [`RuntimeError::NodeFailed`], a wedged bootstrap as
    /// [`RuntimeError::Timeout`]. On any error all spawned threads are
    /// joined before returning.
    pub fn setup(
        config: DetaConfig,
        model_builder: &dyn Fn(&mut DetRng) -> Sequential,
        party_data: Vec<LabeledData>,
        rt: RuntimeConfig,
    ) -> Result<ThreadedSession, RuntimeError> {
        Self::setup_with(config, model_builder, party_data, rt, |_| {})
    }

    /// [`ThreadedSession::setup`] with a hook that runs after node
    /// construction and before any thread spawns. Test harnesses use it
    /// to instrument the deployment — install a fault policy or tap on
    /// `parts.network`, flip `Party::record_updates`, plant a
    /// misrouting — without the runtime growing bespoke knobs for each.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedSession::setup`].
    pub fn setup_with(
        config: DetaConfig,
        model_builder: &dyn Fn(&mut DetRng) -> Sequential,
        party_data: Vec<LabeledData>,
        rt: RuntimeConfig,
        instrument: impl FnOnce(&mut SessionParts),
    ) -> Result<ThreadedSession, RuntimeError> {
        if rt.telemetry.enabled {
            deta_telemetry::enable();
        }
        let mut parts = SessionParts::build(config, model_builder, party_data)?;
        instrument(&mut parts);
        let SessionParts {
            config,
            network,
            parties,
            aggregators,
            broker,
            latency_model,
            tokens,
            eval_model,
            transformer,
        } = parts;
        let agg_names: Vec<String> = aggregators.iter().map(|a| a.name.clone()).collect();
        let party_names: Vec<String> = parties.iter().map(|p| p.name.clone()).collect();
        let mut supervisor = Supervisor::new(network.clone(), rt);
        for agg in aggregators {
            supervisor.spawn_aggregator(agg)?;
        }
        for party in parties {
            supervisor.spawn_party(party, tokens.clone())?;
        }
        let expected: HashSet<String> = agg_names
            .iter()
            .chain(party_names.iter())
            .cloned()
            .collect();
        let deadline = supervisor.config().setup_deadline;
        let readiness = supervisor.wait(Phase::Setup, 0, deadline, expected, None, |_, msg| {
            matches!(msg, CtlMsg::Ready)
        });
        if let Err(e) = readiness {
            let _ = supervisor.shutdown();
            return Err(e);
        }
        Ok(ThreadedSession {
            config,
            network,
            broker,
            transformer,
            latency_model,
            eval_model,
            supervisor,
            party_names,
            agg_names,
            next_round: 1,
            cumulative_latency_s: 0.0,
            prev_party_timers: HashMap::new(),
            prev_agg_times: HashMap::new(),
        })
    }

    /// Runs all configured rounds, evaluating on `test` after each, then
    /// shuts the deployment down (joining every node thread).
    ///
    /// # Errors
    ///
    /// The first round failure (timeout, node failure, panic) aborts the
    /// run; the deployment is shut down before the error is returned, so
    /// no threads leak on any path.
    pub fn run(&mut self, test: &LabeledData) -> Result<Vec<RoundMetrics>, RuntimeError> {
        let rounds = self.config.rounds;
        let mut out = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            match self.run_round(test) {
                Ok(m) => out.push(m),
                Err(e) => {
                    let _ = self.supervisor.shutdown();
                    return Err(e);
                }
            }
        }
        self.supervisor.shutdown()?;
        Ok(out)
    }

    /// One training round, fully message-driven.
    fn run_round(&mut self, test: &LabeledData) -> Result<RoundMetrics, RuntimeError> {
        let round = self.next_round;
        self.next_round += 1;
        let tid = self.broker.training_id(round);
        let n = self.party_names.len();
        let k = self.agg_names.len();
        let Some(initiator) = self.agg_names.first().cloned() else {
            return Err(self
                .supervisor
                .record_failure(RuntimeError::Protocol("no aggregators deployed")));
        };

        // This round's participants: the sequential session's selection,
        // replicated exactly (same RNG fork, same shuffle).
        let online: Vec<usize> = (0..n).collect();
        let participants: HashSet<usize> = match self.config.participation {
            Some(q) if q < online.len() => {
                let mut pool = online.clone();
                let mut rng =
                    DetRng::from_u64(self.config.seed).fork_indexed(b"participation", round);
                rng.shuffle(&mut pool);
                pool.into_iter().take(q).collect()
            }
            _ => online.iter().copied().collect(),
        };

        // Byte attribution window: per-link delivered-byte counters are
        // snapshotted around the round, so the upload/download figures
        // are exact sums over party↔aggregator links (control-plane and
        // inter-aggregator traffic rides other links).
        let links0 = self.network.link_bytes();

        // Marching orders to every party, then the round trigger to the
        // initiator (retried with capped backoff below — idempotent).
        for (i, name) in self.party_names.iter().enumerate() {
            let plan = CtlMsg::RoundPlan {
                round,
                train: participants.contains(&i),
                report_params: i == 0,
            };
            self.supervisor.send_ctl(name, &plan);
        }
        let trigger = CtlMsg::Trigger {
            round,
            training_id: tid,
        };
        self.supervisor.send_ctl(&initiator, &trigger);

        // Collect completions: every aggregator's AggDone and every
        // party's PartyDone, under the round deadline.
        let mut losses: HashMap<String, f32> = HashMap::new();
        let mut party_cum: HashMap<String, (f64, f64, f64)> = HashMap::new();
        let mut agg_cum: HashMap<String, f64> = HashMap::new();
        let mut params: Option<Vec<f32>> = None;
        let expected: HashSet<String> = self
            .agg_names
            .iter()
            .chain(self.party_names.iter())
            .cloned()
            .collect();
        let deadline = self.supervisor.config().round_deadline;
        self.supervisor.wait(
            Phase::Round,
            round,
            deadline,
            expected,
            Some((initiator, trigger)),
            |from, msg| match msg {
                CtlMsg::AggDone {
                    round: r,
                    aggregate_s,
                } if r >= round => {
                    agg_cum.insert(from.to_string(), aggregate_s);
                    true
                }
                CtlMsg::PartyDone {
                    round: r,
                    trained,
                    train_loss,
                    train_s,
                    transform_s,
                    crypto_s,
                    params: p,
                } if r == round => {
                    if trained {
                        losses.insert(from.to_string(), train_loss);
                    }
                    party_cum.insert(from.to_string(), (train_s, transform_s, crypto_s));
                    if let Some(p) = p {
                        params = Some(p);
                    }
                    true
                }
                _ => false,
            },
        )?;

        // Byte attribution: exact window deltas over the per-link
        // counters. Uploads are party→aggregator deliveries, downloads
        // aggregator→party; everything else (control plane, follower
        // sync) is on disjoint links and never counted.
        let links1 = self.network.link_bytes();
        let upload_total = link_window(&links0, &links1, &self.party_names, &self.agg_names);
        let download_total = link_window(&links0, &links1, &self.agg_names, &self.party_names);

        // Latency inputs from per-node cumulative timer deltas.
        let mut max_train = 0.0f64;
        let mut max_transform = 0.0f64;
        let mut max_crypto = 0.0f64;
        for name in &self.party_names {
            let cum = party_cum.get(name).copied().unwrap_or_default();
            let prev = self
                .prev_party_timers
                .get(name)
                .copied()
                .unwrap_or_default();
            max_train = max_train.max(cum.0 - prev.0);
            max_transform = max_transform.max(cum.1 - prev.1);
            max_crypto = max_crypto.max(cum.2 - prev.2);
            self.prev_party_timers.insert(name.clone(), cum);
        }
        let mut max_agg = 0.0f64;
        for name in &self.agg_names {
            let cum = agg_cum.get(name).copied().unwrap_or_default();
            let prev = self.prev_agg_times.get(name).copied().unwrap_or_default();
            max_agg = max_agg.max(cum - prev);
            self.prev_agg_times.insert(name.clone(), cum);
        }
        // Mean training loss, summed in party-index order so the float
        // reduction matches the sequential session bit for bit.
        let mut train_loss_sum = 0.0f32;
        for name in &self.party_names {
            if let Some(l) = losses.get(name) {
                train_loss_sum += *l;
            }
        }
        let inputs = RoundInputs {
            max_party_train_s: max_train,
            max_party_transform_s: max_transform,
            max_party_crypto_s: max_crypto,
            upload_bytes_per_party: upload_total / n as u64,
            download_bytes_per_party: download_total / n as u64,
            max_aggregate_s: max_agg,
            n_aggregators: k,
        };
        let latency = self.latency_model.round(&inputs);
        let round_latency_s = latency.total();
        self.cumulative_latency_s += round_latency_s;

        // Evaluate on the supervisor's replica of the (synchronized,
        // therefore identical) party model.
        let Some(params) = params else {
            return Err(self
                .supervisor
                .record_failure(RuntimeError::Protocol("missing parameter snapshot")));
        };
        self.eval_model.set_flat_params(&params);
        let (test_loss, test_accuracy) = deta_nn::train::evaluate(&mut self.eval_model, test, 128);
        Ok(RoundMetrics {
            round,
            train_loss: train_loss_sum / participants.len() as f32,
            test_loss,
            test_accuracy,
            latency,
            round_latency_s,
            cumulative_latency_s: self.cumulative_latency_s,
            upload_bytes: upload_total,
            download_bytes: download_total,
        })
    }

    /// Stops every node and joins all threads. Idempotent; [`run`]
    /// already calls this on every path (success and failure).
    ///
    /// [`run`]: ThreadedSession::run
    ///
    /// # Errors
    ///
    /// Reports a panicked node thread; all other threads are still
    /// joined first.
    pub fn shutdown(&mut self) -> Result<(), RuntimeError> {
        self.supervisor.shutdown()
    }

    /// Whether every node thread has been joined.
    pub fn is_shut_down(&self) -> bool {
        self.supervisor.is_shut_down()
    }

    /// Number of completed rounds.
    pub fn completed_rounds(&self) -> u64 {
        self.next_round - 1
    }

    /// Flat parameters of party `i`'s final model replica. Available
    /// after shutdown (nodes are recovered from their threads at join);
    /// `None` before that, or for an unknown index.
    pub fn party_params(&self, i: usize) -> Option<Vec<f32>> {
        Some(self.recovered_party(i)?.model.flat_params())
    }

    /// Party `i`'s final node state, recovered from its joined thread.
    /// Available after shutdown; `None` before that, for an unknown
    /// index, or if the thread panicked.
    pub fn recovered_party(&self, i: usize) -> Option<&Party> {
        let name = self.party_names.get(i)?;
        match self.supervisor.recovered(name)? {
            NodeExit::Party(p) => Some(p),
            NodeExit::Aggregator(_) => None,
        }
    }

    /// Aggregator `j`'s final node state, recovered from its joined
    /// thread (same availability as [`ThreadedSession::recovered_party`]).
    pub fn recovered_aggregator(&self, j: usize) -> Option<&AggregatorNode> {
        let name = self.agg_names.get(j)?;
        match self.supervisor.recovered(name)? {
            NodeExit::Aggregator(a) => Some(a),
            NodeExit::Party(_) => None,
        }
    }

    /// The key broker (per-round training ids and the permutation key).
    pub fn broker(&self) -> &KeyBroker {
        &self.broker
    }

    /// The shared transform every party uploads through.
    pub fn transformer(&self) -> &Transformer {
        &self.transformer
    }

    /// The deployment's network (e.g. for traffic stats).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Party endpoint names, in index order.
    pub fn party_names(&self) -> &[String] {
        &self.party_names
    }

    /// Aggregator endpoint names, index 0 is the initiator.
    pub fn agg_names(&self) -> &[String] {
        &self.agg_names
    }

    /// The flight-recorder dump written for the first fault verdict (if
    /// telemetry is enabled and a fault occurred). See
    /// [`Supervisor::trace_dump_path`].
    pub fn trace_dump_path(&self) -> Option<&Path> {
        self.supervisor.trace_dump_path()
    }

    /// Forces a flight-recorder dump now; see
    /// [`Supervisor::dump_trace`].
    pub fn dump_trace(&mut self) -> Option<PathBuf> {
        self.supervisor.dump_trace()
    }
}

/// Sums the delivered-byte delta between two [`Network::link_bytes`]
/// snapshots over every `froms`→`tos` link.
fn link_window(
    before: &BTreeMap<(String, String), u64>,
    after: &BTreeMap<(String, String), u64>,
    froms: &[String],
    tos: &[String],
) -> u64 {
    after
        .iter()
        .filter(|((from, to), _)| froms.contains(from) && tos.contains(to))
        .map(|(link, bytes)| bytes - before.get(link).copied().unwrap_or(0))
        .sum()
}
