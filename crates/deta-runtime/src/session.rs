//! [`ThreadedSession`]: the threaded deployment with the sequential
//! session's surface — `setup` → `run` → `Vec<RoundMetrics>`.
//!
//! Node construction is shared with `DetaSession` via
//! `SessionParts::build`, so for a fixed seed both deployments build
//! byte-identical nodes; from there every numeric path is driven by
//! per-node state (independent RNG forks, name-sorted aggregation),
//! which is what makes the final model parameters bit-identical
//! regardless of thread scheduling. Byte accounting is exact: the
//! transport keeps a monotonic per-link delivered-byte counter
//! ([`Network::link_bytes`]), and each round's upload (party→aggregator)
//! and download (aggregator→party) totals are window deltas over those
//! links — control-plane and inter-aggregator traffic never enters
//! either figure (DESIGN.md §7).

use crate::actor::NodeExit;
use crate::rtmsg::{CtlMsg, RebindEntry};
use crate::supervisor::{implicated_nodes, Supervisor};
use crate::{FailoverPolicy, Phase, RuntimeConfig, RuntimeError};
use deta_core::agg::AggKind;
use deta_core::aggregator::{AggRole, AggregatorNode};
use deta_core::keybroker::KeyBroker;
use deta_core::latency::{LatencyModel, RoundInputs};
use deta_core::mapper::ModelMapper;
use deta_core::party::Party;
use deta_core::recovery::RecoveryKit;
use deta_core::session::{DetaConfig, RoundMetrics, SessionParts};
use deta_core::transform::Transformer;
use deta_crypto::{DetRng, VerifyingKey};
use deta_nn::train::LabeledData;
use deta_nn::Sequential;
use deta_telemetry::TelemetryValue;
use deta_transport::Network;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

/// The minimal per-round state a failover replays from (DESIGN.md §12).
///
/// The checkpoint is refreshed after every successful round; a failed
/// round is replayed *on top of* the checkpointed state — parties hold
/// their last sealed upload for idempotent re-upload, so no private data
/// ever leaves a party twice in different forms.
#[derive(Clone, Debug)]
pub struct RoundCheckpoint {
    /// The last successfully completed round (0 right after setup).
    pub round: u64,
    /// Global model parameters after that round.
    pub params: Vec<f32>,
    /// The serialized [`ModelMapper`] in effect (current epoch).
    pub mapper_bytes: Vec<u8>,
    /// The broker's permutation round id used by that round (zero for
    /// the setup checkpoint).
    pub training_id: [u8; 16],
}

/// One model-partition epoch: the transformer (mapper + keyed shuffle)
/// and aggregator set in effect from [`MapperEpoch::from_round`] until
/// the next epoch begins.
///
/// A round healed by re-partition belongs to BOTH the epoch it started
/// under and the epoch it completed under — its failed attempt put
/// old-epoch fragments in flight, so auditors must accept either view
/// for that round (and only that round).
#[derive(Clone)]
pub struct MapperEpoch {
    /// First round this epoch applies to.
    pub from_round: u64,
    /// The party-side transformer of this epoch.
    pub transformer: Transformer,
    /// Aggregator endpoint names of this epoch, index 0 the initiator.
    pub agg_names: Vec<String>,
}

/// A DeTA session deployed as concurrent, supervised node threads.
pub struct ThreadedSession {
    /// The active configuration.
    pub config: DetaConfig,
    network: Network,
    broker: KeyBroker,
    transformer: Transformer,
    latency_model: LatencyModel,
    eval_model: Sequential,
    supervisor: Supervisor,
    party_names: Vec<String>,
    agg_names: Vec<String>,
    /// Phase II token verifying keys by aggregator endpoint name.
    /// Incarnations retired by a failover keep their (now-dead) entries
    /// alongside their replacements' fresh ones.
    tokens: HashMap<String, VerifyingKey>,
    next_round: u64,
    cumulative_latency_s: f64,
    prev_party_timers: HashMap<String, (f64, f64, f64)>,
    prev_agg_times: HashMap<String, f64>,
    recovery: RecoveryKit,
    checkpoint: Option<RoundCheckpoint>,
    epochs: Vec<MapperEpoch>,
    retired_aggs: Vec<String>,
    failovers: u64,
    /// Failovers consumed per aggregator *base* name (reincarnations
    /// share one allowance).
    budget_used: HashMap<String, u32>,
    /// Parties dropped to partial participation (`RuntimeConfig::
    /// party_drop`): they receive no further round plans, are expected
    /// in no completion wait, and every aggregator has deregistered
    /// them. Names stay in `party_names` so participant selection and
    /// byte attribution keep their deterministic shape.
    dropped_parties: HashSet<String>,
}

impl ThreadedSession {
    /// Bootstraps the threaded deployment: builds every node
    /// deterministically (`SessionParts::build`), spawns one thread per
    /// node, and waits (bounded by `rt.setup_deadline`) for every node to
    /// report `Ready` — aggregators once their service loop is up,
    /// parties once Phase II (attested channels + registration) is done.
    ///
    /// # Errors
    ///
    /// Structured: attestation/config problems as
    /// [`RuntimeError::Setup`], a node that cannot authenticate as
    /// [`RuntimeError::NodeFailed`], a wedged bootstrap as
    /// [`RuntimeError::Timeout`]. On any error all spawned threads are
    /// joined before returning.
    pub fn setup(
        config: DetaConfig,
        model_builder: &dyn Fn(&mut DetRng) -> Sequential,
        party_data: Vec<LabeledData>,
        rt: RuntimeConfig,
    ) -> Result<ThreadedSession, RuntimeError> {
        Self::setup_with(config, model_builder, party_data, rt, |_| {})
    }

    /// [`ThreadedSession::setup`] with a hook that runs after node
    /// construction and before any thread spawns. Test harnesses use it
    /// to instrument the deployment — install a fault policy or tap on
    /// `parts.network`, flip `Party::record_updates`, plant a
    /// misrouting — without the runtime growing bespoke knobs for each.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedSession::setup`].
    pub fn setup_with(
        config: DetaConfig,
        model_builder: &dyn Fn(&mut DetRng) -> Sequential,
        party_data: Vec<LabeledData>,
        rt: RuntimeConfig,
        instrument: impl FnOnce(&mut SessionParts),
    ) -> Result<ThreadedSession, RuntimeError> {
        if rt.telemetry.enabled {
            deta_telemetry::enable();
        }
        let mut parts = SessionParts::build(config, model_builder, party_data)?;
        instrument(&mut parts);
        let (pending, nodes) = PendingSession::split(parts);
        let mut supervisor = Supervisor::new(pending.network.clone(), rt);
        for agg in nodes.aggregators {
            supervisor.spawn_aggregator(agg)?;
        }
        for party in nodes.parties {
            supervisor.spawn_party(party, nodes.tokens.clone())?;
        }
        pending.finish(supervisor)
    }

    /// [`ThreadedSession::setup`] for externally hosted nodes: the nodes
    /// are built deterministically as usual, but instead of spawning one
    /// thread per node, every node is handed to `host` — a transport
    /// bridge that runs them elsewhere (another OS process over a
    /// socket, a remote machine) and relays their traffic through this
    /// session's [`Network`]. The supervisor then waits for every node
    /// to report `Ready` over the bridge exactly as it would for thread
    /// hosting, and the returned session drives rounds unchanged.
    ///
    /// `host` receives the built nodes (it may drop them when the remote
    /// side rebuilds its own copy from the same seed) plus the session
    /// network, and must arrange for each node's frames to flow through
    /// that network — [`Network::send_as`] is the injection seam.
    ///
    /// Failover policies that respawn nodes are not supported over a
    /// bridge (the supervisor cannot re-home a remote process), so runs
    /// should use [`FailoverPolicy::None`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedSession::setup`]; errors returned by
    /// `host` abort the bootstrap after signalling every adopted node.
    pub fn setup_detached(
        config: DetaConfig,
        model_builder: &dyn Fn(&mut DetRng) -> Sequential,
        party_data: Vec<LabeledData>,
        rt: RuntimeConfig,
        host: impl FnOnce(DetachedNodes, &Network) -> Result<(), RuntimeError>,
    ) -> Result<ThreadedSession, RuntimeError> {
        if rt.telemetry.enabled {
            deta_telemetry::enable();
        }
        let parts = SessionParts::build(config, model_builder, party_data)?;
        let (pending, nodes) = PendingSession::split(parts);
        let mut supervisor = Supervisor::new(pending.network.clone(), rt);
        for name in pending.agg_names.iter().chain(pending.party_names.iter()) {
            supervisor.adopt(name);
        }
        if let Err(e) = host(nodes, &pending.network) {
            let _ = supervisor.shutdown();
            return Err(e);
        }
        pending.finish(supervisor)
    }

    /// Runs all configured rounds, evaluating on `test` after each, then
    /// shuts the deployment down (joining every node thread).
    ///
    /// # Errors
    ///
    /// The first round failure (timeout, node failure, panic) aborts the
    /// run; the deployment is shut down before the error is returned, so
    /// no threads leak on any path.
    pub fn run(&mut self, test: &LabeledData) -> Result<Vec<RoundMetrics>, RuntimeError> {
        let rounds = self.config.rounds;
        let mut out = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            match self.run_round(test) {
                Ok(m) => out.push(m),
                Err(e) => {
                    let _ = self.supervisor.shutdown();
                    return Err(e);
                }
            }
        }
        self.supervisor.shutdown()?;
        Ok(out)
    }

    /// One training round, fully message-driven. A failed attempt is
    /// healed in place when the failover policy allows it: the loop
    /// below re-enters the completion wait after each recovery, carrying
    /// the completions already collected, until the round finishes or
    /// the failure is terminal.
    fn run_round(&mut self, test: &LabeledData) -> Result<RoundMetrics, RuntimeError> {
        let round = self.next_round;
        self.next_round += 1;
        let tid = self.broker.training_id(round);
        let n = self.party_names.len();

        // Round-scoped trace: everything this driver thread sends from
        // here on carries trace id `round + 1` (0 means untraced), and
        // its transport edge events land in the supervisor's ring.
        deta_telemetry::trace::begin(round + 1);
        let _trace_guard = deta_telemetry::attach(self.supervisor.own_recorder());
        self.supervisor
            .note("round_begin", &[("round", TelemetryValue::from(round))]);

        // This round's participants: the sequential session's selection,
        // replicated exactly (same RNG fork, same shuffle).
        let online: Vec<usize> = (0..n).collect();
        let participants: HashSet<usize> = match self.config.participation {
            Some(q) if q < online.len() => {
                let mut pool = online.clone();
                let mut rng =
                    DetRng::from_u64(self.config.seed).fork_indexed(b"participation", round);
                rng.shuffle(&mut pool);
                pool.into_iter().take(q).collect()
            }
            _ => online.iter().copied().collect(),
        };

        // Byte attribution window: per-link delivered-byte counters are
        // snapshotted around the round, so the upload/download figures
        // are exact sums over party↔aggregator links (control-plane and
        // inter-aggregator traffic rides other links).
        let links0 = self.network.link_bytes();

        // Marching orders to every party (sent once — a failover
        // re-enters the completion wait without re-planning, so no party
        // can be told to train the same round twice), then the round
        // trigger to the initiator (retried with capped backoff —
        // idempotent).
        // The designated parameter reporter is the first party still in
        // the session — party 0 unless partial participation dropped it.
        let reporter = self
            .party_names
            .iter()
            .position(|n| !self.dropped_parties.contains(n));
        for (i, name) in self.party_names.iter().enumerate() {
            if self.dropped_parties.contains(name) {
                continue;
            }
            let plan = CtlMsg::RoundPlan {
                round,
                train: participants.contains(&i),
                report_params: Some(i) == reporter,
            };
            self.supervisor.send_ctl(name, &plan);
        }

        // Collect completions: every aggregator's AggDone and every
        // party's PartyDone, under the round deadline. A recoverable
        // failure runs a failover and re-enters the wait for whoever has
        // not finished yet.
        let mut progress = RoundProgress::default();
        loop {
            let Some(initiator) = self.agg_names.first().cloned() else {
                return Err(self
                    .supervisor
                    .record_failure(RuntimeError::Protocol("no aggregators deployed")));
            };
            let trigger = CtlMsg::Trigger {
                round,
                training_id: tid,
            };
            self.supervisor.send_ctl(&initiator, &trigger);
            let expected: HashSet<String> = self
                .agg_names
                .iter()
                .chain(self.party_names.iter())
                .filter(|name| {
                    !progress.done.contains(*name) && !self.dropped_parties.contains(*name)
                })
                .cloned()
                .collect();
            let deadline = self.supervisor.config().round_deadline;
            let attempt = self.supervisor.wait(
                Phase::Round,
                round,
                deadline,
                expected,
                Some((initiator, trigger)),
                |from, msg| progress.absorb(round, from, msg),
            );
            match attempt {
                Ok(()) => break,
                Err(err) => self.failover(err, round, &mut progress)?,
            }
        }

        // Byte attribution: exact window deltas over the per-link
        // counters. Uploads are party→aggregator deliveries, downloads
        // aggregator→party; everything else (control plane, follower
        // sync) is on disjoint links and never counted.
        let links1 = self.network.link_bytes();
        let upload_total = link_window(&links0, &links1, &self.party_names, &self.agg_names);
        let download_total = link_window(&links0, &links1, &self.agg_names, &self.party_names);

        // Latency inputs from per-node cumulative timer deltas.
        let k = self.agg_names.len();
        let mut max_train = 0.0f64;
        let mut max_transform = 0.0f64;
        let mut max_crypto = 0.0f64;
        for name in &self.party_names {
            let cum = progress.party_cum.get(name).copied().unwrap_or_default();
            let prev = self
                .prev_party_timers
                .get(name)
                .copied()
                .unwrap_or_default();
            max_train = max_train.max(cum.0 - prev.0);
            max_transform = max_transform.max(cum.1 - prev.1);
            max_crypto = max_crypto.max(cum.2 - prev.2);
            self.prev_party_timers.insert(name.clone(), cum);
        }
        let mut max_agg = 0.0f64;
        for name in &self.agg_names {
            let cum = progress.agg_cum.get(name).copied().unwrap_or_default();
            let prev = self.prev_agg_times.get(name).copied().unwrap_or_default();
            max_agg = max_agg.max(cum - prev);
            self.prev_agg_times.insert(name.clone(), cum);
        }
        // Mean training loss, summed in party-index order so the float
        // reduction matches the sequential session bit for bit.
        let mut train_loss_sum = 0.0f32;
        for name in &self.party_names {
            if let Some(l) = progress.losses.get(name) {
                train_loss_sum += *l;
            }
        }
        // Per-party figures average over the parties still in the
        // session; the quorum floor keeps this nonzero, but divide
        // defensively anyway.
        let active = (n - self.dropped_parties.len()).max(1);
        let inputs = RoundInputs {
            max_party_train_s: max_train,
            max_party_transform_s: max_transform,
            max_party_crypto_s: max_crypto,
            upload_bytes_per_party: upload_total / active as u64,
            download_bytes_per_party: download_total / active as u64,
            max_aggregate_s: max_agg,
            n_aggregators: k,
        };
        let latency = self.latency_model.round(&inputs);
        let round_latency_s = latency.total();
        self.cumulative_latency_s += round_latency_s;

        // Evaluate on the supervisor's replica of the (synchronized,
        // therefore identical) party model.
        let Some(params) = progress.params else {
            return Err(self
                .supervisor
                .record_failure(RuntimeError::Protocol("missing parameter snapshot")));
        };
        // Refresh the round checkpoint: the state the *next* round's
        // failover would replay on top of.
        if self.supervisor.config().checkpoint {
            let _cp_span =
                deta_telemetry::span("checkpoint").with_field("round", TelemetryValue::from(round));
            self.checkpoint = Some(RoundCheckpoint {
                round,
                params: params.clone(),
                mapper_bytes: self.transformer.mapper().to_bytes(),
                training_id: tid,
            });
        }
        // Driver-side work is on the round's blocking path too; span it
        // so critical-path reports name it instead of charging it to
        // idle.
        let (test_loss, test_accuracy) = {
            let _eval_span =
                deta_telemetry::span("eval").with_field("round", TelemetryValue::from(round));
            self.eval_model.set_flat_params(&params);
            deta_nn::train::evaluate(&mut self.eval_model, test, 128)
        };
        // Loss averages over the participants that actually trained: a
        // party dropped mid-round contributed no loss, so it must not
        // inflate the denominator. Without drops this is exactly
        // `participants.len()`, preserving bit-parity with the
        // sequential session.
        let trained = participants
            .iter()
            .filter(|i| !self.dropped_parties.contains(&self.party_names[**i]))
            .count()
            .max(1);
        Ok(RoundMetrics {
            round,
            train_loss: train_loss_sum / trained as f32,
            test_loss,
            test_accuracy,
            latency,
            round_latency_s,
            cumulative_latency_s: self.cumulative_latency_s,
            upload_bytes: upload_total,
            download_bytes: download_total,
        })
    }

    /// Attempts to heal a failed round attempt. On success the caller
    /// re-enters the completion wait; any error returned here is
    /// terminal (the session degrades to today's structured failure).
    ///
    /// Recoverable means: a failover policy is configured, a checkpoint
    /// exists, the fault implicates at least one aggregator (parties own
    /// private data no replacement could re-create), the Paillier path
    /// is off (a replayed upload must be byte-identical, and
    /// re-encrypting would consume party RNG state), and every target is
    /// within its recovery budget.
    fn failover(
        &mut self,
        err: RuntimeError,
        round: u64,
        progress: &mut RoundProgress,
    ) -> Result<(), RuntimeError> {
        // Partial participation first: a lost *party* holds private data
        // no replacement could re-create, so the only recovery is to
        // drop it and continue with the survivors. Aggregator faults
        // fall through to the failover policies below unchanged.
        let err = match self.drop_parties(err, round, progress) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        let policy = self.supervisor.config().failover;
        let budget = self.supervisor.config().recovery_attempts;
        if policy == FailoverPolicy::None
            || self.checkpoint.is_none()
            || self.config.paillier.is_some()
        {
            return Err(err);
        }
        if policy == FailoverPolicy::Repartition && !partition_commutative(self.config.algorithm) {
            // Krum / FLAME-lite score whole fragments, so survivors
            // re-aggregating under a new partition would select
            // differently than the original epoch — re-partition would
            // silently change the round's semantics.
            return Err(err);
        }
        let implicated = implicated_nodes(&err);
        let targets: Vec<String> = self
            .agg_names
            .iter()
            .filter(|n| implicated.contains(n))
            .cloned()
            .collect();
        if targets.is_empty() {
            return Err(err);
        }
        if policy == FailoverPolicy::Repartition && targets.len() >= self.agg_names.len() {
            // Nobody would survive to absorb the dead partitions; degrade
            // to the original (attributed) terminal error.
            return Err(err);
        }
        // Bounded recovery budget, counted against each aggregator's
        // base name so its reincarnations share one allowance.
        for t in &targets {
            let used = self
                .budget_used
                .entry(base_name(t).to_string())
                .or_insert(0);
            if *used >= budget {
                return Err(err);
            }
            *used += 1;
        }
        self.failovers += 1;
        self.supervisor.note(
            "failover_started",
            &[
                ("round", TelemetryValue::from(round)),
                ("policy", TelemetryValue::from(policy_tag(policy))),
                ("targets", TelemetryValue::from(targets.len())),
            ],
        );
        for t in &targets {
            self.supervisor.kill_node(t);
            self.retired_aggs.push(t.clone());
            progress.done.remove(t);
        }
        match policy {
            FailoverPolicy::None => return Err(err),
            FailoverPolicy::Restart => self.failover_restart(&targets, round, progress)?,
            FailoverPolicy::Repartition => self.failover_repartition(&targets, round, progress)?,
        }
        self.supervisor
            .note("round_replayed", &[("round", TelemetryValue::from(round))]);
        Ok(())
    }

    /// Graceful degradation to partial participation (DESIGN.md §16):
    /// when `RuntimeConfig::party_drop` is on and a round fault
    /// implicates only parties, drop them from the session — deregister
    /// at every aggregator, retire their threads/mailboxes, and re-enter
    /// the completion wait over the survivors.
    ///
    /// Refused (the original fault, or a structured refusal naming the
    /// lost node, is returned) when:
    ///
    /// * the knob is off, or any implicated node is an aggregator,
    /// * the survivors would fall below the aggregation rule's quorum
    ///   floor ([`participation_floor`]),
    /// * the lost party is this round's designated parameter reporter
    ///   and its snapshot has not arrived — no survivor was told to
    ///   report, so the round could never complete.
    fn drop_parties(
        &mut self,
        err: RuntimeError,
        round: u64,
        progress: &mut RoundProgress,
    ) -> Result<(), RuntimeError> {
        if !self.supervisor.config().party_drop {
            return Err(err);
        }
        let implicated = implicated_nodes(&err);
        if implicated.is_empty() || implicated.iter().any(|n| self.agg_names.contains(n)) {
            return Err(err);
        }
        let lost: Vec<String> = self
            .party_names
            .iter()
            .filter(|n| implicated.contains(n) && !self.dropped_parties.contains(*n))
            .cloned()
            .collect();
        if lost.is_empty() {
            return Err(err);
        }
        let survivors = self.party_names.len() - self.dropped_parties.len() - lost.len();
        let floor = participation_floor(self.config.algorithm);
        if survivors < floor {
            return Err(self.supervisor.record_failure(RuntimeError::NodeFailed {
                node: lost[0].clone(),
                reason: format!(
                    "lost mid-round; dropping it would leave {survivors} of {} parties, \
                     below the quorum floor of {floor} for {:?}",
                    self.party_names.len(),
                    self.config.algorithm
                ),
            }));
        }
        if progress.params.is_none() {
            if let Some(rep) = self
                .party_names
                .iter()
                .find(|n| !self.dropped_parties.contains(*n))
            {
                if lost.contains(rep) {
                    return Err(self.supervisor.record_failure(RuntimeError::NodeFailed {
                        node: rep.clone(),
                        reason: "lost mid-round while designated to report the parameter \
                                 snapshot; no survivor was planned to report it"
                            .to_string(),
                    }));
                }
            }
        }
        for party in &lost {
            self.supervisor.kill_node(party);
            self.dropped_parties.insert(party.clone());
            for agg in &self.agg_names {
                self.supervisor.send_ctl(
                    agg,
                    &CtlMsg::Deregister {
                        party: party.clone(),
                    },
                );
            }
            self.supervisor.note(
                "party_dropped",
                &[
                    ("round", TelemetryValue::from(round)),
                    ("party", TelemetryValue::from(party.as_str())),
                    ("survivors", TelemetryValue::from(survivors)),
                ],
            );
        }
        Ok(())
    }

    /// `FailoverPolicy::Restart`: respawn every dead aggregator as a
    /// freshly attested CVM under a new incarnation name (same mapper
    /// slot), rebind every party to the replacements (re-running the
    /// Phase II challenge-response against the proxy's new token), wait
    /// for readiness, then replay the failed round's sealed uploads.
    fn failover_restart(
        &mut self,
        targets: &[String],
        round: u64,
        progress: &mut RoundProgress,
    ) -> Result<(), RuntimeError> {
        // New incarnation names, preserving each target's mapper slot.
        let mut new_names = self.agg_names.clone();
        let mut replaced: Vec<(usize, String)> = Vec::new();
        for t in targets {
            let Some(slot) = self.agg_names.iter().position(|n| n == t) else {
                continue;
            };
            let generation = self.budget_used.get(base_name(t)).copied().unwrap_or(1);
            let name = format!("{}#r{generation}", base_name(t));
            new_names[slot] = name.clone();
            replaced.push((slot, name));
        }
        let Some(initiator) = new_names.first().cloned() else {
            return Err(RuntimeError::Protocol("no aggregators deployed"));
        };
        // Phase I for each replacement (attestation against the sev-sim
        // AP, token provisioning into the fresh CVM), then its thread.
        let mut rebinds: Vec<RebindEntry> = Vec::new();
        for (slot, name) in &replaced {
            let role = if *slot == 0 {
                AggRole::Initiator {
                    followers: new_names.iter().filter(|n| *n != name).cloned().collect(),
                }
            } else {
                AggRole::Follower {
                    initiator: initiator.clone(),
                }
            };
            let endpoint = self.network.register(name);
            let (node, token) = self.recovery.respawn(name, endpoint, role)?;
            self.tokens.insert(name.clone(), token.clone());
            self.supervisor.spawn_aggregator(node)?;
            self.supervisor.note(
                "reattested",
                &[
                    ("node", TelemetryValue::from(name.as_str())),
                    ("round", TelemetryValue::from(round)),
                ],
            );
            let Ok(index) = u32::try_from(*slot) else {
                return Err(RuntimeError::Protocol("aggregator slot exceeds u32"));
            };
            rebinds.push(RebindEntry {
                index,
                name: name.clone(),
                verifying_key: token.to_bytes(),
            });
        }
        // Survivors learn the new topology (replacement follower names,
        // or a replacement initiator to report to).
        for name in &new_names {
            if replaced.iter().any(|(_, n)| n == name) {
                continue;
            }
            self.supervisor.send_ctl(
                name,
                &CtlMsg::Topology {
                    initiator: initiator.clone(),
                    aggs: new_names.clone(),
                },
            );
        }
        // Every party re-runs Phase II against the replacements. The
        // rebind is one batched message so no party can report readiness
        // between two rebinds of the same failover.
        for p in &self.party_names {
            self.supervisor.send_ctl(
                p,
                &CtlMsg::Rebind {
                    rebinds: rebinds.clone(),
                },
            );
        }
        // Barrier: every replacement's service loop up AND every party
        // re-registered before any replay flows — a replacement must
        // never aggregate over a partially re-registered party set.
        let expected: HashSet<String> = replaced
            .iter()
            .map(|(_, n)| n.clone())
            .chain(self.party_names.iter().cloned())
            .collect();
        let deadline = self.supervisor.config().setup_deadline;
        self.supervisor.wait(
            Phase::Setup,
            round,
            deadline,
            expected,
            None,
            |from, msg| match msg {
                CtlMsg::Ready => true,
                other => {
                    // Completions racing in from survivors mid-failover
                    // still count toward the round.
                    progress.absorb(round, from, other);
                    false
                }
            },
        )?;
        self.agg_names = new_names;
        // Idempotent re-upload of the failed round's sealed fragments.
        for p in &self.party_names {
            self.supervisor.send_ctl(p, &CtlMsg::Replay { round });
        }
        Ok(())
    }

    /// `FailoverPolicy::Repartition`: drop the dead aggregators and
    /// rebuild the partition over the survivors. The failed round is
    /// discarded at every survivor (never merged) before any new-epoch
    /// fragment can arrive, a deterministic replacement mapper is
    /// generated over the surviving set, and the round replays under
    /// the new epoch. Privacy argument (DESIGN.md §12): a survivor sees
    /// the failed round's fragments under exactly one partition per
    /// epoch, and the keyed shuffle breaks positional correlation
    /// between the two views of the boundary round.
    fn failover_repartition(
        &mut self,
        targets: &[String],
        round: u64,
        progress: &mut RoundProgress,
    ) -> Result<(), RuntimeError> {
        let survivors: Vec<String> = self
            .agg_names
            .iter()
            .filter(|n| !targets.contains(n))
            .cloned()
            .collect();
        let Some(initiator) = survivors.first().cloned() else {
            return Err(RuntimeError::Protocol(
                "no surviving aggregators to re-partition over",
            ));
        };
        // Survivors discard the failed round and (possibly) learn a
        // promoted initiator. FIFO mailboxes order the Reopen ahead of
        // every replayed upload the parties send later.
        for s in &survivors {
            self.supervisor.send_ctl(s, &CtlMsg::Reopen { round });
            self.supervisor.send_ctl(
                s,
                &CtlMsg::Topology {
                    initiator: initiator.clone(),
                    aggs: survivors.clone(),
                },
            );
            // Reopened survivors must re-complete the round.
            progress.done.remove(s);
        }
        // Deterministic replacement partition: epoch `e` is a pure
        // function of (seed, e), so a replay of the whole session
        // rebuilds it bit-exactly.
        let epoch_index = self.epochs.len() as u64;
        let n_params = self.transformer.mapper().n_params();
        let mut rng = DetRng::from_u64(self.config.seed).fork_indexed(b"mapper-epoch", epoch_index);
        let mapper = ModelMapper::generate(n_params, survivors.len(), None, &mut rng);
        let mapper_bytes = mapper.to_bytes();
        self.transformer = self.transformer.with_mapper(mapper);
        // Re-point every party at the new partition (drops dead
        // channels, discards this round's old-epoch downloads) and make
        // them re-prove readiness.
        for p in &self.party_names {
            self.supervisor.send_ctl(
                p,
                &CtlMsg::Remap {
                    round,
                    mapper: mapper_bytes.clone(),
                    aggs: survivors.clone(),
                },
            );
        }
        let expected: HashSet<String> = self.party_names.iter().cloned().collect();
        let deadline = self.supervisor.config().setup_deadline;
        self.supervisor.wait(
            Phase::Setup,
            round,
            deadline,
            expected,
            None,
            |from, msg| match msg {
                CtlMsg::Ready => true,
                other => {
                    progress.absorb(round, from, other);
                    false
                }
            },
        )?;
        // The boundary round belongs to BOTH epochs for audit: its
        // failed attempt put old-epoch fragments in flight.
        self.epochs.push(MapperEpoch {
            from_round: round,
            transformer: self.transformer.clone(),
            agg_names: survivors.clone(),
        });
        self.agg_names = survivors;
        for p in &self.party_names {
            self.supervisor.send_ctl(p, &CtlMsg::Replay { round });
        }
        Ok(())
    }

    /// Stops every node and joins all threads. Idempotent; [`run`]
    /// already calls this on every path (success and failure).
    ///
    /// [`run`]: ThreadedSession::run
    ///
    /// # Errors
    ///
    /// Reports a panicked node thread; all other threads are still
    /// joined first.
    pub fn shutdown(&mut self) -> Result<(), RuntimeError> {
        self.supervisor.shutdown()
    }

    /// Whether every node thread has been joined.
    pub fn is_shut_down(&self) -> bool {
        self.supervisor.is_shut_down()
    }

    /// Number of completed rounds.
    pub fn completed_rounds(&self) -> u64 {
        self.next_round - 1
    }

    /// Flat parameters of party `i`'s final model replica. Available
    /// after shutdown (nodes are recovered from their threads at join);
    /// `None` before that, or for an unknown index.
    pub fn party_params(&self, i: usize) -> Option<Vec<f32>> {
        Some(self.recovered_party(i)?.model.flat_params())
    }

    /// Party `i`'s final node state, recovered from its joined thread.
    /// Available after shutdown; `None` before that, for an unknown
    /// index, or if the thread panicked.
    pub fn recovered_party(&self, i: usize) -> Option<&Party> {
        let name = self.party_names.get(i)?;
        match self.supervisor.recovered(name)? {
            NodeExit::Party(p) => Some(p),
            NodeExit::Aggregator(_) => None,
        }
    }

    /// Aggregator `j`'s final node state, recovered from its joined
    /// thread (same availability as [`ThreadedSession::recovered_party`]).
    pub fn recovered_aggregator(&self, j: usize) -> Option<&AggregatorNode> {
        let name = self.agg_names.get(j)?;
        match self.supervisor.recovered(name)? {
            NodeExit::Aggregator(a) => Some(a),
            NodeExit::Party(_) => None,
        }
    }

    /// The latest round checkpoint (`None` while checkpointing is
    /// disabled).
    pub fn checkpoint(&self) -> Option<&RoundCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Every model-partition epoch so far, oldest first. A session that
    /// never re-partitioned has exactly one.
    pub fn epochs(&self) -> &[MapperEpoch] {
        &self.epochs
    }

    /// Number of failovers performed so far.
    pub fn failover_count(&self) -> u64 {
        self.failovers
    }

    /// Endpoint names of aggregator incarnations retired by failovers,
    /// in retirement order.
    pub fn retired_agg_names(&self) -> &[String] {
        &self.retired_aggs
    }

    /// An aggregator's final node state looked up by endpoint name.
    /// Unlike [`ThreadedSession::recovered_aggregator`], this also
    /// reaches incarnations retired by a failover — those are joined
    /// (and therefore recoverable) the moment the failover kills them.
    pub fn recovered_aggregator_named(&self, name: &str) -> Option<&AggregatorNode> {
        match self.supervisor.recovered(name)? {
            NodeExit::Aggregator(a) => Some(a),
            NodeExit::Party(_) => None,
        }
    }

    /// The key broker (per-round training ids and the permutation key).
    pub fn broker(&self) -> &KeyBroker {
        &self.broker
    }

    /// The shared transform every party uploads through.
    pub fn transformer(&self) -> &Transformer {
        &self.transformer
    }

    /// The deployment's network (e.g. for traffic stats).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Parties dropped to partial participation so far (empty unless
    /// `RuntimeConfig::party_drop` engaged).
    pub fn dropped_parties(&self) -> &HashSet<String> {
        &self.dropped_parties
    }

    /// Party endpoint names, in index order.
    pub fn party_names(&self) -> &[String] {
        &self.party_names
    }

    /// Aggregator endpoint names, index 0 is the initiator.
    pub fn agg_names(&self) -> &[String] {
        &self.agg_names
    }

    /// Phase II token verifying keys by aggregator endpoint name —
    /// exactly what the attestation proxy published (and re-published
    /// on every failover re-attestation). Retired incarnations keep
    /// their entries next to their replacements', so adversarial drills
    /// can prove a retired incarnation's key is dead: it must differ
    /// from (and fail verification against) the live entry.
    pub fn token_directory(&self) -> &HashMap<String, VerifyingKey> {
        &self.tokens
    }

    /// The flight-recorder dump written for the first fault verdict (if
    /// telemetry is enabled and a fault occurred). See
    /// [`Supervisor::trace_dump_path`].
    pub fn trace_dump_path(&self) -> Option<&Path> {
        self.supervisor.trace_dump_path()
    }

    /// Forces a flight-recorder dump now; see
    /// [`Supervisor::dump_trace`].
    pub fn dump_trace(&mut self) -> Option<PathBuf> {
        self.supervisor.dump_trace()
    }
}

/// The deterministically built nodes of a deployment whose hosting is
/// delegated to a transport bridge (see
/// [`ThreadedSession::setup_detached`]). The token map is the Phase II
/// verification material parties need; a bridge also uses it to check
/// that a remote peer claiming an aggregator name can sign with the
/// attested token key.
pub struct DetachedNodes {
    /// Every party node, in index order.
    pub parties: Vec<Party>,
    /// Every aggregator node, index 0 the initiator.
    pub aggregators: Vec<AggregatorNode>,
    /// Aggregator token verification keys by endpoint name.
    pub tokens: HashMap<String, VerifyingKey>,
}

/// Everything [`ThreadedSession`] needs beyond the node values
/// themselves: the shared bootstrap tail between thread hosting and
/// detached (bridged) hosting.
struct PendingSession {
    config: DetaConfig,
    network: Network,
    broker: KeyBroker,
    latency_model: LatencyModel,
    eval_model: Sequential,
    transformer: Transformer,
    recovery: RecoveryKit,
    party_names: Vec<String>,
    agg_names: Vec<String>,
    tokens: HashMap<String, VerifyingKey>,
}

impl PendingSession {
    /// Splits built session parts into the session skeleton and the node
    /// values a host must take ownership of.
    fn split(parts: SessionParts) -> (PendingSession, DetachedNodes) {
        let SessionParts {
            config,
            network,
            parties,
            aggregators,
            broker,
            latency_model,
            tokens,
            eval_model,
            transformer,
            recovery,
        } = parts;
        let agg_names: Vec<String> = aggregators.iter().map(|a| a.name.clone()).collect();
        let party_names: Vec<String> = parties.iter().map(|p| p.name.clone()).collect();
        (
            PendingSession {
                config,
                network,
                broker,
                latency_model,
                eval_model,
                transformer,
                recovery,
                party_names,
                agg_names,
                tokens: tokens.clone(),
            },
            DetachedNodes {
                parties,
                aggregators,
                tokens,
            },
        )
    }

    /// Waits for every node to report `Ready`, seeds the round-0
    /// checkpoint, and assembles the session.
    fn finish(self, mut supervisor: Supervisor) -> Result<ThreadedSession, RuntimeError> {
        let PendingSession {
            config,
            network,
            broker,
            latency_model,
            eval_model,
            transformer,
            recovery,
            party_names,
            agg_names,
            tokens,
        } = self;
        let expected: HashSet<String> = agg_names
            .iter()
            .chain(party_names.iter())
            .cloned()
            .collect();
        let deadline = supervisor.config().setup_deadline;
        let readiness = supervisor.wait(Phase::Setup, 0, deadline, expected, None, |_, msg| {
            matches!(msg, CtlMsg::Ready)
        });
        if let Err(e) = readiness {
            let _ = supervisor.shutdown();
            return Err(e);
        }
        // The setup checkpoint (round 0): the freshly initialized global
        // model under the initial partition, so even a first-round fault
        // has a replay basis.
        let checkpoint = if supervisor.config().checkpoint {
            Some(RoundCheckpoint {
                round: 0,
                params: eval_model.flat_params(),
                mapper_bytes: transformer.mapper().to_bytes(),
                training_id: [0u8; 16],
            })
        } else {
            None
        };
        let epochs = vec![MapperEpoch {
            from_round: 1,
            transformer: transformer.clone(),
            agg_names: agg_names.clone(),
        }];
        Ok(ThreadedSession {
            config,
            network,
            broker,
            transformer,
            latency_model,
            eval_model,
            supervisor,
            party_names,
            agg_names,
            tokens,
            next_round: 1,
            cumulative_latency_s: 0.0,
            prev_party_timers: HashMap::new(),
            prev_agg_times: HashMap::new(),
            recovery,
            checkpoint,
            epochs,
            retired_aggs: Vec::new(),
            failovers: 0,
            budget_used: HashMap::new(),
            dropped_parties: HashSet::new(),
        })
    }
}

/// Completion state for one round, carried across failover attempts so
/// a healed wait doesn't forget who already finished.
#[derive(Default)]
struct RoundProgress {
    /// Nodes whose round obligation is fulfilled.
    done: HashSet<String>,
    losses: HashMap<String, f32>,
    party_cum: HashMap<String, (f64, f64, f64)>,
    agg_cum: HashMap<String, f64>,
    params: Option<Vec<f32>>,
}

impl RoundProgress {
    /// Records a completion message for `round`; returns whether it
    /// fulfilled the sender's obligation.
    fn absorb(&mut self, round: u64, from: &str, msg: CtlMsg) -> bool {
        match msg {
            CtlMsg::AggDone {
                round: r,
                aggregate_s,
            } if r >= round => {
                self.agg_cum.insert(from.to_string(), aggregate_s);
                self.done.insert(from.to_string());
                true
            }
            CtlMsg::PartyDone {
                round: r,
                trained,
                train_loss,
                train_s,
                transform_s,
                crypto_s,
                params,
            } if r == round => {
                if trained {
                    self.losses.insert(from.to_string(), train_loss);
                }
                self.party_cum
                    .insert(from.to_string(), (train_s, transform_s, crypto_s));
                if let Some(p) = params {
                    self.params = Some(p);
                }
                self.done.insert(from.to_string());
                true
            }
            _ => false,
        }
    }
}

/// The stable base of an aggregator name across reincarnations
/// (`agg-1#r2` → `agg-1`).
fn base_name(name: &str) -> &str {
    match name.split('#').next() {
        Some(base) => base,
        None => name,
    }
}

/// A short static tag for a failover policy (telemetry fields).
fn policy_tag(policy: FailoverPolicy) -> &'static str {
    match policy {
        FailoverPolicy::None => "none",
        FailoverPolicy::Restart => "restart",
        FailoverPolicy::Repartition => "repartition",
    }
}

/// Whether an aggregation algorithm commutes with re-partitioning: its
/// output at each coordinate depends only on the parties' values at
/// that coordinate, never on whole-fragment geometry.
/// The minimum surviving-party count each aggregation rule needs to
/// keep its guarantees once partial participation shrinks the session:
/// Krum scores each update against its `n - f - 2` nearest neighbours
/// (so `n >= 2f + 2` must hold for selection to be meaningful), the
/// trimmed mean must retain at least one value per coordinate after
/// discarding `trim` from each end, FLAME-lite's median-based clipping
/// needs three updates for a non-degenerate median, and the plain
/// averaging rules work with any non-empty set.
fn participation_floor(algorithm: AggKind) -> usize {
    match algorithm {
        AggKind::Krum { f } => 2 * f + 2,
        AggKind::TrimmedMean { trim } => 2 * trim + 1,
        AggKind::FlameLite => 3,
        AggKind::IterativeAveraging | AggKind::GradientSum | AggKind::CoordinateMedian => 1,
    }
}

fn partition_commutative(algorithm: AggKind) -> bool {
    !matches!(algorithm, AggKind::Krum { .. } | AggKind::FlameLite)
}

/// Sums the delivered-byte delta between two [`Network::link_bytes`]
/// snapshots over every `froms`→`tos` link.
fn link_window(
    before: &BTreeMap<(String, String), u64>,
    after: &BTreeMap<(String, String), u64>,
    froms: &[String],
    tos: &[String],
) -> u64 {
    after
        .iter()
        .filter(|((from, to), _)| froms.contains(from) && tos.contains(to))
        .map(|(link, bytes)| bytes - before.get(link).copied().unwrap_or(0))
        .sum()
}
