//! The per-node actor loops.
//!
//! Every node (aggregator or party) runs one of these loops on its own
//! OS thread. The loop owns a clone of the node's mailbox
//! [`Endpoint`] and is the *only* receiver: each queued frame is routed
//! either to the node's wire handler (`handle_wire`) or, when the sender
//! is the supervisor, to the control-plane dispatcher. Idle ticks emit
//! heartbeats so the supervisor can tell a stalled node from a busy one.
//!
//! Exit conditions (all of them leave the node value intact for the
//! supervisor to recover via the join handle):
//!
//! * the shared stop flag is set,
//! * a `Shutdown` control message arrives,
//! * the mailbox is closed and drained (`RecvError::Closed`).

use crate::rtmsg::{CtlMsg, SUPERVISOR};
use deta_core::aggregator::{AggRole, AggregatorNode};
use deta_core::party::Party;
use deta_core::wire::Msg;
use deta_crypto::VerifyingKey;
use deta_telemetry::{FlightRecorder, TelemetryValue};
use deta_transport::{Endpoint, RecvError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared per-deployment actor state, plus this node's private halt
/// flag.
#[derive(Clone)]
pub struct ActorContext {
    /// Cooperative stop flag, set once by the supervisor at shutdown.
    pub stop: Arc<AtomicBool>,
    /// Per-node halt flag: the supervisor sets it to retire exactly this
    /// node during a failover (even one deliberately stalled), leaving
    /// the rest of the deployment running.
    pub halt: Arc<AtomicBool>,
    /// Mailbox poll tick (and heartbeat cadence when idle).
    pub tick: Duration,
}

impl ActorContext {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.halt.load(Ordering::Relaxed)
    }
}

/// What a node thread returns when it exits: the node itself, so the
/// supervisor can inspect final state (e.g. model parameters) after join.
pub enum NodeExit {
    /// A party's final state.
    Party(Box<Party>),
    /// An aggregator's final state.
    Aggregator(Box<AggregatorNode>),
}

fn send_ctl(endpoint: &Endpoint, msg: &CtlMsg) {
    // A failed send means the supervisor is gone (shutdown in progress);
    // the actor will observe its own exit condition shortly.
    if let Ok(frame) = msg.encode() {
        let _ = endpoint.send(SUPERVISOR, frame);
    }
}

/// Parks the thread until the stop flag is set: the deliberate "stalled
/// node" behavior used by fault-injection tests. The mailbox is ignored
/// but the thread stays joinable.
fn stall_until_stop(ctx: &ActorContext) {
    while !ctx.stopped() {
        std::thread::sleep(ctx.tick);
    }
}

/// The aggregator service loop.
///
/// `stall_at_round`, when set, makes this node stop servicing its
/// mailbox as soon as it sees the announcement of that round (via the
/// supervisor's `Trigger` on the initiator, or the initiator's
/// `SyncRound` fan-out on a follower) — fault injection for supervisor
/// tests.
pub fn run_aggregator(
    mut agg: AggregatorNode,
    stall_at_round: Option<u64>,
    ctx: ActorContext,
    recorder: Arc<FlightRecorder>,
) -> NodeExit {
    // Held for the loop's lifetime: every span/event this thread emits
    // (including deep inside deta-core) lands in this node's ring.
    let _telemetry = deta_telemetry::attach(recorder);
    let endpoint = agg.endpoint();
    let mut hb_seq = 0u64;
    let mut last_reported = 0u64;
    // Aggregators are ready as soon as their thread is servicing the
    // mailbox: Phase II is reactive on this side.
    send_ctl(&endpoint, &CtlMsg::Ready);
    loop {
        if ctx.stopped() {
            break;
        }
        match endpoint.recv_timeout(ctx.tick) {
            Ok(msg) => {
                if &*msg.from == SUPERVISOR {
                    match CtlMsg::decode(&msg.payload) {
                        Ok(CtlMsg::Shutdown) => break,
                        Ok(CtlMsg::Trigger { round, training_id }) => {
                            if stall_at_round.is_some_and(|at| round >= at) {
                                deta_telemetry::event(
                                    "stall_injected",
                                    &[("round", TelemetryValue::from(round))],
                                );
                                stall_until_stop(&ctx);
                                break;
                            }
                            if let Err(e) = agg.begin_round(round, training_id) {
                                send_ctl(
                                    &endpoint,
                                    &CtlMsg::Failed {
                                        reason: e.to_string(),
                                    },
                                );
                            }
                        }
                        Ok(CtlMsg::Reopen { round }) => {
                            deta_telemetry::event(
                                "round_reopened",
                                &[("round", TelemetryValue::from(round))],
                            );
                            agg.reopen_round(round);
                            last_reported = last_reported.min(round.saturating_sub(1));
                        }
                        Ok(CtlMsg::Topology { initiator, aggs }) => {
                            let role = if agg.name == initiator {
                                AggRole::Initiator {
                                    followers: aggs
                                        .iter()
                                        .filter(|a| **a != agg.name)
                                        .cloned()
                                        .collect(),
                                }
                            } else {
                                AggRole::Follower { initiator }
                            };
                            agg.set_role(role);
                        }
                        Ok(CtlMsg::Deregister { party }) => {
                            deta_telemetry::event(
                                "party_deregistered",
                                &[("party", TelemetryValue::from(party.as_str()))],
                            );
                            agg.deregister(&party);
                        }
                        // Supervisor-bound reports and party-only
                        // directives are not for an aggregator; count
                        // each drop so discarded control traffic stays
                        // observable. Enumerated (not `_`) so adding a
                        // CtlMsg variant forces a decision here.
                        Ok(
                            other @ (CtlMsg::Ready
                            | CtlMsg::Failed { .. }
                            | CtlMsg::Heartbeat { .. }
                            | CtlMsg::RoundPlan { .. }
                            | CtlMsg::PartyDone { .. }
                            | CtlMsg::AggDone { .. }
                            | CtlMsg::Rebind { .. }
                            | CtlMsg::Remap { .. }
                            | CtlMsg::Replay { .. }),
                        ) => {
                            deta_telemetry::metrics::counter_add(
                                "deta_ctl_ignored_total",
                                other.name(),
                                1,
                            );
                        }
                        Err(_) => {
                            deta_telemetry::metrics::counter_add(
                                "deta_ctl_ignored_total",
                                "undecodable",
                                1,
                            );
                        }
                    }
                } else {
                    if let Some(at) = stall_at_round {
                        if let Ok(Msg::SyncRound { round, .. }) = Msg::decode(&msg.payload) {
                            if round >= at {
                                deta_telemetry::event(
                                    "stall_injected",
                                    &[("round", TelemetryValue::from(round))],
                                );
                                stall_until_stop(&ctx);
                                break;
                            }
                        }
                    }
                    // Spanned so merged-trace critical paths can name
                    // dispatch/decode time that falls outside the
                    // node's own compute spans.
                    let _handle = deta_telemetry::span("handle_wire")
                        .with_field("bytes", TelemetryValue::from(msg.payload.len()));
                    agg.handle_wire(&msg.from, &msg.payload);
                }
            }
            Err(RecvError::Timeout) => {
                hb_seq += 1;
                send_ctl(&endpoint, &CtlMsg::Heartbeat { seq: hb_seq });
            }
            Err(RecvError::Closed) => break,
        }
        if agg.completed_rounds > last_reported {
            last_reported = agg.completed_rounds;
            send_ctl(
                &endpoint,
                &CtlMsg::AggDone {
                    round: last_reported,
                    aggregate_s: agg.aggregate_time_s,
                },
            );
        }
    }
    NodeExit::Aggregator(Box::new(agg))
}

/// The party service loop.
///
/// Bootstraps Phase II itself (hellos → handshakes → registration, all
/// message-driven through [`Party::handle_wire`]), reports `Ready` once
/// every aggregator acked registration, then executes one round per
/// supervisor `RoundPlan`: train-or-skip when the matching `RoundStart`
/// arrives, and `PartyDone` once every aggregated fragment is applied.
pub fn run_party(
    mut party: Party,
    tokens: HashMap<String, VerifyingKey>,
    ctx: ActorContext,
    recorder: Arc<FlightRecorder>,
) -> NodeExit {
    // Held for the loop's lifetime (see `run_aggregator`).
    let _telemetry = deta_telemetry::attach(recorder);
    let endpoint = party.endpoint();
    party.send_hellos(&tokens);
    let mut hb_seq = 0u64;
    let mut ready_sent = false;
    let mut failed = false;
    // The plan for a not-yet-announced round: (round, train, report).
    let mut plan: Option<(u64, bool, bool)> = None;
    // The round currently executing locally: (round, trained, report).
    let mut active: Option<(u64, bool, bool)> = None;
    loop {
        if ctx.stopped() {
            break;
        }
        match endpoint.recv_timeout(ctx.tick) {
            Ok(msg) => {
                if &*msg.from == SUPERVISOR {
                    match CtlMsg::decode(&msg.payload) {
                        Ok(CtlMsg::Shutdown) => break,
                        Ok(CtlMsg::RoundPlan {
                            round,
                            train,
                            report_params,
                        }) => plan = Some((round, train, report_params)),
                        Ok(CtlMsg::Rebind { rebinds }) => {
                            for e in &rebinds {
                                let Some(token) = VerifyingKey::from_bytes(&e.verifying_key) else {
                                    continue;
                                };
                                party.rebind(e.index as usize, &e.name, token);
                            }
                            // Readiness must be re-proven against the
                            // replacements: Ready fires again once every
                            // new channel verifies and re-registers.
                            ready_sent = false;
                        }
                        Ok(CtlMsg::Remap {
                            round,
                            mapper,
                            aggs,
                        }) => {
                            if !party.apply_remap(round, &mapper, &aggs) {
                                send_ctl(
                                    &endpoint,
                                    &CtlMsg::Failed {
                                        reason: "re-partition mapper rejected".to_string(),
                                    },
                                );
                                failed = true;
                            }
                            // Survivor channels persist, so readiness may
                            // already hold; re-announce it so the
                            // supervisor's failover barrier sees this
                            // party.
                            ready_sent = false;
                        }
                        Ok(CtlMsg::Replay { round }) => {
                            party.replay_upload(round);
                        }
                        // Supervisor-bound reports and aggregator-only
                        // directives are not for a party; count each
                        // drop so discarded control traffic stays
                        // observable. Enumerated (not `_`) so adding a
                        // CtlMsg variant forces a decision here.
                        Ok(
                            other @ (CtlMsg::Ready
                            | CtlMsg::Failed { .. }
                            | CtlMsg::Heartbeat { .. }
                            | CtlMsg::Trigger { .. }
                            | CtlMsg::PartyDone { .. }
                            | CtlMsg::AggDone { .. }
                            | CtlMsg::Reopen { .. }
                            | CtlMsg::Topology { .. }
                            | CtlMsg::Deregister { .. }),
                        ) => {
                            deta_telemetry::metrics::counter_add(
                                "deta_ctl_ignored_total",
                                other.name(),
                                1,
                            );
                        }
                        Err(_) => {
                            deta_telemetry::metrics::counter_add(
                                "deta_ctl_ignored_total",
                                "undecodable",
                                1,
                            );
                        }
                    }
                } else {
                    let _handle = deta_telemetry::span("handle_wire")
                        .with_field("bytes", TelemetryValue::from(msg.payload.len()));
                    party.handle_wire(&msg.from, &msg.payload);
                }
            }
            Err(RecvError::Timeout) => {
                hb_seq += 1;
                send_ctl(&endpoint, &CtlMsg::Heartbeat { seq: hb_seq });
            }
            Err(RecvError::Closed) => break,
        }
        if failed {
            // Keep draining (so peers are not blocked on a full queue
            // semantic) but take no further protocol action.
            continue;
        }
        if !ready_sent {
            if let Some(agg) = party.auth_failure() {
                send_ctl(
                    &endpoint,
                    &CtlMsg::Failed {
                        reason: format!("aggregator {agg:?} failed authentication"),
                    },
                );
                failed = true;
                continue;
            }
            if party.acks_complete() {
                ready_sent = true;
                send_ctl(&endpoint, &CtlMsg::Ready);
            }
        }
        // Start the planned round once the initiator announced it.
        if active.is_none() {
            if let (Some((pr, train, report)), Some((cur, _))) = (plan, party.current_round()) {
                if cur == pr {
                    plan = None;
                    let result = if train {
                        party.run_local_round()
                    } else {
                        party.skip_local_round()
                    };
                    match result {
                        Ok(()) => active = Some((pr, train, report)),
                        Err(e) => {
                            send_ctl(
                                &endpoint,
                                &CtlMsg::Failed {
                                    reason: e.to_string(),
                                },
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
        // Complete it once every aggregated fragment has been applied.
        if let Some((round, trained, report)) = active {
            if party.finish_round() && party.last_finished_round() >= round {
                active = None;
                let params = if report {
                    Some(party.model.flat_params())
                } else {
                    None
                };
                send_ctl(
                    &endpoint,
                    &CtlMsg::PartyDone {
                        round,
                        trained,
                        train_loss: if trained { party.last_train_loss } else { 0.0 },
                        train_s: party.timers.train_s,
                        transform_s: party.timers.transform_s,
                        crypto_s: party.timers.crypto_s,
                        params,
                    },
                );
            }
        }
    }
    NodeExit::Party(Box::new(party))
}
