//! The DeTA threat-model rules.
//!
//! Two layers live here. Rules 1–6 are *token* rules: standalone
//! functions from `(workspace-relative path, token stream)` to
//! violations. Rules 8–9 are *flow* rules over the item-level parse
//! ([`crate::parse`]); rule 7 (`secret-taint-flow`) is the
//! interprocedural pass in [`crate::taint`]. Fixture tests exercise
//! every rule in isolation. Paths use forward slashes relative to the
//! workspace root (e.g. `crates/deta-core/src/wire.rs`).

use crate::lex::{Tok, TokKind};
use crate::parse::{split_top_level, FileAnalysis};

/// Every rule name, token and flow layers together. The self-check and
/// the JSON report treat this as the registry of record: a rule absent
/// here is a rule CI cannot prove has fixture coverage.
pub const ALL_RULES: &[&str] = &[
    "no-secret-debug",
    "no-variable-time-eq",
    "deterministic-iteration",
    "no-panic-in-aggregation",
    "no-truncating-cast",
    "no-secret-telemetry",
    "secret-taint-flow",
    "channel-liveness",
    "exhaustive-handling",
];

/// One rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (stable, used as the allowlist key).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending identifier (allowlist key).
    pub ident: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} ({})",
            self.path, self.line, self.rule, self.message, self.ident
        )
    }
}

/// Runs every rule over one already-tokenized, test-stripped file.
pub fn check_tokens(path: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(no_secret_debug(path, toks));
    out.extend(no_variable_time_eq(path, toks));
    out.extend(deterministic_iteration(path, toks));
    out.extend(no_panic_in_aggregation(path, toks));
    out.extend(no_truncating_cast(path, toks));
    out.extend(no_secret_telemetry(path, toks));
    out
}

/// Convenience entry point: tokenize `src`, strip test regions, check.
pub fn check_source(path: &str, src: &str) -> Vec<Violation> {
    let toks = crate::lex::strip_test_regions(crate::lex::tokenize(src));
    check_tokens(path, &toks)
}

/// Splits an identifier into lowercase words at `_` and camel-case
/// boundaries: `SigningKey` -> ["signing", "key"].
pub(crate) fn words(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ident.chars() {
        if c == '_' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else if c.is_uppercase() && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
            cur.push(c.to_ascii_lowercase());
        } else {
            cur.push(c.to_ascii_lowercase());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

pub(crate) fn has_word(ident: &str, set: &[&str]) -> bool {
    words(ident).iter().any(|w| set.contains(&w.as_str()))
}

// ---------------------------------------------------------------------
// Rule 1: no-secret-debug
// ---------------------------------------------------------------------

/// Words that mark a struct *name* as holding secret material.
const SECRET_NAME_WORDS: &[&str] = &["secret", "signing", "private", "seed", "sk"];
/// Words that mark a *field* as secret when its type is raw bytes.
const SECRET_FIELD_WORDS: &[&str] = &["secret", "seed", "key", "sk", "token", "private", "signing"];

/// Secret-bearing structs must not `derive(Debug)`: key/seed bytes would
/// flow into logs and breach dumps. Write a redacting manual impl (see
/// `deta_paillier::PrivateKey`) instead. Applies to every source file.
pub fn no_secret_debug(path: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = toks.len();
    let mut i = 0;
    while i < n {
        // Find #[derive( .. Debug .. )].
        if !(toks[i].is_punct('#')
            && i + 2 < n
            && toks[i + 1].is_punct('[')
            && toks[i + 2].ident() == Some("derive"))
        {
            i += 1;
            continue;
        }
        let close = balanced_end(toks, i + 3, '(', ')');
        let derives_debug = toks[i + 3..close]
            .iter()
            .any(|t| t.ident() == Some("Debug"));
        // Move past the attribute's closing `]`.
        let mut j = close;
        if j < n && toks[j].is_punct(']') {
            j += 1;
        }
        i = j;
        if !derives_debug {
            continue;
        }
        // Skip further attributes / visibility to reach `struct Name`.
        while j < n {
            if toks[j].is_punct('#') && j + 1 < n && toks[j + 1].is_punct('[') {
                j = balanced_end(toks, j + 1, '[', ']');
                if j < n && toks[j].is_punct(']') {
                    j += 1;
                }
            } else if toks[j].ident() == Some("pub") {
                j += 1;
                if j < n && toks[j].is_punct('(') {
                    j = balanced_end(toks, j, '(', ')');
                }
            } else {
                break;
            }
        }
        if j + 1 >= n || toks[j].ident() != Some("struct") {
            continue;
        }
        let Some(name) = toks[j + 1].ident() else {
            continue;
        };
        let line = toks[j + 1].line;
        if has_word(name, SECRET_NAME_WORDS) {
            out.push(Violation {
                rule: "no-secret-debug",
                path: path.to_string(),
                line,
                ident: name.to_string(),
                message: format!(
                    "struct `{name}` holds secret material but derives Debug; \
                     write a redacting manual impl"
                ),
            });
            continue;
        }
        // Inspect fields: a secret-named field of raw-byte type also
        // makes the derive dangerous.
        let mut k = j + 2;
        // Generics: skip `<...>` by angle-depth counting.
        if k < n && toks[k].is_punct('<') {
            let mut depth = 0i32;
            while k < n {
                if toks[k].is_punct('<') {
                    depth += 1;
                } else if toks[k].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        if k < n && toks[k].is_punct('{') {
            let body_end = balanced_end(toks, k, '{', '}');
            out.extend(check_named_fields(path, name, toks, k + 1, body_end));
        } else if k < n && toks[k].is_punct('(') {
            let body_end = balanced_end(toks, k, '(', ')');
            if has_word(name, SECRET_FIELD_WORDS)
                && !has_word(name, &["public", "verifying", "pub"])
                && type_is_raw_bytes(&toks[k + 1..body_end])
            {
                out.push(Violation {
                    rule: "no-secret-debug",
                    path: path.to_string(),
                    line,
                    ident: name.to_string(),
                    message: format!("tuple struct `{name}` wraps raw key bytes but derives Debug"),
                });
            }
        }
    }
    out
}

/// Checks named fields in `toks[start..end]` (inside the struct braces).
fn check_named_fields(
    path: &str,
    struct_name: &str,
    toks: &[Tok],
    start: usize,
    end: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = start;
    let mut depth = 0i32;
    while i + 1 < end {
        match &toks[i].kind {
            TokKind::Punct(c) if "([{<".contains(*c) => depth += 1,
            TokKind::Punct(c) if ")]}>".contains(*c) => depth -= 1,
            TokKind::Ident(field) if depth == 0 && toks[i + 1].is_punct(':') && field != "pub" => {
                // Type tokens run to the next top-level comma.
                let mut t = i + 2;
                let mut tdepth = 0i32;
                let ty_start = t;
                while t < end {
                    match &toks[t].kind {
                        TokKind::Punct(c) if "([{<".contains(*c) => tdepth += 1,
                        TokKind::Punct(c) if ")]}>".contains(*c) => tdepth -= 1,
                        TokKind::Punct(',') if tdepth == 0 => break,
                        _ => {}
                    }
                    t += 1;
                }
                if has_word(field, SECRET_FIELD_WORDS) && type_is_raw_bytes(&toks[ty_start..t]) {
                    out.push(Violation {
                        rule: "no-secret-debug",
                        path: path.to_string(),
                        line: toks[i].line,
                        ident: field.clone(),
                        message: format!(
                            "field `{field}` of `{struct_name}` holds raw key bytes \
                             but the struct derives Debug"
                        ),
                    });
                }
                i = t;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// True if a type token sequence is a raw byte container: `[u8; N]` or
/// `Vec<u8>` (possibly behind `pub`).
fn type_is_raw_bytes(ty: &[Tok]) -> bool {
    let sig: Vec<&Tok> = ty.iter().filter(|t| t.ident() != Some("pub")).collect();
    if sig.len() >= 2 && sig[0].is_punct('[') && sig[1].ident() == Some("u8") {
        return true;
    }
    sig.len() >= 3
        && sig[0].ident() == Some("Vec")
        && sig[1].is_punct('<')
        && sig[2].ident() == Some("u8")
}

// ---------------------------------------------------------------------
// Rule 2: no-variable-time-eq
// ---------------------------------------------------------------------

/// Identifier words that mark a comparison as authentication-relevant.
const AUTH_WORDS: &[&str] = &[
    "sig",
    "signature",
    "tag",
    "mac",
    "hmac",
    "digest",
    "measurement",
    "token",
];
/// Window idents that mark a comparison as structural, not secret.
const EQ_SUPPRESS: &[&str] = &["len", "is_empty", "count", "capacity"];

fn rule2_in_scope(path: &str) -> bool {
    path.starts_with("crates/deta-crypto/src/")
        || path.starts_with("crates/deta-transport/src/")
        || path.starts_with("crates/deta-sev-sim/src/")
        || path == "crates/deta-core/src/proxy.rs"
        || path == "crates/deta-core/src/aggregator.rs"
}

/// `==`/`!=` on signatures, MAC tags, digests, or measurements leaks how
/// many leading bytes matched; authentication comparisons must use
/// `deta_crypto::ct_eq`.
pub fn no_variable_time_eq(path: &str, toks: &[Tok]) -> Vec<Violation> {
    if !rule2_in_scope(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = toks.len();
    for i in 0..n.saturating_sub(1) {
        let eq = (toks[i].is_punct('=') && toks[i + 1].is_punct('=')
            // Not the tail of <=, >=, !=, ==, or a compound assign.
            && !(i > 0
                && matches!(&toks[i - 1].kind,
                    TokKind::Punct(c) if "<>!=+-*/%&|^".contains(*c))))
            || (toks[i].is_punct('!') && toks[i + 1].is_punct('='));
        if !eq {
            continue;
        }
        let lo = i.saturating_sub(6);
        let hi = (i + 8).min(n);
        let window = &toks[lo..hi];
        if window
            .iter()
            .any(|t| t.ident().is_some_and(|id| has_word(id, EQ_SUPPRESS)))
        {
            continue;
        }
        let trigger = window
            .iter()
            .find(|t| t.ident().is_some_and(|id| has_word(id, AUTH_WORDS)));
        if let Some(t) = trigger {
            let ident = t.ident().unwrap_or_default().to_string();
            out.push(Violation {
                rule: "no-variable-time-eq",
                path: path.to_string(),
                line: toks[i].line,
                ident: ident.clone(),
                message: format!(
                    "`==`/`!=` near `{ident}` compares authentication material \
                     in variable time; use deta_crypto::ct_eq"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 3: deterministic-iteration
// ---------------------------------------------------------------------

const RULE3_FILES: &[&str] = &[
    "mapper.rs",
    "shuffle.rs",
    "wire.rs",
    "transform.rs",
    "keybroker.rs",
];

fn rule3_in_scope(path: &str) -> bool {
    path.contains("/src/") && RULE3_FILES.iter().any(|f| path.ends_with(&format!("/{f}")))
}

/// Permutation derivation, partition layout, and wire encoding must be
/// bit-reproducible across every party and aggregator; `HashMap` /
/// `HashSet` iteration order is randomized per process and silently
/// breaks `Trans`/`Trans^-1` symmetry. Use `BTreeMap` or vectors.
pub fn deterministic_iteration(path: &str, toks: &[Tok]) -> Vec<Violation> {
    if !rule3_in_scope(path) {
        return Vec::new();
    }
    toks.iter()
        .filter(|t| matches!(t.ident(), Some("HashMap" | "HashSet")))
        .map(|t| {
            let ident = t.ident().unwrap_or_default().to_string();
            Violation {
                rule: "deterministic-iteration",
                path: path.to_string(),
                line: t.line,
                ident: ident.clone(),
                message: format!(
                    "`{ident}` in permutation-critical code has nondeterministic \
                     iteration order; use BTreeMap/BTreeSet or a Vec"
                ),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rule 4: no-panic-in-aggregation
// ---------------------------------------------------------------------

const RULE4_FILES: &[&str] = &[
    "crates/deta-core/src/agg.rs",
    "crates/deta-core/src/aggregator.rs",
    "crates/deta-core/src/party.rs",
    "crates/deta-core/src/proxy.rs",
    "crates/deta-core/src/mapper.rs",
    "crates/deta-core/src/recovery.rs",
    "crates/deta-core/src/wire.rs",
];

fn rule4_in_scope(path: &str) -> bool {
    RULE4_FILES.contains(&path)
        || path.starts_with("crates/deta-transport/src/")
        // The runtime's actor loops and supervisor process frames from
        // every node; a reachable panic there takes down the deployment.
        || path.starts_with("crates/deta-runtime/src/")
        // The socket bridge parses attacker-reachable bytes straight off
        // TCP; a reachable panic there is a remote kill switch.
        || path.starts_with("crates/deta-socket/src/")
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// A panic in an aggregator, party, proxy, or transport hot path is a
/// remote denial-of-service: any peer (or byzantine party) that can
/// reach the code path can take the node down. Protocol code must return
/// errors; `assert!` of internal invariants is allowed.
pub fn no_panic_in_aggregation(path: &str, toks: &[Tok]) -> Vec<Violation> {
    if !rule4_in_scope(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = toks.len();
    for i in 0..n {
        let Some(id) = toks[i].ident() else { continue };
        let method_call = (id == "unwrap" || id == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < n
            && toks[i + 1].is_punct('(');
        let macro_call = PANIC_MACROS.contains(&id) && i + 1 < n && toks[i + 1].is_punct('!');
        if method_call || macro_call {
            out.push(Violation {
                rule: "no-panic-in-aggregation",
                path: path.to_string(),
                line: toks[i].line,
                ident: id.to_string(),
                message: format!(
                    "`{id}` can panic in a protocol hot path (remote DoS); \
                     return an error instead"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 5: no-truncating-cast
// ---------------------------------------------------------------------

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn rule5_in_scope(path: &str) -> bool {
    path.ends_with("/src/wire.rs")
}

/// `as` casts to narrow integers silently truncate; on the wire that
/// corrupts length prefixes and frame layout (a 4 GiB payload whose
/// `len as u32` wraps decodes as a different message). Use `try_from`.
pub fn no_truncating_cast(path: &str, toks: &[Tok]) -> Vec<Violation> {
    if !rule5_in_scope(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = toks.len();
    for i in 0..n.saturating_sub(1) {
        if toks[i].ident() != Some("as") {
            continue;
        }
        let Some(ty) = toks[i + 1].ident() else {
            continue;
        };
        if NARROW_TYPES.contains(&ty) {
            out.push(Violation {
                rule: "no-truncating-cast",
                path: path.to_string(),
                line: toks[i].line,
                ident: ty.to_string(),
                message: format!(
                    "`as {ty}` silently truncates in wire serialization; \
                     use {ty}::try_from and propagate the error"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 6: no-secret-telemetry
// ---------------------------------------------------------------------

/// Telemetry sink calls whose arguments leave the trust boundary: they
/// land in flight-recorder rings, JSONL trace dumps, and Prometheus
/// snapshots that operators read outside any CVM.
const TELEMETRY_SINKS: &[&str] = &[
    "event",
    "span",
    "counter_add",
    "histogram_observe",
    "with_field",
];

/// Identifier words that mark a value as secret or sealed material.
const TELEMETRY_SECRET_WORDS: &[&str] = &[
    "sealed",
    "secret",
    "signing",
    "signature",
    "sk",
    "private",
    "key",
    "keys",
    "token",
    "seed",
];

/// Telemetry must stay secret-free *by construction*: field values are
/// restricted to the closed `TelemetryValue` set, but nothing in the
/// type system stops a caller from stringifying a sealed fragment or a
/// signing key into one. This rule scans every telemetry sink call —
/// `event`, `span`, `counter_add`, `histogram_observe`, `with_field` —
/// and flags any argument identifier whose name marks it as secret
/// material. A file is in scope once it names `deta_telemetry`; string
/// literals (metric and field *names*) are opaque and never trigger.
pub fn no_secret_telemetry(path: &str, toks: &[Tok]) -> Vec<Violation> {
    if !toks.iter().any(|t| t.ident() == Some("deta_telemetry")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = toks.len();
    let mut i = 0;
    while i < n {
        let is_sink = toks[i]
            .ident()
            .is_some_and(|id| TELEMETRY_SINKS.contains(&id));
        if !is_sink || i + 1 >= n || !toks[i + 1].is_punct('(') {
            i += 1;
            continue;
        }
        // `fn event(..)` defines a sink rather than feeding one.
        if i > 0 && toks[i - 1].ident() == Some("fn") {
            i += 1;
            continue;
        }
        let sink = toks[i].ident().unwrap_or_default().to_string();
        let close = balanced_end(toks, i + 1, '(', ')');
        let args_end = close.saturating_sub(1).max(i + 2);
        let mut seen: Vec<&str> = Vec::new();
        for t in &toks[i + 2..args_end.min(n)] {
            let Some(id) = t.ident() else { continue };
            if has_word(id, TELEMETRY_SECRET_WORDS) && !seen.contains(&id) {
                seen.push(id);
                out.push(Violation {
                    rule: "no-secret-telemetry",
                    path: path.to_string(),
                    line: t.line,
                    ident: id.to_string(),
                    message: format!(
                        "`{id}` names secret material but flows into telemetry \
                         sink `{sink}`; traces and metrics leave the CVM"
                    ),
                });
            }
        }
        i = close.max(i + 1);
    }
    out
}

// ---------------------------------------------------------------------
// Rule 8: channel-liveness
// ---------------------------------------------------------------------

fn rule8_in_scope(path: &str) -> bool {
    path.starts_with("crates/deta-runtime/src/") || path.starts_with("crates/deta-transport/src/")
}

/// Blocking waits without a bound are how a lost wake-up becomes a hung
/// deployment: `Condvar::wait` (one argument, no timeout) and a bare
/// `.recv()` in actor loops park a thread forever if the peer dies
/// between check and wait. Use the `_timeout` variants or a supervised
/// loop. The transport's `recv` is a non-blocking pop and is exempt;
/// multi-argument `wait(..)` methods (the supervisor's bounded wait)
/// are not Condvar waits and are exempt by arity.
pub fn channel_liveness(fa: &FileAnalysis) -> Vec<Violation> {
    if !rule8_in_scope(&fa.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &fa.fns {
        for c in &f.calls {
            if !c.is_method || c.is_macro {
                continue;
            }
            let argc = call_arity(fa, c);
            if c.callee == "wait" && argc == 1 {
                out.push(Violation {
                    rule: "channel-liveness",
                    path: fa.path.clone(),
                    line: c.line,
                    ident: "wait".to_string(),
                    message: format!(
                        "`Condvar::wait` without a timeout in fn `{}` parks the thread \
                         forever on a lost wake-up; use wait_timeout",
                        f.name
                    ),
                });
            }
            if c.callee == "recv" && argc == 0 && fa.path.starts_with("crates/deta-runtime/src/") {
                out.push(Violation {
                    rule: "channel-liveness",
                    path: fa.path.clone(),
                    line: c.line,
                    ident: "recv".to_string(),
                    message: format!(
                        "bare `.recv()` in fn `{}` blocks without a timeout or \
                         supervision path; use recv_timeout",
                        f.name
                    ),
                });
            }
        }
    }
    out
}

/// Number of top-level arguments at a call site.
fn call_arity(fa: &FileAnalysis, c: &crate::parse::CallSite) -> usize {
    let (s, e) = c.args;
    if s >= e {
        return 0;
    }
    split_top_level(&fa.toks, s, e, ',')
        .iter()
        .filter(|(a, b)| a < b)
        .count()
}

/// Cross-function Mutex acquisition order, per crate. Each function
/// contributes ordered pairs of distinct lock identities (the receiver
/// of `.lock()` or the last argument identifier of the workspace's
/// poison-recovering `lock(&...)` helper); two functions acquiring the
/// same pair in opposite orders is a latent deadlock the threaded
/// deployment will eventually schedule.
pub fn lock_order(files: &[&FileAnalysis]) -> Vec<Violation> {
    use std::collections::BTreeMap;
    // (first, second) -> first witness (path, line, fn name).
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let mut out = Vec::new();
    for fa in files {
        if !rule8_in_scope(&fa.path) {
            continue;
        }
        for f in &fa.fns {
            let mut seq: Vec<(String, u32)> = Vec::new();
            for c in &f.calls {
                if c.callee != "lock" || c.is_macro {
                    continue;
                }
                let identity = if c.is_method {
                    c.receiver.clone()
                } else {
                    let (s, e) = c.args;
                    fa.toks[s..e.min(fa.toks.len())]
                        .iter()
                        .rev()
                        .find_map(|t| t.ident())
                        .map(str::to_string)
                };
                if let Some(id) = identity {
                    seq.push((id, c.line));
                }
            }
            for i in 0..seq.len() {
                for j in i + 1..seq.len() {
                    let (a, _) = &seq[i];
                    let (b, line_b) = &seq[j];
                    if a == b {
                        continue;
                    }
                    let key = (a.clone(), b.clone());
                    let rev = (b.clone(), a.clone());
                    if let Some((wp, wl, wf)) = edges.get(&rev) {
                        out.push(Violation {
                            rule: "channel-liveness",
                            path: fa.path.clone(),
                            line: *line_b,
                            ident: b.clone(),
                            message: format!(
                                "fn `{}` locks `{a}` then `{b}`, but fn `{wf}` \
                                 ({wp}:{wl}) acquires them in the opposite order; \
                                 inconsistent lock order deadlocks under contention",
                                f.name
                            ),
                        });
                    } else {
                        edges
                            .entry(key)
                            .or_insert_with(|| (fa.path.clone(), *line_b, f.name.clone()));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 9: exhaustive-handling
// ---------------------------------------------------------------------

/// Protocol enums whose silent partial handling this rule polices.
const PROTOCOL_ENUMS: &[&str] = &["Msg", "CtlMsg", "WireMsg"];

/// A `match` over a protocol message enum whose wildcard arm has an
/// empty body silently discards every variant added after the match was
/// written — exactly how a new control message becomes a no-op on old
/// handlers. Enumerate the intentionally-ignored variants, or bind the
/// wildcard (`other => ...`) and route it to a counted drop.
pub fn exhaustive_handling(fa: &FileAnalysis) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &fa.fns {
        for m in &f.matches {
            let enum_name = m.arms.iter().find_map(|arm| {
                let (s, e) = arm.pat;
                let toks = &fa.toks[s..e.min(fa.toks.len())];
                toks.iter().enumerate().find_map(|(i, t)| {
                    t.ident()
                        .filter(|id| PROTOCOL_ENUMS.contains(id))
                        .filter(|_| {
                            i + 2 < toks.len()
                                && toks[i + 1].is_punct(':')
                                && toks[i + 2].is_punct(':')
                        })
                })
            });
            let Some(enum_name) = enum_name else { continue };
            for arm in &m.arms {
                if arm.is_bare_wildcard(&fa.toks) && arm.body_is_empty(&fa.toks) {
                    out.push(Violation {
                        rule: "exhaustive-handling",
                        path: fa.path.clone(),
                        line: arm.line,
                        ident: enum_name.to_string(),
                        message: format!(
                            "wildcard arm in fn `{}` silently discards `{enum_name}` \
                             variants; enumerate the ignored variants or route them \
                             to a counted drop",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Shared balanced-delimiter scan (forwarded to the lexer's helper
/// semantics, local to avoid exposing lexer internals).
fn balanced_end(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let n = toks.len();
    let mut depth = 0usize;
    let mut j = i;
    // Allow being called either at the opening punct or just before it.
    while j < n && !toks[j].is_punct(open) {
        if j > i + 2 {
            return j;
        }
        j += 1;
    }
    while j < n {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    n
}
