//! Per-crate call graph over the item-level parse.
//!
//! Resolution is purely name-based: a call site `f(..)` (or `x.f(..)`,
//! `Path::f(..)`) resolves to every function named `f` in the same
//! crate. Without type information this over-approximates, which is the
//! right direction for a leak analysis — taint may flow along an edge
//! that the program never takes, but no real edge is missed inside the
//! crate boundary.

use crate::parse::FileAnalysis;
use std::collections::BTreeMap;

/// Identifies one function: `(index into the file list, index into that
/// file's `fns`)`.
pub type FnId = (usize, usize);

/// Name-indexed functions of one crate.
pub struct CrateGraph<'a> {
    /// The crate's files, in workspace scan order.
    pub files: Vec<&'a FileAnalysis>,
    /// Function name -> every definition with that name.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> CrateGraph<'a> {
    /// Indexes all functions of `files` (one crate's worth).
    pub fn new(files: Vec<&'a FileAnalysis>) -> CrateGraph<'a> {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, fa) in files.iter().enumerate() {
            for (gi, f) in fa.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
        CrateGraph { files, by_name }
    }

    /// Every definition a callee name may resolve to in this crate.
    pub fn resolve(&self, callee: &str) -> &[FnId] {
        self.by_name.get(callee).map_or(&[], Vec::as_slice)
    }

    /// Resolves a call site, using its shape to narrow the candidates:
    /// `Foo::f(..)` only reaches `fn f` inside `impl Foo` (`Self::f`
    /// uses the caller's own impl), `x.f(..)` reaches any impl'd `fn f`,
    /// and a bare `f(..)` prefers free functions. A qualified call whose
    /// qualifier matches no impl in the crate resolves to nothing — the
    /// target is another crate's (or std's) constructor, and smearing it
    /// over same-named local functions would poison the analysis.
    pub fn resolve_call(
        &self,
        call: &crate::parse::CallSite,
        caller_owner: Option<&str>,
    ) -> Vec<FnId> {
        let candidates = self.resolve(&call.callee);
        let owner_of = |id: &FnId| self.item(*id).owner.as_deref();
        if let Some(q) = &call.qualifier {
            let q = if q == "Self" {
                match caller_owner {
                    Some(o) => o,
                    None => return Vec::new(),
                }
            } else {
                q.as_str()
            };
            return candidates
                .iter()
                .filter(|id| owner_of(id) == Some(q))
                .copied()
                .collect();
        }
        if call.is_method {
            return candidates
                .iter()
                .filter(|id| owner_of(id).is_some())
                .copied()
                .collect();
        }
        let free: Vec<FnId> = candidates
            .iter()
            .filter(|id| owner_of(id).is_none())
            .copied()
            .collect();
        if free.is_empty() {
            candidates.to_vec()
        } else {
            free
        }
    }

    /// All function ids in deterministic order.
    pub fn all_fns(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, fa) in self.files.iter().enumerate() {
            for gi in 0..fa.fns.len() {
                out.push((fi, gi));
            }
        }
        out
    }

    /// The function item for `id`.
    pub fn item(&self, id: FnId) -> &crate::parse::FnItem {
        &self.files[id.0].fns[id.1]
    }
}

/// Groups parsed files by crate (see [`FileAnalysis::crate_name`]),
/// keeping deterministic order.
pub fn group_by_crate(files: &[FileAnalysis]) -> Vec<(String, CrateGraph<'_>)> {
    let mut groups: BTreeMap<&str, Vec<&FileAnalysis>> = BTreeMap::new();
    for fa in files {
        groups.entry(fa.crate_name()).or_default().push(fa);
    }
    groups
        .into_iter()
        .map(|(name, members)| (name.to_string(), CrateGraph::new(members)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_per_crate() {
        let a = FileAnalysis::new("crates/deta-core/src/a.rs", "fn shared() {} fn only_a() {}");
        let b = FileAnalysis::new("crates/deta-core/src/b.rs", "fn shared() {}");
        let c = FileAnalysis::new("crates/deta-runtime/src/c.rs", "fn shared() {}");
        let files = vec![a, b, c];
        let groups = group_by_crate(&files);
        assert_eq!(groups.len(), 2);
        let core = &groups.iter().find(|(n, _)| n == "deta-core").unwrap().1;
        assert_eq!(core.resolve("shared").len(), 2);
        assert_eq!(core.resolve("only_a").len(), 1);
        assert!(core.resolve("missing").is_empty());
        let rt = &groups.iter().find(|(n, _)| n == "deta-runtime").unwrap().1;
        assert_eq!(rt.resolve("shared").len(), 1);
    }
}
