//! Rule 7: `secret-taint-flow` — interprocedural secret-taint dataflow.
//!
//! The token rules catch a secret *named* at a sink; they are defeated
//! by one rename (`let leaked = signing_key; format!("{leaked:?}")`).
//! This pass closes that hole: taint is seeded at secret-named
//! identifiers and secret-typed parameters, propagated through
//! `let`-bindings and intra-crate calls (via [`crate::graph`] summaries),
//! and reported wherever a tainted value reaches a sink — `format!`-family
//! macros (Debug/Display/error-message construction), telemetry emit
//! sites, and wire `encode` outside sealing code.
//!
//! Every violation message carries the provenance chain (`leaked` ←
//! `signing_key`) so the finding is actionable without re-running the
//! analysis by hand.

use crate::graph::{group_by_crate, CrateGraph, FnId};
use crate::parse::{split_top_level, FileAnalysis, FnItem, Range};
use crate::rules::{has_word, Violation};
use std::collections::BTreeMap;

/// Identifier words that seed taint. Deliberately narrower than the
/// token rules' word lists: taint spreads, so a falsely-seeded public
/// value would flag every downstream use.
const SOURCE_WORDS: &[&str] = &["secret", "signing", "private", "sealed", "sk"];

/// Words that mark an identifier as public despite a source word
/// (`verifying_key`, `public_seed`).
const PUBLIC_WORDS: &[&str] = &["public", "verifying", "pub"];

/// Method calls that launder taint: structural properties of a secret
/// (its length, emptiness) are not the secret.
const SANITIZERS: &[&str] = &["len", "is_empty", "count", "capacity"];

/// Macros whose formatted output leaves the trust boundary (logs,
/// error strings, panic payloads).
const FORMAT_MACROS: &[&str] = &[
    "format",
    "println",
    "print",
    "eprintln",
    "eprint",
    "write",
    "writeln",
    "panic",
    "assert",
    "debug_assert",
];

/// Telemetry sink callees (mirrors rule 6's list).
const TELEMETRY_SINKS: &[&str] = &[
    "event",
    "span",
    "counter_add",
    "histogram_observe",
    "with_field",
];

/// Crates inside the trust boundary, where a secret reaching a sink is
/// a leak. Operator tooling (deta-cli, deta-bench, deta-simnet) formats
/// *public* seeds and config keys constantly and is deliberately out of
/// scope, as is the linter itself.
fn in_scope(path: &str) -> bool {
    const PREFIXES: &[&str] = &[
        "src/",
        "crates/deta-core/src/",
        "crates/deta-crypto/src/",
        "crates/deta-transport/src/",
        "crates/deta-runtime/src/",
        "crates/deta-socket/src/",
        "crates/deta-telemetry/src/",
        "crates/deta-sev-sim/src/",
        "crates/deta-paillier/src/",
        "crates/deta-bignum/src/",
    ];
    PREFIXES.iter().any(|p| path.starts_with(p))
}

/// True when `ident` is a taint source by name.
fn is_source(ident: &str) -> bool {
    has_word(ident, SOURCE_WORDS) && !has_word(ident, PUBLIC_WORDS)
}

/// True when a parameter's declared type names secret material
/// (`SealedSecret`, `SigningKey`, …).
fn type_is_secret(fa: &FileAnalysis, ty: Range) -> bool {
    fa.toks[ty.0..ty.1.min(fa.toks.len())]
        .iter()
        .filter_map(|t| t.ident())
        .any(is_source)
}

/// Per-function dataflow summary used across call edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FnSummary {
    /// The function's return value is tainted regardless of arguments
    /// (it manufactures or loads secret material).
    returns_tainted: bool,
    /// `param_to_sink[i]`: a tainted i-th argument reaches a sink
    /// inside this function (or one it calls).
    param_to_sink: Vec<bool>,
}

/// One tainted-value-reaches-sink event inside a function.
struct SinkHit {
    line: u32,
    ident: String,
    sink: String,
    origin: Option<String>,
}

/// The result of propagating a seed set through one function.
struct TaintState {
    /// Tainted identifier -> the source identifier it descends from.
    tainted: BTreeMap<String, String>,
    hits: Vec<SinkHit>,
}

/// Runs the pass over every parsed file and returns violations for
/// in-scope files.
pub fn check_taint(files: &[FileAnalysis]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (_crate_name, graph) in group_by_crate(files) {
        let summaries = compute_summaries(&graph);
        for id in graph.all_fns() {
            let fa = graph.files[id.0];
            if !in_scope(&fa.path) {
                continue;
            }
            let f = graph.item(id);
            let state = propagate(fa, f, &BTreeMap::new(), true, &graph, &summaries);
            for hit in state.hits {
                let via = hit
                    .origin
                    .as_ref()
                    .filter(|o| **o != hit.ident)
                    .map(|o| format!(" (tainted by `{o}`)"))
                    .unwrap_or_default();
                out.push(Violation {
                    rule: "secret-taint-flow",
                    path: fa.path.clone(),
                    line: hit.line,
                    ident: hit.ident.clone(),
                    message: format!(
                        "`{}`{via} reaches {} in fn `{}`; secret material must not \
                         cross this sink",
                        hit.ident, hit.sink, f.name
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.ident).cmp(&(&b.path, b.line, &b.ident)));
    out.dedup_by(|a, b| (&a.path, a.line, &a.ident) == (&b.path, b.line, &b.ident));
    out
}

/// Computes fixpoint summaries for every function in the crate.
fn compute_summaries(graph: &CrateGraph<'_>) -> BTreeMap<FnId, FnSummary> {
    let mut summaries: BTreeMap<FnId, FnSummary> = BTreeMap::new();
    // Bounded fixpoint: each round can only turn bits on, and chains
    // longer than the iteration bound do not occur in practice.
    for _ in 0..6 {
        let mut changed = false;
        for id in graph.all_fns() {
            let fa = graph.files[id.0];
            let f = graph.item(id);
            let next = summarize(fa, f, graph, &summaries);
            if summaries.get(&id) != Some(&next) {
                summaries.insert(id, next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Builds one function's summary under the current summary map.
fn summarize(
    fa: &FileAnalysis,
    f: &FnItem,
    graph: &CrateGraph<'_>,
    summaries: &BTreeMap<FnId, FnSummary>,
) -> FnSummary {
    // Intrinsic run: seeds are the function's own secret-named /
    // secret-typed values.
    let intrinsic = propagate(fa, f, &BTreeMap::new(), true, graph, summaries);
    // A fn without a declared return type returns `()`: nothing flows
    // out of it, whatever its tail tokens mention.
    let returns_tainted = f.has_ret
        && (is_source(&f.name)
            || f.returns.iter().any(|r| {
                range_taint(fa, f, *r, &intrinsic.tainted, true, graph, summaries).is_some()
            }));
    // Per-parameter runs: does taint injected at param i reach a sink?
    let param_to_sink = f
        .params
        .iter()
        .map(|p| {
            if p.name.is_empty() {
                return false; // `self` receivers are not tracked.
            }
            let mut seeds = BTreeMap::new();
            seeds.insert(p.name.clone(), p.name.clone());
            !propagate(fa, f, &seeds, false, graph, summaries)
                .hits
                .is_empty()
        })
        .collect();
    FnSummary {
        returns_tainted,
        param_to_sink,
    }
}

/// Propagates taint through one function body and collects sink hits.
///
/// `use_sources` controls whether secret-named identifiers seed taint
/// inline (the real analysis) or only the explicit `seeds` count (the
/// per-parameter summary probes).
fn propagate(
    fa: &FileAnalysis,
    f: &FnItem,
    seeds: &BTreeMap<String, String>,
    use_sources: bool,
    graph: &CrateGraph<'_>,
    summaries: &BTreeMap<FnId, FnSummary>,
) -> TaintState {
    let mut tainted = seeds.clone();
    if use_sources {
        for p in &f.params {
            if !p.name.is_empty() && !is_source(&p.name) && type_is_secret(fa, p.ty) {
                tainted.insert(p.name.clone(), p.name.clone());
            }
        }
    }
    // Let-binding fixpoint (loops can carry taint backwards through the
    // binding list, so iterate until stable).
    for _ in 0..8 {
        let mut changed = false;
        for l in &f.lets {
            if l.names.iter().all(|n| tainted.contains_key(n)) && !l.names.is_empty() {
                continue;
            }
            if let Some(origin) =
                range_taint(fa, f, l.init, &tainted, use_sources, graph, summaries)
            {
                for n in &l.names {
                    if tainted.insert(n.clone(), origin.clone()).is_none() {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let hits = collect_sinks(fa, f, &tainted, use_sources, graph, summaries);
    TaintState { tainted, hits }
}

/// If the token range carries taint, returns the originating source
/// identifier. Sanitized occurrences (`secret.len()`) do not count;
/// calls to functions whose summaries say "returns tainted" do.
fn range_taint(
    fa: &FileAnalysis,
    f: &FnItem,
    range: Range,
    tainted: &BTreeMap<String, String>,
    use_sources: bool,
    graph: &CrateGraph<'_>,
    summaries: &BTreeMap<FnId, FnSummary>,
) -> Option<String> {
    let (s, e) = range;
    let e = e.min(fa.toks.len());
    for i in s..e {
        let t = &fa.toks[i];
        if let Some(id) = t.ident() {
            let hit = tainted.contains_key(id) || (use_sources && is_source(id));
            if hit && !occurrence_sanitized(fa, i, e) {
                return Some(origin_of(id, tainted));
            }
        }
        if let Some(caps) = t.str_captures() {
            for c in caps {
                if tainted.contains_key(c.as_str()) || (use_sources && is_source(c)) {
                    return Some(origin_of(c, tainted));
                }
            }
        }
    }
    // A call to a function that manufactures secret material taints the
    // range even when no identifier does (`let k = load_keypair().1`).
    for c in calls_in(fa, range) {
        if graph
            .resolve_call(c, f.owner.as_deref())
            .iter()
            .any(|id| summaries.get(id).is_some_and(|s| s.returns_tainted))
        {
            return Some(c.callee.clone());
        }
    }
    None
}

/// The source identifier `id` descends from (itself when seeded here).
fn origin_of(id: &str, tainted: &BTreeMap<String, String>) -> String {
    tainted.get(id).cloned().unwrap_or_else(|| id.to_string())
}

/// True when the identifier occurrence at `i` is immediately laundered
/// through a sanitizing method (`x.len()`).
fn occurrence_sanitized(fa: &FileAnalysis, i: usize, end: usize) -> bool {
    i + 2 < end
        && fa.toks[i + 1].is_punct('.')
        && fa.toks[i + 2]
            .ident()
            .is_some_and(|m| SANITIZERS.contains(&m))
}

/// Call sites of the enclosing file whose callee lies inside `range`.
fn calls_in(fa: &FileAnalysis, range: Range) -> impl Iterator<Item = &crate::parse::CallSite> {
    fa.fns
        .iter()
        .flat_map(|f| f.calls.iter())
        .filter(move |c| c.callee_pos() >= range.0 && c.callee_pos() < range.1)
}

/// Scans every call in the function for taint crossing a sink.
fn collect_sinks(
    fa: &FileAnalysis,
    f: &FnItem,
    tainted: &BTreeMap<String, String>,
    use_sources: bool,
    graph: &CrateGraph<'_>,
    summaries: &BTreeMap<FnId, FnSummary>,
) -> Vec<SinkHit> {
    let mut hits = Vec::new();
    let fn_is_sealing = has_word(&f.name, &["seal", "sealed", "encrypt", "wrap"]);
    let file_uses_telemetry = fa.toks.iter().any(|t| t.ident() == Some("deta_telemetry"));
    for c in &f.calls {
        let (s, e) = (c.args.0, c.args.1.min(fa.toks.len()));
        // --- Sink 1: format-family macros -------------------------------
        if c.is_macro && FORMAT_MACROS.contains(&c.callee.as_str()) {
            for i in s..e {
                let t = &fa.toks[i];
                if let Some(id) = t.ident() {
                    let hit = tainted.contains_key(id) || (use_sources && is_source(id));
                    if hit && !occurrence_sanitized(fa, i, e) {
                        hits.push(SinkHit {
                            line: t.line,
                            ident: id.to_string(),
                            sink: format!("`{}!` output", c.callee),
                            origin: Some(origin_of(id, tainted)),
                        });
                    }
                }
                if let Some(caps) = t.str_captures() {
                    for cap in caps {
                        let hit =
                            tainted.contains_key(cap.as_str()) || (use_sources && is_source(cap));
                        if hit {
                            hits.push(SinkHit {
                                line: t.line,
                                ident: cap.clone(),
                                sink: format!("`{}!` format capture", c.callee),
                                origin: Some(origin_of(cap, tainted)),
                            });
                        }
                    }
                }
            }
            continue;
        }
        if c.is_macro {
            continue;
        }
        // --- Sink 2: telemetry emit sites -------------------------------
        // Direct secret-named arguments are rule 6's finding; this pass
        // adds the renamed/aliased flows rule 6 cannot see.
        if file_uses_telemetry && TELEMETRY_SINKS.contains(&c.callee.as_str()) {
            for i in s..e {
                if let Some(id) = fa.toks[i].ident() {
                    if tainted.contains_key(id) && !is_source(id) && !occurrence_sanitized(fa, i, e)
                    {
                        hits.push(SinkHit {
                            line: fa.toks[i].line,
                            ident: id.to_string(),
                            sink: format!("telemetry sink `{}`", c.callee),
                            origin: Some(origin_of(id, tainted)),
                        });
                    }
                }
            }
        }
        // --- Sink 3: wire encode outside sealing code -------------------
        if c.callee == "encode" && !fn_is_sealing {
            let mut flag = |ident: &str, line: u32| {
                if !has_word(ident, &["sealed", "cipher", "ciphertext"]) {
                    hits.push(SinkHit {
                        line,
                        ident: ident.to_string(),
                        sink: "wire `encode` outside sealing code".to_string(),
                        origin: Some(origin_of(ident, tainted)),
                    });
                }
            };
            if let Some(recv) = &c.receiver {
                if tainted.contains_key(recv.as_str()) || (use_sources && is_source(recv)) {
                    flag(recv, c.line);
                }
            }
            for i in s..e {
                if let Some(id) = fa.toks[i].ident() {
                    let hit = tainted.contains_key(id) || (use_sources && is_source(id));
                    if hit && !occurrence_sanitized(fa, i, e) {
                        flag(id, fa.toks[i].line);
                    }
                }
            }
        }
        // --- Interprocedural: tainted argument to a leaking callee ------
        let targets = graph.resolve_call(c, f.owner.as_deref());
        if targets.is_empty() {
            continue;
        }
        let segs = split_top_level(&fa.toks, s, e, ',');
        for (si, seg) in segs.iter().enumerate() {
            let seg_origin = range_taint(fa, f, *seg, tainted, use_sources, graph, summaries);
            let Some(origin) = seg_origin else { continue };
            for &id in &targets {
                let Some(summary) = summaries.get(&id) else {
                    continue;
                };
                let callee_item = graph.item(id);
                // A method call's first declared param is `self`.
                let pi = si + usize::from(c.is_method && callee_item.has_self());
                if summary.param_to_sink.get(pi).copied().unwrap_or(false) {
                    hits.push(SinkHit {
                        line: c.line,
                        ident: c.callee.clone(),
                        sink: format!(
                            "fn `{}` (argument {} flows to a sink inside it)",
                            c.callee,
                            pi + 1
                        ),
                        origin: Some(origin.clone()),
                    });
                }
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        let fa = FileAnalysis::new("crates/deta-core/src/party.rs", src);
        check_taint(&[fa])
    }

    #[test]
    fn rename_evasion_is_caught() {
        let v = lint(
            "fn f(signing_key: &[u8]) {\n\
             let leaked = signing_key;\n\
             let msg = format!(\"{leaked:?}\");\n\
             }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "secret-taint-flow");
        assert_eq!(v[0].ident, "leaked");
        assert!(v[0].message.contains("signing_key"));
    }

    #[test]
    fn direct_source_in_format_is_caught() {
        let v = lint("fn f(sk: &[u8]) { println!(\"{:?}\", sk); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].ident, "sk");
    }

    #[test]
    fn sanitized_length_is_clean() {
        let v = lint(
            "fn f(signing_key: &[u8]) {\n\
             let n = signing_key.len();\n\
             println!(\"{n}\");\n\
             }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn public_key_is_not_a_source() {
        let v = lint("fn f(verifying_key: &[u8]) { println!(\"{verifying_key:?}\"); }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn interprocedural_leak_through_helper() {
        let v = lint(
            "fn dump(x: &[u8]) { println!(\"{x:?}\"); }\n\
             fn f(secret_share: &[u8]) { let y = secret_share; dump(y); }",
        );
        // The call site in `f` is flagged (dump's own body is clean in
        // isolation — `x` is not secret-named).
        assert!(v.iter().any(|v| v.ident == "dump"), "{v:?}");
    }

    #[test]
    fn tainted_return_flows_into_caller() {
        let v = lint(
            "fn load() -> Vec<u8> { let sk = read(); sk }\n\
             fn f() { let k = load(); println!(\"{k:?}\"); }",
        );
        assert!(v.iter().any(|v| v.ident == "k"), "{v:?}");
    }

    #[test]
    fn encode_of_sealed_bytes_is_clean() {
        let v = lint(
            "fn send(secret: &[u8]) { let sealed_buf = seal(secret); sealed_buf.encode(); }\n\
             fn seal(x: &[u8]) -> Vec<u8> { x.to_vec() }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn encode_of_raw_secret_is_flagged() {
        let v = lint("fn send(secret: &[u8]) { let raw = secret; raw.encode(); }");
        assert!(v.iter().any(|v| v.ident == "raw"), "{v:?}");
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let fa = FileAnalysis::new(
            "crates/deta-cli/src/main.rs",
            "fn f(secret: &[u8]) { println!(\"{secret:?}\"); }",
        );
        assert!(check_taint(&[fa]).is_empty());
    }
}
