//! A lightweight item-level parse over the lint token stream.
//!
//! This is deliberately not a Rust grammar: it recovers exactly the
//! structure the flow passes need — function items with their parameter
//! lists, `let`-bindings, call sites (plain, method, and macro), `match`
//! expressions with their arms, and `return`/tail expressions — while
//! staying total on arbitrary token soup. Everything is expressed as
//! index ranges into the file's token vector so the passes can re-scan
//! regions without copying.

use crate::lex::{strip_test_regions, tokenize, Tok, TokKind};

/// A half-open token index range `[start, end)`.
pub type Range = (usize, usize);

/// One parsed source file, ready for flow analysis.
pub struct FileAnalysis {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The test-stripped token stream.
    pub toks: Vec<Tok>,
    /// Every function item found (including nested ones).
    pub fns: Vec<FnItem>,
}

impl FileAnalysis {
    /// Tokenizes, strips test regions, and parses `src`.
    pub fn new(path: &str, src: &str) -> FileAnalysis {
        let toks = strip_test_regions(tokenize(src));
        let fns = parse_fns(&toks);
        FileAnalysis {
            path: path.to_string(),
            toks,
            fns,
        }
    }

    /// The crate this file belongs to (`crates/deta-core/src/x.rs` ->
    /// `deta-core`; the root package's `src/` -> `deta`).
    pub fn crate_name(&self) -> &str {
        if let Some(rest) = self.path.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("deta")
        } else {
            "deta"
        }
    }
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The bound name (`_` or the first pattern identifier); empty for
    /// `self` receivers.
    pub name: String,
    /// Token range of the declared type.
    pub ty: Range,
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Every identifier the pattern binds (`let Ok((a, b)) = ..` binds
    /// `a` and `b`).
    pub names: Vec<String>,
    /// Token range of the initializer expression.
    pub init: Range,
    /// Source line of the `let`.
    pub line: u32,
}

/// One call site: `f(..)`, `recv.f(..)`, `Path::f(..)`, or `f!(..)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (method or function name, or macro name).
    pub callee: String,
    /// True for `recv.f(..)`.
    pub is_method: bool,
    /// True for `f!(..)`.
    pub is_macro: bool,
    /// The receiver identifier for a method call when it is a plain
    /// identifier or field path tail (`self.state.lock()` -> `state`).
    pub receiver: Option<String>,
    /// The `Path` in `Path::f(..)`, when present.
    pub qualifier: Option<String>,
    /// Token range of the arguments (inside the delimiters).
    pub args: Range,
    /// Source line of the callee token.
    pub line: u32,
}

impl CallSite {
    /// Token index of the callee identifier.
    pub fn callee_pos(&self) -> usize {
        // Args start after `name(` or `name!(`.
        self.args
            .0
            .saturating_sub(if self.is_macro { 3 } else { 2 })
    }
}

/// One arm of a `match`.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Token range of the pattern (including any `if` guard).
    pub pat: Range,
    /// Token range of the arm body (inside braces for block bodies).
    pub body: Range,
    /// Source line of the pattern's first token.
    pub line: u32,
}

impl MatchArm {
    /// True if the pattern is exactly the bare wildcard `_` (no guard).
    pub fn is_bare_wildcard(&self, toks: &[Tok]) -> bool {
        let (s, e) = self.pat;
        e == s + 1 && toks[s].ident() == Some("_")
    }

    /// True if the body contains no tokens (or only the unit `()`).
    pub fn body_is_empty(&self, toks: &[Tok]) -> bool {
        let (s, e) = self.body;
        let body = &toks[s..e.min(toks.len())];
        body.is_empty() || (body.len() == 2 && body[0].is_punct('(') && body[1].is_punct(')'))
    }
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Token range of the scrutinee.
    pub scrutinee: Range,
    /// The arms in source order.
    pub arms: Vec<MatchArm>,
    /// Source line of the `match` keyword.
    pub line: u32,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` type this function belongs to, when any (`None` for
    /// free functions). Used for qualified-call resolution: `Foo::new()`
    /// must not resolve to every `fn new` in the crate.
    pub owner: Option<String>,
    /// Source line of the name token.
    pub line: u32,
    /// Parameters in declaration order (`self` receivers included as
    /// empty-named entries so argument indices line up with call sites).
    pub params: Vec<Param>,
    /// True when the signature declares a return type (`-> T`). A fn
    /// returning `()` has no return value for dataflow to follow.
    pub has_ret: bool,
    /// Token range of the body (inside the braces).
    pub body: Range,
    /// `let` bindings anywhere in the body.
    pub lets: Vec<LetBinding>,
    /// Call sites anywhere in the body.
    pub calls: Vec<CallSite>,
    /// `match` expressions anywhere in the body.
    pub matches: Vec<MatchExpr>,
    /// Token ranges of `return <expr>` statements plus the tail
    /// expression (tokens after the last top-level `;`), for return-taint
    /// summaries.
    pub returns: Vec<Range>,
}

impl FnItem {
    /// True when this is a method (declared with a `self` receiver).
    pub fn has_self(&self) -> bool {
        self.params.first().is_some_and(|p| p.name.is_empty())
    }
}

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "in", "as", "move", "unsafe",
    "fn", "impl", "pub", "use", "mod", "where", "break", "continue",
];

/// Parses every function item in the stream (nested functions are
/// discovered too, because scanning resumes at the body's first token).
pub fn parse_fns(toks: &[Tok]) -> Vec<FnItem> {
    let n = toks.len();
    let impls = impl_ranges(toks);
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if toks[i].ident() == Some("fn") && i + 1 < n {
            if let Some(mut item) = parse_fn(toks, i) {
                item.owner = impls
                    .iter()
                    .filter(|((s, e), _)| *s <= i && i < *e)
                    .max_by_key(|((s, _), _)| *s)
                    .map(|(_, name)| name.clone());
                let resume = item.body.0;
                out.push(item);
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Every `impl` block's body range paired with the implemented type's
/// name (the last path segment: `impl fmt::Debug for wire::Msg` ->
/// `Msg`, `impl<T> Store<T>` -> `Store`).
fn impl_ranges(toks: &[Tok]) -> Vec<(Range, String)> {
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if toks[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < n && toks[j].is_punct('<') {
            j = skip_angles(toks, j);
        }
        // The header runs to the body `{` at top level; the self type is
        // the segment after a top-level `for` when present.
        let mut ty_start = j;
        let mut body = None;
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match &toks[k].kind {
                TokKind::Punct(c) if "([".contains(*c) => depth += 1,
                TokKind::Punct(c) if ")]".contains(*c) => depth -= 1,
                TokKind::Ident(id) if id == "for" && depth == 0 => ty_start = k + 1,
                TokKind::Ident(id) if id == "where" && depth == 0 => {}
                TokKind::Punct('{') if depth == 0 => {
                    body = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(body) = body else {
            i += 1;
            continue;
        };
        // Last identifier before the type's generics (or the body /
        // where clause): the path's final segment.
        let mut name = None;
        for t in &toks[ty_start..body] {
            match &t.kind {
                TokKind::Punct('<') => break,
                TokKind::Ident(id) if id == "where" => break,
                TokKind::Ident(id) if id != "dyn" && id != "mut" => name = Some(id.clone()),
                _ => {}
            }
        }
        let end = balanced(toks, body, '{', '}');
        if let Some(name) = name {
            out.push(((body, end), name));
        }
        i = body + 1;
    }
    out
}

/// Parses one `fn` item whose `fn` keyword is at `i`. Returns `None` for
/// bodyless declarations (trait methods, extern decls) and malformed
/// streams.
fn parse_fn(toks: &[Tok], i: usize) -> Option<FnItem> {
    let n = toks.len();
    let name = toks.get(i + 1)?.ident()?.to_string();
    let line = toks[i + 1].line;
    let mut j = i + 2;
    // Generic parameters: skip `<...>` (arrow `->` cannot appear here).
    if j < n && toks[j].is_punct('<') {
        j = skip_angles(toks, j);
    }
    if j >= n || !toks[j].is_punct('(') {
        return None;
    }
    let params_end = balanced(toks, j, '(', ')');
    let params = parse_params(toks, j + 1, params_end.saturating_sub(1));
    // Find the body `{`, skipping the return type and where clause.
    // Angle depth guards against `Result<A, B>`; a `>` preceded by `-`
    // is an arrow, not a closer.
    let mut k = params_end;
    let mut angle = 0i32;
    let mut has_ret = false;
    loop {
        if k >= n {
            return None;
        }
        match &toks[k].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                if k > 0 && toks[k - 1].is_punct('-') {
                    has_ret = true;
                } else {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') if angle <= 0 => break,
            TokKind::Punct(';') if angle <= 0 => return None,
            _ => {}
        }
        k += 1;
    }
    let body_end = balanced(toks, k, '{', '}');
    let body = (k + 1, body_end.saturating_sub(1));
    let lets = parse_lets(toks, body);
    let calls = parse_calls(toks, body);
    let matches = parse_matches(toks, body);
    let returns = parse_returns(toks, body);
    Some(FnItem {
        name,
        owner: None, // Filled in by `parse_fns` from the impl map.
        has_ret,
        line,
        params,
        body,
        lets,
        calls,
        matches,
        returns,
    })
}

/// Parses a parameter list in `toks[start..end]`.
fn parse_params(toks: &[Tok], start: usize, end: usize) -> Vec<Param> {
    let mut out = Vec::new();
    for (seg_start, seg_end) in split_top_level(toks, start, end, ',') {
        let seg = &toks[seg_start..seg_end];
        if seg.is_empty() {
            continue;
        }
        // `self`, `&self`, `&mut self`, `mut self`.
        if seg
            .iter()
            .take(4)
            .any(|t| t.ident() == Some("self") || matches!(&t.kind, TokKind::Lifetime))
            && seg.iter().all(|t| !t.is_punct(':'))
        {
            out.push(Param {
                name: String::new(),
                ty: (seg_start, seg_end),
            });
            continue;
        }
        // Pattern runs to the top-level `:`; the type follows.
        let colon = find_top_level(toks, seg_start, seg_end, ':');
        let (pat_end, ty) = match colon {
            Some(c) => (c, (c + 1, seg_end)),
            None => (seg_end, (seg_end, seg_end)),
        };
        let name = toks[seg_start..pat_end]
            .iter()
            .filter_map(|t| t.ident())
            .find(|id| !matches!(*id, "mut" | "ref"))
            .unwrap_or("_")
            .to_string();
        out.push(Param { name, ty });
    }
    out
}

/// Parses every `let` binding inside `range` (at any nesting depth).
fn parse_lets(toks: &[Tok], range: Range) -> Vec<LetBinding> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].ident() != Some("let") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // `if let` / `while let` conditions end at the block `{`; a
        // plain `let`'s initializer may legitimately contain braces.
        let is_cond_let = i > start && matches!(toks[i - 1].ident(), Some("if" | "while"));
        // Find the binding `=` at relative depth 0, skipping comparison
        // and arrow compounds (none can appear before the initializer).
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut eq = None;
        while j < end {
            match &toks[j].kind {
                TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
                TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('=') if depth == 0 && angle <= 0 => {
                    // `<` and `>` are deliberately absent: a type
                    // ascription ending in `>` (`let x: Vec<u8> = ..`)
                    // is indistinguishable from `>=` at token level,
                    // and comparisons cannot occur before the binding
                    // `=` anyway.
                    let prev_compound = j > 0
                        && matches!(&toks[j - 1].kind,
                            TokKind::Punct(c) if "!=+-*/%&|^".contains(*c));
                    let next_compound =
                        j + 1 < end && matches!(&toks[j + 1].kind, TokKind::Punct('=' | '>'));
                    if !prev_compound && !next_compound {
                        eq = Some(j);
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i += 1;
            continue;
        };
        // Bound names: pattern identifiers before any top-level type
        // ascription, excluding keywords and constructor paths
        // (uppercase-initial).
        let pat_end = find_top_level(toks, i + 1, eq, ':').unwrap_or(eq);
        let names: Vec<String> = toks[i + 1..pat_end]
            .iter()
            .filter_map(|t| t.ident())
            .filter(|id| {
                !matches!(*id, "mut" | "ref" | "_")
                    && id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
            })
            .map(str::to_string)
            .collect();
        // Initializer: from after `=` to the top-level `;`, or to a
        // `let ... else` diverging block. An `else` preceded by `}` is an
        // `if/else` inside the initializer and does not terminate it.
        let mut k = eq + 1;
        let mut depth = 0i32;
        let mut init_end = end;
        while k < end {
            match &toks[k].kind {
                TokKind::Punct('{') if depth == 0 && is_cond_let => {
                    // The `if let` / `while let` body starts; the
                    // condition expression is over (Rust forbids bare
                    // struct literals in conditions).
                    init_end = k;
                    break;
                }
                TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
                TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
                TokKind::Punct(';') if depth == 0 => {
                    init_end = k;
                    break;
                }
                TokKind::Ident(id)
                    if id == "else" && depth == 0 && k > 0 && !toks[k - 1].is_punct('}') =>
                {
                    init_end = k;
                    break;
                }
                _ => {}
            }
            if depth < 0 {
                init_end = k;
                break;
            }
            k += 1;
        }
        out.push(LetBinding {
            names,
            init: (eq + 1, init_end),
            line,
        });
        i = eq + 1;
    }
    out
}

/// Parses every call site inside `range`.
fn parse_calls(toks: &[Tok], range: Range) -> Vec<CallSite> {
    let (start, end) = range;
    let mut out = Vec::new();
    for i in start..end {
        let Some(id) = toks[i].ident() else { continue };
        if CALLISH_KEYWORDS.contains(&id) {
            continue;
        }
        // Macro call: `id ! (` / `id ! [` / `id ! {`.
        if i + 2 < end && toks[i + 1].is_punct('!') {
            let open = match &toks[i + 2].kind {
                TokKind::Punct(c @ ('(' | '[' | '{')) => Some(*c),
                _ => None,
            };
            if let Some(open) = open {
                let close = matching_close(open);
                let args_end = balanced(toks, i + 2, open, close);
                out.push(CallSite {
                    callee: id.to_string(),
                    is_method: false,
                    is_macro: true,
                    receiver: None,
                    qualifier: None,
                    args: (i + 3, args_end.saturating_sub(1)),
                    line: toks[i].line,
                });
                continue;
            }
        }
        if i + 1 >= end || !toks[i + 1].is_punct('(') {
            continue;
        }
        // Skip definitions: `fn id(..)`.
        if i > 0 && toks[i - 1].ident() == Some("fn") {
            continue;
        }
        let args_end = balanced(toks, i + 1, '(', ')');
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let receiver = if is_method && i >= 2 {
            toks[i - 2].ident().map(str::to_string)
        } else {
            None
        };
        let qualifier = if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            toks[i - 3].ident().map(str::to_string)
        } else {
            None
        };
        out.push(CallSite {
            callee: id.to_string(),
            is_method,
            is_macro: false,
            receiver,
            qualifier,
            args: (i + 2, args_end.saturating_sub(1)),
            line: toks[i].line,
        });
    }
    out
}

/// Parses every `match` expression inside `range`.
fn parse_matches(toks: &[Tok], range: Range) -> Vec<MatchExpr> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].ident() != Some("match") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Scrutinee: to the first `{` at relative delimiter depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            match &toks[j].kind {
                TokKind::Punct(c) if "([".contains(*c) => depth += 1,
                TokKind::Punct(c) if ")]".contains(*c) => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            i += 1;
            continue;
        }
        let scrutinee = (i + 1, j);
        let body_end = balanced(toks, j, '{', '}').saturating_sub(1);
        let arms = parse_arms(toks, j + 1, body_end.min(end));
        out.push(MatchExpr {
            scrutinee,
            arms,
            line,
        });
        i = j + 1;
    }
    out
}

/// Parses match arms in `toks[start..end]` (inside the match braces).
fn parse_arms(toks: &[Tok], start: usize, end: usize) -> Vec<MatchArm> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        // Pattern: to `=>` at relative depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < end {
            match &toks[j].kind {
                TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
                TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
                TokKind::Punct('=') if depth == 0 && j + 1 < end && toks[j + 1].is_punct('>') => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        if body_start >= end {
            break;
        }
        let (body, next) = if toks[body_start].is_punct('{') {
            let close = balanced(toks, body_start, '{', '}');
            let mut nx = close;
            if nx < end && toks[nx].is_punct(',') {
                nx += 1;
            }
            ((body_start + 1, close.saturating_sub(1)), nx)
        } else {
            // Expression body: to `,` at relative depth 0, or arm list end.
            let mut depth = 0i32;
            let mut k = body_start;
            while k < end {
                match &toks[k].kind {
                    TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
                    TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            ((body_start, k), (k + 1).min(end))
        };
        out.push(MatchArm {
            pat: (pat_start, arrow),
            body,
            line: toks[pat_start].line,
        });
        i = next;
    }
    out
}

/// Collects `return <expr>` ranges plus the body's tail expression.
fn parse_returns(toks: &[Tok], range: Range) -> Vec<Range> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].ident() == Some("return") {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match &toks[j].kind {
                    TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
                    TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
                j += 1;
            }
            if j > i + 1 {
                out.push((i + 1, j));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Tail expression: tokens after the last top-level `;`.
    let mut last_semi = None;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(start) {
        match &t.kind {
            TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
            TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
            TokKind::Punct(';') if depth == 0 => last_semi = Some(k),
            _ => {}
        }
    }
    let tail_start = last_semi.map_or(start, |s| s + 1);
    if tail_start < end {
        out.push((tail_start, end));
    }
    out
}

/// Splits `toks[start..end]` at top-level occurrences of `sep`.
pub fn split_top_level(toks: &[Tok], start: usize, end: usize, sep: char) -> Vec<Range> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg_start = start;
    for i in start..end.min(toks.len()) {
        match &toks[i].kind {
            TokKind::Punct(c) if "([{".contains(*c) => depth += 1,
            TokKind::Punct(c) if ")]}".contains(*c) => depth -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if i == 0 || !toks[i - 1].is_punct('-') => angle -= 1,
            TokKind::Punct(c) if *c == sep && depth == 0 && angle <= 0 => {
                out.push((seg_start, i));
                seg_start = i + 1;
            }
            _ => {}
        }
    }
    if seg_start < end || out.is_empty() {
        out.push((seg_start, end));
    }
    out
}

/// Finds the first top-level occurrence of punct `c` in the range.
fn find_top_level(toks: &[Tok], start: usize, end: usize, c: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut angle = 0i32;
    for (i, t) in toks
        .iter()
        .enumerate()
        .take(end.min(toks.len()))
        .skip(start)
    {
        match &t.kind {
            TokKind::Punct(p) if "([{".contains(*p) => depth += 1,
            TokKind::Punct(p) if ")]}".contains(*p) => depth -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct(p) if *p == c && depth == 0 && angle <= 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Given `i` at an `open` punct, returns the index just past its match.
pub fn balanced(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let n = toks.len();
    let mut depth = 0usize;
    let mut j = i;
    while j < n {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    n
}

/// The closing delimiter matching `open`.
fn matching_close(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Skips `<...>` generics starting at `i` (at the `<`).
fn skip_angles(toks: &[Tok], i: usize) -> usize {
    let n = toks.len();
    let mut depth = 0i32;
    let mut j = i;
    while j < n {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> FileAnalysis {
        FileAnalysis::new("crates/deta-core/src/party.rs", src)
    }

    #[test]
    fn fn_items_params_and_body_are_found() {
        let fa = analyze(
            "pub fn seal(key: &[u8; 32], plain: &[u8]) -> Result<Vec<u8>, E> { body() }\n\
             fn decl_only(x: u32);\n",
        );
        assert_eq!(fa.fns.len(), 1);
        let f = &fa.fns[0];
        assert_eq!(f.name, "seal");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "key");
        assert_eq!(f.params[1].name, "plain");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].callee, "body");
    }

    #[test]
    fn self_methods_keep_argument_indices_aligned() {
        let fa = analyze("impl X { fn go(&mut self, round: u64) -> bool { true } }");
        let f = &fa.fns[0];
        assert!(f.has_self());
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "round");
    }

    #[test]
    fn lets_bind_pattern_names_and_initializers() {
        let fa = analyze(
            "fn f() {\n\
             let mut a = source();\n\
             let Ok((b, c)) = pair() else { return; };\n\
             let d: Vec<u8> = if x { y } else { z };\n\
             }",
        );
        let f = &fa.fns[0];
        assert_eq!(f.lets.len(), 3);
        assert_eq!(f.lets[0].names, ["a"]);
        assert_eq!(f.lets[1].names, ["b", "c"]);
        assert_eq!(f.lets[2].names, ["d"]);
        // let-else stops at `else`; if/else inside an initializer does not.
        let (s, e) = f.lets[1].init;
        assert!(fa.toks[s..e].iter().any(|t| t.ident() == Some("pair")));
        assert!(fa.toks[s..e].iter().all(|t| t.ident() != Some("return")));
        let (s2, e2) = f.lets[2].init;
        assert!(fa.toks[s2..e2].iter().any(|t| t.ident() == Some("z")));
    }

    #[test]
    fn calls_record_shape() {
        let fa =
            analyze("fn f() { g(1); self.state.lock(); Msg::decode(b); format!(\"{x}\", 1); }");
        let f = &fa.fns[0];
        let by_name = |n: &str| f.calls.iter().find(|c| c.callee == n).unwrap();
        assert!(!by_name("g").is_method);
        let lock = by_name("lock");
        assert!(lock.is_method);
        assert_eq!(lock.receiver.as_deref(), Some("state"));
        assert_eq!(by_name("decode").qualifier.as_deref(), Some("Msg"));
        assert!(by_name("format").is_macro);
    }

    #[test]
    fn match_arms_and_wildcards_are_parsed() {
        let fa = analyze(
            "fn f(m: Msg) {\n\
             match m {\n\
                 Msg::Hello { x } => handle(x),\n\
                 Msg::Bye if x > 1 => { a(); b(); }\n\
                 _ => {}\n\
             }\n\
             }",
        );
        let f = &fa.fns[0];
        assert_eq!(f.matches.len(), 1);
        let m = &f.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].is_bare_wildcard(&fa.toks));
        assert!(!m.arms[1].is_bare_wildcard(&fa.toks));
        assert!(m.arms[2].is_bare_wildcard(&fa.toks));
        assert!(!m.arms[1].body_is_empty(&fa.toks));
        assert!(m.arms[2].body_is_empty(&fa.toks));
    }

    #[test]
    fn returns_and_tail_expressions_are_collected() {
        let fa = analyze("fn f() -> u32 { if x { return early; } tail_value }");
        let f = &fa.fns[0];
        assert_eq!(f.returns.len(), 2);
        let has = |r: Range, id: &str| fa.toks[r.0..r.1].iter().any(|t| t.ident() == Some(id));
        assert!(has(f.returns[0], "early"));
        assert!(has(f.returns[1], "tail_value"));
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(analyze("").crate_name(), "deta-core");
        assert_eq!(FileAnalysis::new("src/lib.rs", "").crate_name(), "deta");
    }
}
