//! The `deta-lint` binary: lints the workspace and exits non-zero on
//! any unsuppressed violation or stale allowlist entry.
//!
//! Usage: `cargo run -p deta-lint [workspace-root]`. Without an
//! argument the workspace root is found by walking up from the current
//! directory to the first `Cargo.toml` declaring `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("deta-lint: no workspace root found (pass it as an argument)");
                return ExitCode::FAILURE;
            }
        },
    };
    match deta_lint::run_lint(&root) {
        Ok(report) => {
            println!("{report}");
            if report.files_scanned == 0 {
                // A clean report over zero files is a mispointed root,
                // not a clean workspace.
                eprintln!("deta-lint: no .rs files found under {}", root.display());
                return ExitCode::FAILURE;
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("deta-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
