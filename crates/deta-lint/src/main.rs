//! The `deta-lint` binary: lints the workspace and exits non-zero on
//! any unsuppressed violation or stale allowlist entry.
//!
//! Usage: `cargo run -p deta-lint [--json] [--self-check] [workspace-root]`.
//!
//! * `--json` prints the report as stable machine-readable JSON (the CI
//!   artifact format) instead of the human-readable listing.
//! * `--self-check` runs the deta-flow meta-check (fixture coverage for
//!   every rule, allowlist within budget) instead of linting.
//!
//! Without a root argument the workspace root is found by walking up
//! from the current directory to the first `Cargo.toml` declaring
//! `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut self_check = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args_os().skip(1) {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--self-check") => self_check = true,
            Some(s) if s.starts_with("--") => {
                eprintln!("deta-lint: unknown flag `{s}`");
                return ExitCode::FAILURE;
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }
    let root = match root_arg {
        Some(root) => root,
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("deta-lint: no workspace root found (pass it as an argument)");
                return ExitCode::FAILURE;
            }
        },
    };
    if self_check {
        return match deta_lint::self_check(&root) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(problems) => {
                eprintln!("deta-lint self-check failed:\n{problems}");
                ExitCode::FAILURE
            }
        };
    }
    match deta_lint::run_lint(&root) {
        Ok(report) => {
            if json {
                let text = report.to_json();
                // Self-guard: a schema regression must fail the gate
                // loudly, never ship a malformed CI artifact.
                if let Err(e) = deta_lint::validate_report_json(&text) {
                    eprintln!("deta-lint: emitted JSON violates the report schema: {e}");
                    return ExitCode::FAILURE;
                }
                println!("{text}");
            } else {
                println!("{report}");
            }
            if report.files_scanned == 0 {
                // A clean report over zero files is a mispointed root,
                // not a clean workspace.
                eprintln!("deta-lint: no .rs files found under {}", root.display());
                return ExitCode::FAILURE;
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("deta-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
