//! Hand-rolled parser for `lint-allow.toml`.
//!
//! The file is a flat list of `[[allow]]` tables with exactly four
//! string keys: `rule`, `path`, `identifier`, `reason`. Keeping the
//! grammar this small lets the linter stay dependency-free while still
//! reading a file that standard TOML tooling can edit.

use crate::rules::Violation;

/// One justified suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// The offending identifier at the site.
    pub identifier: String,
    /// One-line justification (must be non-empty).
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry covers `v`.
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule && self.path == v.path && self.identifier == v.ident
    }
}

/// Maximum number of entries; a growing allowlist means the rules are
/// wrong or the code is — either way it needs a human decision.
pub const MAX_ALLOW_ENTRIES: usize = 10;

/// Parses the allowlist text.
///
/// # Errors
///
/// Malformed lines, unknown keys, missing fields, empty reasons, and
/// more than [`MAX_ALLOW_ENTRIES`] entries are all hard errors: a lint
/// suppression file must never be silently misread.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<[Option<String>; 4]> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push([None, None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint-allow.toml:{}: expected `key = \"value\"`",
                lineno + 1
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
            return Err(format!(
                "lint-allow.toml:{}: value for `{key}` must be a quoted string",
                lineno + 1
            ));
        }
        let value = value[1..value.len() - 1].to_string();
        let Some(entry) = entries.last_mut() else {
            return Err(format!(
                "lint-allow.toml:{}: `{key}` outside an [[allow]] table",
                lineno + 1
            ));
        };
        let slot = match key {
            "rule" => 0,
            "path" => 1,
            "identifier" => 2,
            "reason" => 3,
            other => {
                return Err(format!(
                    "lint-allow.toml:{}: unknown key `{other}`",
                    lineno + 1
                ))
            }
        };
        if entry[slot].is_some() {
            return Err(format!(
                "lint-allow.toml:{}: duplicate key `{key}`",
                lineno + 1
            ));
        }
        entry[slot] = Some(value);
    }
    let mut out = Vec::with_capacity(entries.len());
    for (i, [rule, path, identifier, reason]) in entries.into_iter().enumerate() {
        let missing = |field: &str| format!("allow entry #{}: missing `{field}`", i + 1);
        let entry = AllowEntry {
            rule: rule.ok_or_else(|| missing("rule"))?,
            path: path.ok_or_else(|| missing("path"))?,
            identifier: identifier.ok_or_else(|| missing("identifier"))?,
            reason: reason.ok_or_else(|| missing("reason"))?,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!("allow entry #{}: reason must not be empty", i + 1));
        }
        out.push(entry);
    }
    if out.len() > MAX_ALLOW_ENTRIES {
        return Err(format!(
            "lint-allow.toml has {} entries; at most {MAX_ALLOW_ENTRIES} justified \
             suppressions are permitted",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Suppressions for deta-lint.
[[allow]]
rule = "no-panic-in-aggregation"
path = "crates/deta-core/src/wire.rs"
identifier = "unwrap"
reason = "example"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse_allowlist(SAMPLE).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "no-panic-in-aggregation");
        assert_eq!(entries[0].identifier, "unwrap");
    }

    #[test]
    fn empty_and_comment_only_files_are_fine() {
        assert!(parse_allowlist("").unwrap().is_empty());
        assert!(parse_allowlist("# nothing here\n").unwrap().is_empty());
    }

    #[test]
    fn matches_violation() {
        let entries = parse_allowlist(SAMPLE).unwrap();
        let v = Violation {
            rule: "no-panic-in-aggregation",
            path: "crates/deta-core/src/wire.rs".into(),
            line: 3,
            ident: "unwrap".into(),
            message: String::new(),
        };
        assert!(entries[0].matches(&v));
        let other = Violation {
            ident: "expect".into(),
            ..v
        };
        assert!(!entries[0].matches(&other));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let bad = "[[allow]]\nrule = \"r\"\npath = \"p\"\nidentifier = \"i\"\n";
        assert!(parse_allowlist(bad).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let bad = "[[allow]]\nrule = \"r\"\nline = \"12\"\n";
        assert!(parse_allowlist(bad).is_err());
    }

    #[test]
    fn entry_cap_is_enforced() {
        let one = "[[allow]]\nrule = \"r\"\npath = \"p\"\nidentifier = \"i\"\nreason = \"x\"\n";
        let many = one.repeat(MAX_ALLOW_ENTRIES + 1);
        let err = parse_allowlist(&many).unwrap_err();
        assert!(err.contains("at most"));
        assert!(parse_allowlist(&one.repeat(MAX_ALLOW_ENTRIES)).is_ok());
    }
}
