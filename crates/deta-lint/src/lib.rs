//! deta-lint: a dependency-free static analyzer enforcing DeTA's
//! threat-model invariants across the workspace.
//!
//! The DeTA design rests on code-level properties no type system checks:
//! secrets must not reach logs, authentication comparisons must be
//! constant-time, permutation-critical code must iterate
//! deterministically, protocol hot paths must not panic on attacker
//! input, wire serialization must not truncate, and secret material
//! must not flow into telemetry sinks. This crate encodes those
//! properties as six rules over a hand-rolled token stream (see
//! [`lex`]) and resolves findings against a checked-in
//! `lint-allow.toml` of justified suppressions (see [`allow`]).
//!
//! Run it as `cargo run -p deta-lint`; `tests/lint_clean.rs` at the
//! workspace root enforces a clean report in `cargo test`.

pub mod allow;
pub mod lex;
pub mod rules;

pub use allow::{parse_allowlist, AllowEntry, MAX_ALLOW_ENTRIES};
pub use rules::{check_source, check_tokens, Violation};

use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale suppressions are
    /// reported so the list cannot rot).
    pub stale_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by the allowlist.
    pub suppressed: usize,
}

impl LintReport {
    /// True when nothing is wrong: no violations and no stale entries.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        for e in &self.stale_allows {
            writeln!(
                f,
                "stale allowlist entry: rule `{}` path `{}` identifier `{}` matches nothing",
                e.rule, e.path, e.identifier
            )?;
        }
        write!(
            f,
            "{} file(s) scanned, {} violation(s), {} suppressed, {} stale allow(s)",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.stale_allows.len()
        )
    }
}

/// Lints every workspace source file under `root`.
///
/// Scans `src/` of the root package and of each `crates/*` member;
/// `tests/`, `benches/`, and `target/` are out of scope by construction
/// (the rules govern shipped code, and unit tests inside `src/` are
/// excluded by [`lex::strip_test_regions`]).
///
/// # Errors
///
/// Fails on unreadable files or a malformed `lint-allow.toml`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("lint-allow.toml");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs_files(&member.join("src"), &mut files);
        }
    }

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let mut used = vec![false; allows.len()];
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = relative_path(root, file);
        for v in check_source(&rel, &src) {
            let allowed = allows.iter().enumerate().find(|(_, a)| a.matches(&v));
            if let Some((idx, _)) = allowed {
                used[idx] = true;
                report.suppressed += 1;
            } else {
                report.violations.push(v);
            }
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(a, _)| a)
        .collect();
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (the rules' and the
/// allowlist's path convention, stable across platforms).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/deta-core/src/wire.rs");
        assert_eq!(relative_path(root, file), "crates/deta-core/src/wire.rs");
    }
}
