//! deta-lint / deta-flow: a dependency-free static analyzer enforcing
//! DeTA's threat-model invariants across the workspace.
//!
//! The DeTA design rests on code-level properties no type system checks:
//! secrets must not reach logs, authentication comparisons must be
//! constant-time, permutation-critical code must iterate
//! deterministically, protocol hot paths must not panic on attacker
//! input, wire serialization must not truncate, and secret material
//! must not flow into telemetry sinks. The analyzer has two layers:
//!
//! * **Token rules** (1–6) over a hand-rolled token stream (see
//!   [`lex`]): word-level heuristics that catch a secret *named* at a
//!   sink.
//! * **Flow passes** (7–9) over an item-level parse (see [`parse`]):
//!   interprocedural secret-taint dataflow ([`taint`], with a per-crate
//!   call graph in [`graph`]), channel-liveness (unbounded waits and
//!   inconsistent lock order), and exhaustive protocol-message handling
//!   — these catch the renamed, aliased, and cross-function flows the
//!   token layer cannot see.
//!
//! Findings resolve against a checked-in `lint-allow.toml` of justified
//! suppressions (see [`allow`]). Run it as `cargo run -p deta-lint`
//! (`--json` for machine-readable output, `--self-check` for the CI
//! meta-check); `tests/lint_clean.rs` at the workspace root enforces a
//! clean report in `cargo test`.

pub mod allow;
pub mod graph;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod taint;

pub use allow::{parse_allowlist, AllowEntry, MAX_ALLOW_ENTRIES};
pub use rules::{check_source, check_tokens, Violation};

use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale suppressions are
    /// reported so the list cannot rot).
    pub stale_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by the allowlist.
    pub suppressed: usize,
}

impl LintReport {
    /// True when nothing is wrong: no violations and no stale entries.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }

    /// Stable machine-readable form of the report, for CI artifacts.
    ///
    /// The schema is part of the tool's interface: top-level keys
    /// `files_scanned`, `suppressed`, `clean`, `violations` (objects
    /// with `rule`, `path`, `line`, `ident`, `message`), and
    /// `stale_allows` (objects with `rule`, `path`, `identifier`,
    /// `reason`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"ident\": {}, \
                 \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.ident),
                json_str(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"stale_allows\": [");
        for (i, e) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"identifier\": {}, \"reason\": {}}}",
                json_str(&e.rule),
                json_str(&e.path),
                json_str(&e.identifier),
                json_str(&e.reason)
            ));
        }
        out.push_str(if self.stale_allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        for e in &self.stale_allows {
            writeln!(
                f,
                "stale allowlist entry: rule `{}` path `{}` identifier `{}` matches nothing",
                e.rule, e.path, e.identifier
            )?;
        }
        write!(
            f,
            "{} file(s) scanned, {} violation(s), {} suppressed, {} stale allow(s)",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.stale_allows.len()
        )
    }
}

/// Lints every workspace source file under `root`.
///
/// Scans `src/` of the root package and of each `crates/*` member;
/// `tests/`, `benches/`, and `target/` are out of scope by construction
/// (the rules govern shipped code, and unit tests inside `src/` are
/// excluded by [`lex::strip_test_regions`]).
///
/// # Errors
///
/// Fails on unreadable files or a malformed `lint-allow.toml`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("lint-allow.toml");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs_files(&member.join("src"), &mut files);
        }
    }

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    // Parse every file once; the token rules and the flow passes share
    // the stream.
    let mut analyses = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = relative_path(root, file);
        analyses.push(parse::FileAnalysis::new(&rel, &src));
    }
    let mut found = Vec::new();
    for fa in &analyses {
        found.extend(check_tokens(&fa.path, &fa.toks));
        found.extend(rules::channel_liveness(fa));
        found.extend(rules::exhaustive_handling(fa));
    }
    found.extend(taint::check_taint(&analyses));
    found.extend(rules::lock_order(&analyses.iter().collect::<Vec<_>>()));
    let mut used = vec![false; allows.len()];
    for v in found {
        let allowed = allows.iter().enumerate().find(|(_, a)| a.matches(&v));
        if let Some((idx, _)) = allowed {
            used[idx] = true;
            report.suppressed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(a, _)| a)
        .collect();
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// The deta-flow self-check, run by `scripts/check.sh`: verifies the
/// analyzer's own guardrails rather than the workspace's code.
///
/// Fails when (a) any rule in [`rules::ALL_RULES`] appears fewer than
/// twice in the fixture tests under `crates/deta-lint/tests/` — every
/// rule must keep at least a positive and a negative fixture — or
/// (b) `lint-allow.toml` is malformed or past [`MAX_ALLOW_ENTRIES`]
/// (the parser enforces the cap; re-checked here so the failure names
/// this check). Returns a one-line summary on success.
///
/// # Errors
///
/// A human-readable list of everything that failed.
pub fn self_check(root: &Path) -> Result<String, String> {
    let mut problems = Vec::new();

    let tests_dir = root.join("crates/deta-lint/tests");
    let mut fixture_text = String::new();
    let mut fixture_files = 0usize;
    if let Ok(entries) = std::fs::read_dir(&tests_dir) {
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for p in paths {
            if p.extension().is_some_and(|e| e == "rs") {
                fixture_files += 1;
                fixture_text.push_str(&std::fs::read_to_string(&p).unwrap_or_default());
            }
        }
    }
    if fixture_files == 0 {
        problems.push(format!(
            "no fixture tests found under {}",
            tests_dir.display()
        ));
    }
    for rule in rules::ALL_RULES {
        let count = fixture_text.matches(rule).count();
        if count < 2 {
            problems.push(format!(
                "rule `{rule}` has {count} fixture reference(s); every rule needs \
                 at least a positive and a negative fixture"
            ));
        }
    }

    let allow_path = root.join("lint-allow.toml");
    let allow_count = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(entries) => entries.len(),
            Err(e) => {
                problems.push(format!("lint-allow.toml: {e}"));
                0
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => {
            problems.push(format!("cannot read {}: {e}", allow_path.display()));
            0
        }
    };
    if allow_count > MAX_ALLOW_ENTRIES {
        problems.push(format!(
            "lint-allow.toml has {allow_count} entries (max {MAX_ALLOW_ENTRIES})"
        ));
    }

    if problems.is_empty() {
        Ok(format!(
            "self-check ok: {} rule(s) fixture-covered across {} test file(s), \
             {} / {} allowlist entries used",
            rules::ALL_RULES.len(),
            fixture_files,
            allow_count,
            MAX_ALLOW_ENTRIES
        ))
    } else {
        Err(problems.join("\n"))
    }
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (the rules' and the
/// allowlist's path convention, stable across platforms).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/deta-core/src/wire.rs");
        assert_eq!(relative_path(root, file), "crates/deta-core/src/wire.rs");
    }
}
