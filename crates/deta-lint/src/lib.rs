//! deta-lint / deta-flow: a dependency-free static analyzer enforcing
//! DeTA's threat-model invariants across the workspace.
//!
//! The DeTA design rests on code-level properties no type system checks:
//! secrets must not reach logs, authentication comparisons must be
//! constant-time, permutation-critical code must iterate
//! deterministically, protocol hot paths must not panic on attacker
//! input, wire serialization must not truncate, and secret material
//! must not flow into telemetry sinks. The analyzer has two layers:
//!
//! * **Token rules** (1–6) over a hand-rolled token stream (see
//!   [`lex`]): word-level heuristics that catch a secret *named* at a
//!   sink.
//! * **Flow passes** (7–9) over an item-level parse (see [`parse`]):
//!   interprocedural secret-taint dataflow ([`taint`], with a per-crate
//!   call graph in [`graph`]), channel-liveness (unbounded waits and
//!   inconsistent lock order), and exhaustive protocol-message handling
//!   — these catch the renamed, aliased, and cross-function flows the
//!   token layer cannot see.
//!
//! Findings resolve against a checked-in `lint-allow.toml` of justified
//! suppressions (see [`allow`]). Run it as `cargo run -p deta-lint`
//! (`--json` for machine-readable output, `--self-check` for the CI
//! meta-check); `tests/lint_clean.rs` at the workspace root enforces a
//! clean report in `cargo test`.

pub mod allow;
pub mod graph;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod taint;

pub use allow::{parse_allowlist, AllowEntry, MAX_ALLOW_ENTRIES};
pub use rules::{check_source, check_tokens, Violation};

use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale suppressions are
    /// reported so the list cannot rot).
    pub stale_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by the allowlist.
    pub suppressed: usize,
}

impl LintReport {
    /// True when nothing is wrong: no violations and no stale entries.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }

    /// Stable machine-readable form of the report, for CI artifacts.
    ///
    /// The schema is part of the tool's interface: top-level keys
    /// `files_scanned`, `suppressed`, `clean`, `violations` (objects
    /// with `rule`, `path`, `line`, `ident`, `message`), and
    /// `stale_allows` (objects with `rule`, `path`, `identifier`,
    /// `reason`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"ident\": {}, \
                 \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.ident),
                json_str(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"stale_allows\": [");
        for (i, e) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"identifier\": {}, \"reason\": {}}}",
                json_str(&e.rule),
                json_str(&e.path),
                json_str(&e.identifier),
                json_str(&e.reason)
            ));
        }
        out.push_str(if self.stale_allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

/// Minimal JSON value, just rich enough to validate the report schema.
#[derive(Debug, PartialEq)]
enum Json {
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Hand-rolled JSON reader for [`validate_report_json`] (the workspace
/// is dependency-free by design). Accepts the subset the report emits:
/// objects, arrays, strings with the escapes [`json_str`] produces,
/// non-negative integers, and booleans.
struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn new(text: &'a str) -> JsonReader<'a> {
        JsonReader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                byte as char,
                other.map(|b| b as char)
            )),
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("byte {}: trailing content", self.pos));
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b) if b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "byte {}: unexpected {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("byte {}: expected `{word}`", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse()
            .map(Json::Num)
            .map_err(|_| format!("byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(format!("byte {}: unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = self.bytes.get(self.pos + 1).copied();
                    self.pos += 2;
                    match escaped {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            // \uXXXX — the report only emits these for
                            // control characters; decode and move on.
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return Err(format!("byte {}: bad \\u escape", self.pos));
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "byte {}: bad escape {:?}",
                                self.pos,
                                other.map(|b| b as char)
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let c = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| format!("byte {}: bad UTF-8", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected `,` or `]`, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected `,` or `}}`, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

fn field<'j>(fields: &'j [(String, Json)], ctx: &str, key: &str) -> Result<&'j Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{ctx}: missing key `{key}`"))
}

fn str_field<'j>(fields: &'j [(String, Json)], ctx: &str, key: &str) -> Result<&'j str, String> {
    match field(fields, ctx, key)? {
        Json::Str(s) => Ok(s),
        other => Err(format!(
            "{ctx}: key `{key}` must be a string, got {other:?}"
        )),
    }
}

fn num_field(fields: &[(String, Json)], ctx: &str, key: &str) -> Result<f64, String> {
    match field(fields, ctx, key)? {
        Json::Num(n) => Ok(*n),
        other => Err(format!(
            "{ctx}: key `{key}` must be a number, got {other:?}"
        )),
    }
}

fn obj_items<'j>(value: &'j Json, ctx: &str) -> Result<&'j [(String, Json)], String> {
    match value {
        Json::Obj(fields) => Ok(fields),
        other => Err(format!("{ctx}: expected an object, got {other:?}")),
    }
}

/// Validates that `text` conforms to the stable [`LintReport::to_json`]
/// schema the CI artifact consumers rely on: the documented top-level
/// keys with the documented types, every violation and stale-allow
/// carrying its full field set, and every violation's `rule` drawn from
/// [`rules::ALL_RULES`]. The `--json` CLI path runs this on its own
/// output before printing, so a schema regression fails the gate
/// instead of shipping a malformed artifact.
///
/// # Errors
///
/// A message naming the offending key, field, or rule.
pub fn validate_report_json(text: &str) -> Result<(), String> {
    let value = JsonReader::new(text).document()?;
    let top = obj_items(&value, "report")?;
    num_field(top, "report", "files_scanned")?;
    num_field(top, "report", "suppressed")?;
    let clean = match field(top, "report", "clean")? {
        Json::Bool(b) => *b,
        other => return Err(format!("report: key `clean` must be a bool, got {other:?}")),
    };
    let violations = match field(top, "report", "violations")? {
        Json::Arr(items) => items,
        other => {
            return Err(format!(
                "report: key `violations` must be an array, got {other:?}"
            ))
        }
    };
    for (i, v) in violations.iter().enumerate() {
        let ctx = format!("violations[{i}]");
        let fields = obj_items(v, &ctx)?;
        let rule = str_field(fields, &ctx, "rule")?;
        if !rules::ALL_RULES.contains(&rule) {
            return Err(format!("{ctx}: unknown rule `{rule}`"));
        }
        str_field(fields, &ctx, "path")?;
        num_field(fields, &ctx, "line")?;
        str_field(fields, &ctx, "ident")?;
        str_field(fields, &ctx, "message")?;
    }
    let stale = match field(top, "report", "stale_allows")? {
        Json::Arr(items) => items,
        other => {
            return Err(format!(
                "report: key `stale_allows` must be an array, got {other:?}"
            ))
        }
    };
    for (i, e) in stale.iter().enumerate() {
        let ctx = format!("stale_allows[{i}]");
        let fields = obj_items(e, &ctx)?;
        str_field(fields, &ctx, "rule")?;
        str_field(fields, &ctx, "path")?;
        str_field(fields, &ctx, "identifier")?;
        str_field(fields, &ctx, "reason")?;
    }
    if clean && (!violations.is_empty() || !stale.is_empty()) {
        return Err("report: `clean` is true but findings are present".to_string());
    }
    Ok(())
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        for e in &self.stale_allows {
            writeln!(
                f,
                "stale allowlist entry: rule `{}` path `{}` identifier `{}` matches nothing",
                e.rule, e.path, e.identifier
            )?;
        }
        write!(
            f,
            "{} file(s) scanned, {} violation(s), {} suppressed, {} stale allow(s)",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.stale_allows.len()
        )
    }
}

/// Lints every workspace source file under `root`.
///
/// Scans `src/` of the root package and of each `crates/*` member;
/// `tests/`, `benches/`, and `target/` are out of scope by construction
/// (the rules govern shipped code, and unit tests inside `src/` are
/// excluded by [`lex::strip_test_regions`]).
///
/// # Errors
///
/// Fails on unreadable files or a malformed `lint-allow.toml`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("lint-allow.toml");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs_files(&member.join("src"), &mut files);
        }
    }

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    // Parse every file once; the token rules and the flow passes share
    // the stream.
    let mut analyses = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = relative_path(root, file);
        analyses.push(parse::FileAnalysis::new(&rel, &src));
    }
    let mut found = Vec::new();
    for fa in &analyses {
        found.extend(check_tokens(&fa.path, &fa.toks));
        found.extend(rules::channel_liveness(fa));
        found.extend(rules::exhaustive_handling(fa));
    }
    found.extend(taint::check_taint(&analyses));
    found.extend(rules::lock_order(&analyses.iter().collect::<Vec<_>>()));
    let mut used = vec![false; allows.len()];
    for v in found {
        let allowed = allows.iter().enumerate().find(|(_, a)| a.matches(&v));
        if let Some((idx, _)) = allowed {
            used[idx] = true;
            report.suppressed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(a, _)| a)
        .collect();
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// The deta-flow self-check, run by `scripts/check.sh`: verifies the
/// analyzer's own guardrails rather than the workspace's code.
///
/// Fails when (a) any rule in [`rules::ALL_RULES`] appears fewer than
/// twice in the fixture tests under `crates/deta-lint/tests/` — every
/// rule must keep at least a positive and a negative fixture — or
/// (b) `lint-allow.toml` is malformed or past [`MAX_ALLOW_ENTRIES`]
/// (the parser enforces the cap; re-checked here so the failure names
/// this check). Returns a one-line summary on success.
///
/// # Errors
///
/// A human-readable list of everything that failed.
pub fn self_check(root: &Path) -> Result<String, String> {
    let mut problems = Vec::new();

    let tests_dir = root.join("crates/deta-lint/tests");
    let mut fixture_text = String::new();
    let mut fixture_files = 0usize;
    if let Ok(entries) = std::fs::read_dir(&tests_dir) {
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for p in paths {
            if p.extension().is_some_and(|e| e == "rs") {
                fixture_files += 1;
                fixture_text.push_str(&std::fs::read_to_string(&p).unwrap_or_default());
            }
        }
    }
    if fixture_files == 0 {
        problems.push(format!(
            "no fixture tests found under {}",
            tests_dir.display()
        ));
    }
    for rule in rules::ALL_RULES {
        let count = fixture_text.matches(rule).count();
        if count < 2 {
            problems.push(format!(
                "rule `{rule}` has {count} fixture reference(s); every rule needs \
                 at least a positive and a negative fixture"
            ));
        }
    }

    let allow_path = root.join("lint-allow.toml");
    let allow_count = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(entries) => entries.len(),
            Err(e) => {
                problems.push(format!("lint-allow.toml: {e}"));
                0
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => {
            problems.push(format!("cannot read {}: {e}", allow_path.display()));
            0
        }
    };
    if allow_count > MAX_ALLOW_ENTRIES {
        problems.push(format!(
            "lint-allow.toml has {allow_count} entries (max {MAX_ALLOW_ENTRIES})"
        ));
    }

    if problems.is_empty() {
        Ok(format!(
            "self-check ok: {} rule(s) fixture-covered across {} test file(s), \
             {} / {} allowlist entries used",
            rules::ALL_RULES.len(),
            fixture_files,
            allow_count,
            MAX_ALLOW_ENTRIES
        ))
    } else {
        Err(problems.join("\n"))
    }
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (the rules' and the
/// allowlist's path convention, stable across platforms).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/deta-core/src/wire.rs");
        assert_eq!(relative_path(root, file), "crates/deta-core/src/wire.rs");
    }
}
