//! A minimal Rust tokenizer for lint analysis.
//!
//! This is not a full lexer: it produces exactly the token stream the
//! rules need — identifiers, punctuation, and opaque literals — while
//! guaranteeing that nothing inside comments, string/char literals, or
//! test-only code regions can ever trigger a rule. Handles line comments,
//! nested block comments, string escapes, raw strings with arbitrary
//! hash fences (`r#"..."#`), byte strings, and the char-versus-lifetime
//! ambiguity of `'`.

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
    /// A string literal. Contents are deliberately opaque to the rules,
    /// with one exception: inline format captures (`"{name}"`,
    /// `"{name:?}"`) are recorded so dataflow passes can see an
    /// identifier smuggled into a `format!`-family macro through its
    /// format string.
    Str(Vec<String>),
    /// A character literal.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal.
    Num,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Line the token starts on (1-based).
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The inline format captures, if this token is a string literal.
    pub fn str_captures(&self) -> Option<&[String]> {
        match &self.kind {
            TokKind::Str(caps) => Some(caps.as_slice()),
            _ => None,
        }
    }
}

/// Extracts inline format captures from a string literal's contents:
/// the identifier of every `{name}` / `{name:spec}` segment. `{{` is the
/// escape for a literal brace; positional (`{}`, `{0}`) segments carry no
/// identifier and are skipped.
fn format_captures(content: &str) -> Vec<String> {
    let chars: Vec<char> = content.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        if i + 1 < n && chars[i + 1] == '{' {
            i += 2; // Escaped literal `{{`.
            continue;
        }
        let mut j = i + 1;
        let mut name = String::new();
        while j < n && chars[j] != '}' && chars[j] != ':' {
            name.push(chars[j]);
            j += 1;
        }
        let valid = !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_alphanumeric() || c == '_');
        if valid && !out.contains(&name) {
            out.push(name);
        }
        // Skip to the closing brace (or end of a malformed segment).
        while j < n && chars[j] != '}' {
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// Tokenizes Rust source, discarding comments and literal contents.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            i = skip_block_comment(&chars, i, &mut line);
        } else if c == '"' {
            let start = line;
            let (next, content) = skip_string(&chars, i, &mut line);
            i = next;
            toks.push(Tok {
                kind: TokKind::Str(format_captures(&content)),
                line: start,
            });
        } else if c == '\'' {
            let start = line;
            let (next, kind) = char_or_lifetime(&chars, i, &mut line);
            i = next;
            toks.push(Tok { kind, line: start });
        } else if c.is_ascii_digit() {
            toks.push(Tok {
                kind: TokKind::Num,
                line,
            });
            i = skip_number(&chars, i);
        } else if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let ident: String = chars[i..j].iter().collect();
            // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
            if let Some((end, content)) = string_after_prefix(&chars, j, &ident, &mut line) {
                toks.push(Tok {
                    kind: TokKind::Str(format_captures(&content)),
                    line: start_line,
                });
                i = end;
            } else {
                toks.push(Tok {
                    kind: TokKind::Ident(ident),
                    line: start_line,
                });
                i = j;
            }
        } else {
            toks.push(Tok {
                kind: TokKind::Punct(c),
                line,
            });
            i += 1;
        }
    }
    toks
}

/// Skips a (possibly nested) block comment starting at `i` (`/*`).
fn skip_block_comment(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut depth = 1usize;
    i += 2;
    while i < n && depth > 0 {
        if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
            depth += 1;
            i += 2;
        } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
            depth -= 1;
            i += 2;
        } else {
            if chars[i] == '\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    i
}

/// Skips a `"..."` string (with escapes) starting at the opening quote.
/// Returns the index past the closing quote and the raw contents (with
/// escape sequences kept verbatim; they never form a format capture).
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> (usize, String) {
    let n = chars.len();
    let mut content = String::new();
    i += 1;
    while i < n {
        match chars[i] {
            '\\' => {
                if i + 1 < n {
                    content.push(chars[i + 1]);
                }
                i += 2;
            }
            '"' => return (i + 1, content),
            c => {
                if c == '\n' {
                    *line += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (i, content)
}

/// If the identifier just read is a raw/byte string prefix and a literal
/// follows at `j`, skips it and returns the end index and contents.
fn string_after_prefix(
    chars: &[char],
    j: usize,
    ident: &str,
    line: &mut u32,
) -> Option<(usize, String)> {
    let n = chars.len();
    match ident {
        // Escaped byte string: b"...".
        "b" if j < n && chars[j] == '"' => Some(skip_string(chars, j, line)),
        // Raw forms: zero or more hashes then a quote. `r#ident` (raw
        // identifier) has no quote after the hash and falls through.
        "r" | "br" | "rb" => {
            let mut k = j;
            let mut hashes = 0usize;
            while k < n && chars[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k >= n || chars[k] != '"' {
                return None;
            }
            k += 1;
            let mut content = String::new();
            // Scan for `"` followed by `hashes` hashes; no escapes.
            while k < n {
                if chars[k] == '\n' {
                    *line += 1;
                    content.push('\n');
                    k += 1;
                    continue;
                }
                if chars[k] == '"' {
                    let mut h = 0usize;
                    while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                        h += 1;
                    }
                    if h == hashes {
                        return Some((k + 1 + hashes, content));
                    }
                }
                content.push(chars[k]);
                k += 1;
            }
            Some((k, content))
        }
        _ => None,
    }
}

/// Distinguishes `'x'` char literals from `'lifetime` and skips either.
fn char_or_lifetime(chars: &[char], i: usize, line: &mut u32) -> (usize, TokKind) {
    let n = chars.len();
    if i + 1 >= n {
        return (i + 1, TokKind::Punct('\''));
    }
    let next = chars[i + 1];
    if next == '\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        if j < n {
            j += 1; // The escaped character itself (or `u` of `\u{..}`).
        }
        while j < n && chars[j] != '\'' {
            if chars[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
        return (j + 1, TokKind::Char);
    }
    if (next.is_alphabetic() || next == '_') && !(i + 2 < n && chars[i + 2] == '\'') {
        // A lifetime: consume the identifier.
        let mut j = i + 1;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, TokKind::Lifetime);
    }
    // Plain char literal such as 'a' or '('.
    if i + 2 < n && chars[i + 2] == '\'' {
        return (i + 3, TokKind::Char);
    }
    (i + 1, TokKind::Punct('\''))
}

/// Skips a numeric literal (incl. `0x..`, `1_000`, `1.5`); `0..n` ranges
/// are not swallowed because `.` is only consumed when a digit follows.
fn skip_number(chars: &[char], mut i: usize) -> usize {
    let n = chars.len();
    while i < n {
        let c = chars[i];
        let digit_dot = c == '.' && i + 1 < n && chars[i + 1].is_ascii_digit();
        if c.is_alphanumeric() || c == '_' || digit_dot {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Removes tokens inside test-only regions: items annotated
/// `#[cfg(test)]` (including any `cfg(...)` whose arguments mention
/// `test`) and `mod tests { .. }` blocks. A file-level `#![cfg(test)]`
/// empties the whole stream.
pub fn strip_test_regions(toks: Vec<Tok>) -> Vec<Tok> {
    let n = toks.len();
    let mut masked = vec![false; n];
    let mut i = 0;
    while i < n {
        // Inner attribute #![cfg(test)] masks the entire file.
        if toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_punct('!') {
            if let Some((end, is_test)) = parse_cfg_attr(&toks, i + 2) {
                if is_test {
                    return Vec::new();
                }
                i = end;
                continue;
            }
        }
        if toks[i].is_punct('#') {
            if let Some((after_attr, is_test)) = parse_cfg_attr(&toks, i + 1) {
                if is_test {
                    let end = mask_item(&toks, after_attr);
                    for m in masked.iter_mut().take(end).skip(i) {
                        *m = true;
                    }
                    i = end;
                    continue;
                }
                i = after_attr;
                continue;
            }
        }
        // A bare `mod tests {` block is test code even without cfg.
        if toks[i].ident() == Some("mod")
            && i + 2 < n
            && toks[i + 1].ident() == Some("tests")
            && toks[i + 2].is_punct('{')
        {
            let end = skip_balanced(&toks, i + 2, '{', '}');
            for m in masked.iter_mut().take(end).skip(i) {
                *m = true;
            }
            i = end;
            continue;
        }
        i = i.saturating_add(1);
    }
    toks.into_iter()
        .zip(masked)
        .filter(|(_, m)| !m)
        .map(|(t, _)| t)
        .collect()
}

/// Parses `[cfg( .. )]` starting at the token after `#` (or `#!`).
/// Returns `(index after the closing ']', args mention `test`)`, or
/// `None` if this is not a `cfg` attribute.
fn parse_cfg_attr(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let n = toks.len();
    if i >= n || !toks[i].is_punct('[') {
        return None;
    }
    if toks.get(i + 1)?.ident() != Some("cfg") || !toks.get(i + 2)?.is_punct('(') {
        // Some other attribute: skip it whole so callers can continue.
        let end = skip_balanced(toks, i, '[', ']');
        return Some((end, false));
    }
    let close = skip_balanced(toks, i + 2, '(', ')');
    let is_test = toks[i + 3..close.saturating_sub(1)]
        .iter()
        .any(|t| t.ident() == Some("test"));
    let mut j = close;
    if j < n && toks[j].is_punct(']') {
        j += 1;
    }
    Some((j, is_test))
}

/// Given `i` at an `open` punct, returns the index just past its
/// matching `close`.
fn skip_balanced(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let n = toks.len();
    let mut depth = 0usize;
    let mut j = i;
    while j < n {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    n
}

/// Masks one item starting at `i`: further attributes are skipped, then
/// everything through the item's closing `}` (or terminating `;` for
/// brace-less items) is consumed.
fn mask_item(toks: &[Tok], mut i: usize) -> usize {
    let n = toks.len();
    // Skip stacked attributes (e.g. #[cfg(test)] #[allow(..)] mod t {..}).
    while i < n && toks[i].is_punct('#') {
        if i + 1 < n && toks[i + 1].is_punct('[') {
            i = skip_balanced(toks, i + 1, '[', ']');
        } else {
            break;
        }
    }
    let mut depth_paren = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_punct('{') {
            return skip_balanced(toks, i, '{', '}');
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth_paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth_paren = depth_paren.saturating_sub(1);
        } else if t.is_punct(';') && depth_paren == 0 {
            return i + 1;
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_and_block_comments_are_skipped() {
        let src = "let a = 1; // unwrap() here\n/* expect( */ let b = 2;";
        let ids = idents(src);
        assert_eq!(ids, ["let", "a", "let", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn ok() {}";
        assert_eq!(idents(src), ["fn", "ok"]);
    }

    #[test]
    fn string_contents_are_opaque() {
        let src = r#"let s = "call .unwrap() and panic!"; s"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "s"]);
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = "let s = r#\"contains \"quoted\" unwrap()\"#; done";
        assert_eq!(idents(src), ["let", "s", "done"]);
        let src2 = "let s = r##\"x \"# y\"##; done";
        assert_eq!(idents(src2), ["let", "s", "done"]);
        let src3 = "let b = br#\"bytes unwrap()\"#; done";
        assert_eq!(idents(src3), ["let", "b", "done"]);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let src = "let r#fn = 1; after";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(ids.contains(&"r".to_string()) || ids.contains(&"fn".to_string()));
    }

    #[test]
    fn char_versus_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }";
        let toks = tokenize(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars_ = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars_, 2);
        // The idents inside the char literals never leak.
        assert!(!idents(src).contains(&"x".to_string()) || true);
    }

    #[test]
    fn format_captures_are_extracted() {
        let toks = tokenize(r#"format!("round {round}: {x:?} {} {{brace}} {0}")"#);
        let caps: Vec<&[String]> = toks.iter().filter_map(|t| t.str_captures()).collect();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0], ["round".to_string(), "x".to_string()]);
        // Raw strings capture too; escaped braces and positionals don't.
        let toks2 = tokenize(r##"let s = r#"{seed}"#;"##);
        let caps2: Vec<&[String]> = toks2.iter().filter_map(|t| t.str_captures()).collect();
        assert_eq!(caps2[0], ["seed".to_string()]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n\nc";
        let toks = tokenize(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let toks = strip_test_regions(tokenize(src));
        let ids: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"after"));
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"tests"));
    }

    #[test]
    fn cfg_test_single_item_is_stripped() {
        let src = "#[cfg(test)]\nfn helper() { y.expect(\"boom\"); }\nfn live() {}";
        let toks = strip_test_regions(tokenize(src));
        let ids: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(!ids.contains(&"expect"));
        assert!(ids.contains(&"live"));
    }

    #[test]
    fn bare_mod_tests_is_stripped() {
        let src = "fn live() {}\nmod tests { fn t() { a.unwrap(); } }";
        let toks = strip_test_regions(tokenize(src));
        assert!(!toks.iter().any(|t| t.ident() == Some("unwrap")));
    }

    #[test]
    fn non_test_cfg_attr_is_kept() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { a.unwrap(); }";
        let toks = strip_test_regions(tokenize(src));
        assert!(toks.iter().any(|t| t.ident() == Some("unwrap")));
    }

    #[test]
    fn inner_cfg_test_masks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() { a.unwrap(); }";
        assert!(strip_test_regions(tokenize(src)).is_empty());
    }
}
