//! Property tests for the lexer via the in-repo `deta-proptest`
//! harness: tokenization must never panic on arbitrary snippet
//! mixes, and must be prefix-stable — tokens fully contained in a
//! prefix of the source are unchanged when more source is appended
//! after a clean token boundary.

use deta_lint::lex::{tokenize, Tok};
use deta_proptest::{cases, Gen};

/// Generate one syntactically-plausible snippet fragment, biased
/// toward the lexer's hard cases: raw strings, nested block
/// comments, byte/char literals, and lifetimes.
fn fragment(g: &mut Gen) -> String {
    match g.u64_in(0, 12) {
        0 => {
            // Raw string with 0..=3 hashes. A raw string ends only at
            // `"` + exactly `hashes` hashes, so the body must not
            // contain `#` (and with no hashes, no `"` either) or the
            // literal closes early, leaving an unterminated stray.
            let hashes = "#".repeat(g.usize_in(0, 4));
            let mut body = g.string_of("ab\" {}", 0, 8);
            if hashes.is_empty() {
                body = body.replace('"', "");
            }
            format!("r{hashes}\"{body}\"{hashes}")
        }
        1 => {
            // Nested block comment, depth 1..=3. The interior alphabet
            // has no `/`, so it cannot open or close a level itself.
            let depth = g.usize_in(1, 4);
            let mut s = String::new();
            for _ in 0..depth {
                s.push_str("/*");
            }
            s.push_str(&g.string_of("ab *", 0, 6));
            for _ in 0..depth {
                s.push_str("*/");
            }
            s
        }
        2 => format!("b'{}'", g.string_of("abz01", 1, 2)),
        3 => format!("'{}'", g.string_of("abz01", 1, 2)),
        4 => "'\\n'".to_string(),
        5 => format!("&'{} str", g.string_of("abc", 1, 5)),
        6 => format!("<'{}>", g.string_of("abc", 1, 5)),
        7 => format!("\"{}\"", g.string_of("ab {}:?x", 0, 8)),
        8 => format!("b\"{}\"", g.string_of("ab 01", 0, 6)),
        9 => g.string_of("abcdefgh_", 1, 9),
        10 => format!("{}", g.u64_in(0, 0xffff_ffff)),
        _ => g.string_of("+-*/%&|^!<>=.,;:#(){}[]", 1, 4),
    }
}

fn snippet(g: &mut Gen) -> String {
    let parts = g.vec_of(0, 12, fragment);
    parts.join(" ")
}

#[test]
fn tokenize_never_panics() {
    cases("lex-no-panic", 400, |g| {
        let src = snippet(g);
        let toks = tokenize(&src);
        // Touch the output so the call is not optimized away and the
        // token stream is structurally sane (offsets in bounds).
        for t in &toks {
            assert!(t.line >= 1, "line numbers are 1-based in {src:?}");
        }
    });
}

#[test]
fn tokenize_never_panics_on_arbitrary_bytes() {
    // Even non-snippet garbage (unterminated strings, lone
    // backslashes, stray quotes) must lex without panicking.
    cases("lex-no-panic-garbage", 400, |g| {
        let src = g.string_of("r#\"'b/*\\ \n\u{1F980}abc0_!{}", 0, 40);
        let _ = tokenize(&src);
    });
}

#[test]
fn tokenize_is_prefix_stable() {
    // Appending more source after a whitespace boundary must not
    // change the tokens of the original snippet: `tokenize(a)` is a
    // prefix of `tokenize(a + "\n" + b)`.
    cases("lex-prefix-stable", 300, |g| {
        let a = snippet(g);
        let b = snippet(g);
        let whole = format!("{a}\n{b}");
        let ta = tokenize(&a);
        let tw = tokenize(&whole);
        assert!(
            tw.len() >= ta.len(),
            "appending source lost tokens: {a:?} + {b:?}"
        );
        for (i, (x, y)) in ta.iter().zip(tw.iter()).enumerate() {
            assert_eq!(
                describe(x),
                describe(y),
                "token {i} changed when {b:?} was appended to {a:?}"
            );
        }
    });
}

/// Stable comparison key for a token: kind tag, text, and line.
fn describe(t: &Tok) -> String {
    format!("{:?}@{}", t.kind, t.line)
}
