//! One positive and one negative fixture per rule: deleting (or
//! breaking) any rule implementation fails at least one test here.

use deta_lint::check_source;

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source(path, src).iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

// -------------------------------------------------------------------
// Rule 1: no-secret-debug
// -------------------------------------------------------------------

#[test]
fn secret_struct_with_debug_derive_is_flagged() {
    let src = r#"
#[derive(Clone, Debug)]
pub struct SigningKey {
    x: BigUint,
}
"#;
    let v = check_source("crates/deta-crypto/src/sign.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-secret-debug" && v.ident == "SigningKey"));
}

#[test]
fn secret_field_of_byte_type_is_flagged() {
    let src = r#"
#[derive(Debug)]
pub struct Channel {
    pub name: String,
    send_key: [u8; 32],
}
"#;
    let v = check_source("crates/deta-transport/src/secure.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-secret-debug" && v.ident == "send_key"));
}

#[test]
fn secret_tuple_struct_wrapping_bytes_is_flagged() {
    let src = "#[derive(Debug)]\npub struct AeadKey(pub [u8; 32]);\n";
    let v = check_source("crates/deta-crypto/src/aead.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-secret-debug" && v.ident == "AeadKey"));
}

#[test]
fn public_key_debug_and_manual_impls_are_fine() {
    let src = r#"
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyingKey {
    pub y: BigUint,
}

pub struct SigningKey {
    x: BigUint,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey").finish_non_exhaustive()
    }
}

#[derive(Debug)]
pub struct Frame {
    pub header: Vec<u8>,
}
"#;
    assert!(rules_hit("crates/deta-crypto/src/sign.rs", src).is_empty());
}

// -------------------------------------------------------------------
// Rule 2: no-variable-time-eq
// -------------------------------------------------------------------

#[test]
fn tag_equality_is_flagged() {
    let src = r#"
pub fn open(expected_tag: &[u8], tag: &[u8]) -> bool {
    if expected_tag == tag {
        return true;
    }
    false
}
"#;
    let v = check_source("crates/deta-crypto/src/aead.rs", src);
    assert!(v.iter().any(|v| v.rule == "no-variable-time-eq"));
}

#[test]
fn measurement_inequality_is_flagged() {
    let src = "fn verify(want: [u8; 32], m: &Report) -> bool { want != m.measurement }\n";
    let v = check_source("crates/deta-sev-sim/src/lib.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-variable-time-eq" && v.ident == "measurement"));
}

#[test]
fn length_checks_and_out_of_scope_files_are_fine() {
    // `len` in the window marks a structural comparison.
    let src = "fn f(sig: &[u8]) -> bool { sig.len() == 64 }\n";
    assert!(rules_hit("crates/deta-crypto/src/sign.rs", src).is_empty());
    // ct_eq'd comparison has no == token at all.
    let src2 = "fn f(tag: &[u8], e: &[u8]) -> bool { ct_eq(tag, e) }\n";
    assert!(rules_hit("crates/deta-crypto/src/aead.rs", src2).is_empty());
    // The same tag comparison outside the auth scope is not this rule's
    // business (e.g. dataset code comparing label tags).
    let src3 = "fn f(tag: u32, other: u32) -> bool { tag == other }\n";
    assert!(rules_hit("crates/deta-datasets/src/lib.rs", src3).is_empty());
}

// -------------------------------------------------------------------
// Rule 3: deterministic-iteration
// -------------------------------------------------------------------

#[test]
fn hashmap_in_mapper_is_flagged() {
    let src = "use std::collections::HashMap;\npub struct M { parts: HashMap<u32, u32> }\n";
    let v = check_source("crates/deta-core/src/mapper.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "deterministic-iteration" && v.ident == "HashMap"));
}

#[test]
fn hashset_in_shuffle_is_flagged() {
    let src = "use std::collections::HashSet;\n";
    let v = check_source("crates/deta-core/src/shuffle.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "deterministic-iteration" && v.ident == "HashSet"));
}

#[test]
fn btreemap_in_scope_and_hashmap_out_of_scope_are_fine() {
    let src = "use std::collections::BTreeMap;\npub struct M { parts: BTreeMap<u32, u32> }\n";
    assert!(rules_hit("crates/deta-core/src/mapper.rs", src).is_empty());
    // party.rs is allowed to use HashMap (its iteration never feeds the
    // permutation).
    let src2 = "use std::collections::HashMap;\n";
    assert!(rules_hit("crates/deta-core/src/party.rs", src2).is_empty());
}

// -------------------------------------------------------------------
// Rule 4: no-panic-in-aggregation
// -------------------------------------------------------------------

#[test]
fn unwrap_in_aggregator_is_flagged() {
    let src = "pub fn pump(&mut self) { let x = self.pending.remove(&r).unwrap(); }\n";
    let v = check_source("crates/deta-core/src/aggregator.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "unwrap"));
}

#[test]
fn expect_and_panic_macros_are_flagged() {
    let src = r#"
pub fn handle(&mut self) {
    let r = self.current.expect("no round");
    match r {
        0 => panic!("zero"),
        _ => unreachable!(),
    }
}
"#;
    let v = check_source("crates/deta-core/src/party.rs", src);
    let idents: Vec<&str> = v
        .iter()
        .filter(|v| v.rule == "no-panic-in-aggregation")
        .map(|v| v.ident.as_str())
        .collect();
    assert!(idents.contains(&"expect"));
    assert!(idents.contains(&"panic"));
    assert!(idents.contains(&"unreachable"));
}

#[test]
fn test_code_asserts_and_nonpanicking_variants_are_fine() {
    // unwrap inside #[cfg(test)] mod tests is excluded.
    let src = r#"
pub fn live() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        panic!("fine in tests");
    }
}
"#;
    assert!(rules_hit("crates/deta-core/src/aggregator.rs", src).is_empty());
    // assert! states internal invariants and stays allowed.
    let src2 = "pub fn f(n: usize) { assert!(n > 0, \"need parties\"); }\n";
    assert!(rules_hit("crates/deta-core/src/party.rs", src2).is_empty());
    // unwrap_or_else is the sanctioned poison-recovery idiom.
    let src3 =
        "fn lock(m: &Mutex<u32>) { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
    assert!(rules_hit("crates/deta-transport/src/lib.rs", src3).is_empty());
    // Out-of-scope files may unwrap.
    let src4 = "pub fn f() { x.unwrap(); }\n";
    assert!(rules_hit("crates/deta-core/src/session.rs", src4).is_empty());
}

#[test]
fn runtime_crate_is_in_rule4_scope() {
    // The actor runtime handles frames from every node: its supervisor
    // and actor loops must not be able to panic on hostile input.
    let src = "pub fn handle(&mut self, f: &[u8]) { let m = CtlMsg::decode(f).unwrap(); }\n";
    for path in [
        "crates/deta-runtime/src/actor.rs",
        "crates/deta-runtime/src/supervisor.rs",
        "crates/deta-runtime/src/rtmsg.rs",
        "crates/deta-runtime/src/session.rs",
    ] {
        let v = check_source(path, src);
        assert!(
            v.iter()
                .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "unwrap"),
            "rule 4 must cover {path}"
        );
    }
    // Tests within the runtime crate stay exempt like everywhere else.
    let src2 = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
    assert!(rules_hit("crates/deta-runtime/src/rtmsg.rs", src2).is_empty());
}

#[test]
fn panic_in_failover_handler_is_flagged() {
    // The recovery module runs while the deployment is already degraded:
    // a panic in a failover handler would turn a healable fault into a
    // dead supervisor. Both the deta-core recovery kit and the session's
    // failover path (deta-runtime, covered by the crate-wide prefix) are
    // in rule 4 scope.
    let src = r#"
pub fn failover(&mut self, dead: &str) {
    let role = self.roles.remove(dead).unwrap_or_else(|| panic!("unknown node {dead}"));
    self.respawn(dead, role);
}
"#;
    for path in [
        "crates/deta-core/src/recovery.rs",
        "crates/deta-runtime/src/session.rs",
    ] {
        let v = check_source(path, src);
        assert!(
            v.iter()
                .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "panic"),
            "rule 4 must flag panic! in a failover handler at {path}"
        );
    }
}

#[test]
fn socket_bridge_is_in_rule4_scope() {
    // The socket crate parses attacker-reachable bytes straight off
    // TCP; a reachable panic there is a remote kill switch for the
    // whole deployment.
    let src =
        "pub fn ingest(&mut self, raw: &[u8]) { let f = SocketFrame::decode(raw).unwrap(); }\n";
    for path in [
        "crates/deta-socket/src/frame.rs",
        "crates/deta-socket/src/wire.rs",
        "crates/deta-socket/src/hub.rs",
    ] {
        let v = check_source(path, src);
        assert!(
            v.iter()
                .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "unwrap"),
            "rule 4 must cover {path}"
        );
    }
    // The sanctioned idioms stay allowed in the bridge too.
    let src2 =
        "fn lock(m: &Mutex<u32>) { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
    assert!(rules_hit("crates/deta-socket/src/hub.rs", src2).is_empty());
    let src3 = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
    assert!(rules_hit("crates/deta-socket/src/wire.rs", src3).is_empty());
}

#[test]
fn resume_path_panics_are_flagged() {
    // The resume exchange parses peer-controlled window claims right
    // after reconnection — before the link has proven anything beyond
    // its key. A panic here lets a flaky (or hostile) peer kill the hub
    // by crashing mid-resume and replaying garbage.
    let src = r#"
fn apply_resume(&mut self, raw: &[u8]) {
    let ack = SocketFrame::decode(raw).expect("resume ack");
    let next = self.windows.get(&ack.src).unwrap();
}
"#;
    for path in [
        "crates/deta-socket/src/node.rs",
        "crates/deta-socket/src/link.rs",
    ] {
        let v = check_source(path, src);
        assert!(
            v.iter()
                .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "expect"),
            "rule 4 must cover the resume path in {path}"
        );
        assert!(
            v.iter()
                .any(|v| v.rule == "no-panic-in-aggregation" && v.ident == "unwrap"),
            "rule 4 must flag the window lookup in {path}"
        );
    }
}

#[test]
fn resume_path_structured_errors_are_clean() {
    // The sanctioned shape: a malformed resume claim surfaces as a
    // structured error naming the link, never a crash.
    let src = r#"
fn apply_resume(&mut self, raw: &[u8]) -> Result<(), SocketError> {
    let ack = SocketFrame::decode(raw).map_err(|_| SocketError::Protocol("resume ack"))?;
    let next = self
        .windows
        .get(&ack.src)
        .ok_or(SocketError::Protocol("unknown link"))?;
    Ok(())
}
"#;
    assert!(rules_hit("crates/deta-socket/src/node.rs", src).is_empty());
    assert!(rules_hit("crates/deta-socket/src/link.rs", src).is_empty());
}

// -------------------------------------------------------------------
// Rule 5: no-truncating-cast
// -------------------------------------------------------------------

#[test]
fn narrowing_cast_in_wire_is_flagged() {
    let src = "fn put_len(out: &mut Vec<u8>, len: usize) { let n = len as u32; }\n";
    let v = check_source("crates/deta-core/src/wire.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-truncating-cast" && v.ident == "u32"));
}

#[test]
fn widening_casts_try_from_and_other_files_are_fine() {
    let src = "fn get(n: u32) -> usize { n as usize }\nfn put(n: u32) -> u64 { n as u64 }\n";
    assert!(rules_hit("crates/deta-core/src/wire.rs", src).is_empty());
    let src2 = "fn put_len(len: usize) -> Result<u32, E> { u32::try_from(len).map_err(E::from) }\n";
    assert!(rules_hit("crates/deta-core/src/wire.rs", src2).is_empty());
    // Numeric work elsewhere may narrow deliberately.
    let src3 = "fn quantize(x: f32) -> u8 { (x * 255.0) as u8 }\n";
    assert!(rules_hit("crates/deta-tensor/src/lib.rs", src3).is_empty());
}

// -------------------------------------------------------------------
// Rule 6: no-secret-telemetry
// -------------------------------------------------------------------

#[test]
fn secret_ident_in_telemetry_event_is_flagged() {
    let src = r#"
use deta_telemetry::TelemetryValue;
pub fn report(sealed_update: &[u8]) {
    deta_telemetry::event("upload", &[("size", TelemetryValue::from(sealed_update.len()))]);
}
"#;
    let v = check_source("crates/deta-core/src/party.rs", src);
    assert!(v
        .iter()
        .any(|v| v.rule == "no-secret-telemetry" && v.ident == "sealed_update"));
}

#[test]
fn secret_ident_in_span_field_and_metric_is_flagged() {
    let src = r#"
pub fn observe(signing_key: &SigningKey, secret_count: u64) {
    let _s = deta_telemetry::span("attest").with_field("id", signing_key.fingerprint());
    deta_telemetry::counter_add("deta_keys_total", "", secret_count);
}
"#;
    let v = check_source("crates/deta-core/src/aggregator.rs", src);
    let idents: Vec<&str> = v
        .iter()
        .filter(|v| v.rule == "no-secret-telemetry")
        .map(|v| v.ident.as_str())
        .collect();
    assert!(idents.contains(&"signing_key"));
    assert!(idents.contains(&"secret_count"));
}

#[test]
fn neutral_fields_definitions_and_out_of_scope_files_are_fine() {
    // Neutral idents through every sink, plus a local `fn event`
    // definition, stay clean.
    let src = r#"
use deta_telemetry::TelemetryValue;
pub fn observe(round: u32, bytes: u64) {
    deta_telemetry::event("upload", &[("round", TelemetryValue::from(round))]);
    let _s = deta_telemetry::span("aggregate").with_field("bytes", TelemetryValue::from(bytes));
    deta_telemetry::counter_add("deta_net_bytes_total", "a->b", bytes);
    deta_telemetry::histogram_observe("deta_gap_seconds", "party-0", 0.5);
}
fn event(name: &str) -> &str { name }
"#;
    assert!(rules_hit("crates/deta-core/src/party.rs", src).is_empty());
    // Without `deta_telemetry` in the file, `event` is just a name: a
    // dataset callback taking secret-ish arguments is not a telemetry
    // sink.
    let src2 = "pub fn fire(event: &dyn Fn(&[u8]), secret_seed: &[u8]) { event(secret_seed); }\n";
    assert!(rules_hit("crates/deta-datasets/src/lib.rs", src2).is_empty());
    // Secret words inside string literals (metric/field *names*) are
    // opaque to the lexer and never trigger.
    let src3 = r#"
pub fn label() {
    deta_telemetry::event("sealed secret signing key", &[]);
}
"#;
    assert!(rules_hit("crates/deta-core/src/party.rs", src3).is_empty());
}

// -------------------------------------------------------------------
// Cross-cutting: literals and comments can never trigger rules.
// -------------------------------------------------------------------

#[test]
fn rule_tokens_inside_literals_and_comments_are_inert() {
    let src = r##"
// A comment mentioning x.unwrap() and panic!().
/* block comment: measurement == forged */
pub fn doc() -> &'static str {
    "call .unwrap() or compare tag == expected"
}
pub fn raw() -> &'static str {
    r#"HashMap iteration, len as u32, expect("boom")"#
}
"##;
    assert!(rules_hit("crates/deta-core/src/wire.rs", src).is_empty());
    assert!(rules_hit("crates/deta-core/src/aggregator.rs", src).is_empty());
    assert!(rules_hit("crates/deta-crypto/src/aead.rs", src).is_empty());
}
