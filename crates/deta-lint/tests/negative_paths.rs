//! Negative-path tests for the analyzer's two CI surfaces: the
//! `--json` report schema and the `--self-check` meta-check. The
//! positive paths run on every `check.sh`; these prove the *failure*
//! modes are loud and name the offender — a corrupted report schema
//! fails validation pointing at the broken key, and an under-fixtured
//! rule fails the self-check by name.

use deta_lint::rules::{Violation, ALL_RULES};
use deta_lint::{self_check, validate_report_json, AllowEntry, LintReport};
use std::path::PathBuf;

/// A populated report whose JSON exercises every schema branch.
fn sample_report() -> LintReport {
    LintReport {
        violations: vec![Violation {
            rule: ALL_RULES[0],
            path: "crates/deta-core/src/party.rs".to_string(),
            line: 42,
            ident: "secret_key".to_string(),
            message: "example \"quoted\" finding\nwith a newline".to_string(),
        }],
        stale_allows: vec![AllowEntry {
            rule: ALL_RULES[1].to_string(),
            path: "crates/deta-crypto/src/lib.rs".to_string(),
            identifier: "ct_eq".to_string(),
            reason: "kept for the negative fixture".to_string(),
        }],
        files_scanned: 7,
        suppressed: 3,
    }
}

#[test]
fn well_formed_report_json_validates() {
    let populated = sample_report().to_json();
    validate_report_json(&populated).expect("a populated report must validate");
    let empty = LintReport::default().to_json();
    validate_report_json(&empty).expect("an empty report must validate");
}

#[test]
fn corrupt_report_schema_fails_naming_the_broken_key() {
    let good = sample_report().to_json();

    // A dropped top-level key is named in the failure.
    let missing_clean = good.replace("\"clean\"", "\"cleaned\"");
    let err = validate_report_json(&missing_clean).expect_err("schema must require `clean`");
    assert!(err.contains("clean"), "error must name the key, got: {err}");

    // A violation stripped of its `rule` field is located and named.
    let missing_rule = good.replace("\"rule\":", "\"ruul\":");
    let err = validate_report_json(&missing_rule).expect_err("schema must require `rule`");
    assert!(
        err.contains("rule") && err.contains("violations[0]"),
        "error must locate the violation and name the field, got: {err}"
    );

    // A rule outside the registry is rejected by name.
    let unknown_rule = good.replace(ALL_RULES[0], "no-such-rule");
    let err = validate_report_json(&unknown_rule).expect_err("unknown rules must be rejected");
    assert!(
        err.contains("no-such-rule"),
        "error must name the bogus rule, got: {err}"
    );

    // A type confusion (string where a number belongs) is named.
    let bad_type = good.replace("\"files_scanned\": 7", "\"files_scanned\": \"7\"");
    let err = validate_report_json(&bad_type).expect_err("schema must type-check");
    assert!(
        err.contains("files_scanned"),
        "error must name the mistyped key, got: {err}"
    );

    // Truncation (a partial write of the artifact) is caught.
    let truncated = &good[..good.len() - 2];
    validate_report_json(truncated).expect_err("truncated JSON must fail");

    // An internally inconsistent report — `clean: true` alongside
    // findings — is rejected even though every key parses.
    let lying = good.replace("\"clean\": false", "\"clean\": true");
    let err = validate_report_json(&lying).expect_err("clean must match the findings");
    assert!(err.contains("clean"), "error must name the lie, got: {err}");
}

/// Builds a throwaway workspace root whose deta-lint fixture directory
/// mentions each rule the given number of times.
fn synthetic_root(tag: &str, counts: &[(&str, usize)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("deta-lint-negative-{tag}-{}", std::process::id()));
    let tests_dir = root.join("crates/deta-lint/tests");
    std::fs::create_dir_all(&tests_dir).expect("create synthetic tests dir");
    let mut text = String::from("// synthetic fixture inventory\n");
    for (rule, count) in counts {
        for _ in 0..*count {
            text.push_str(&format!("// fixture for {rule}\n"));
        }
    }
    std::fs::write(tests_dir.join("fixtures.rs"), text).expect("write synthetic fixture");
    root
}

#[test]
fn self_check_fails_naming_the_underfixtured_rule() {
    // Every rule fixture-covered twice except the victim, covered once.
    let victim = ALL_RULES[0];
    let counts: Vec<(&str, usize)> = ALL_RULES
        .iter()
        .map(|&r| (r, if r == victim { 1 } else { 2 }))
        .collect();
    let root = synthetic_root("underfixtured", &counts);
    let err = self_check(&root).expect_err("one under-fixtured rule must fail the check");
    assert!(
        err.contains(&format!("rule `{victim}` has 1 fixture reference(s)")),
        "failure must name the rule and its count, got: {err}"
    );
    for &other in &ALL_RULES[1..] {
        assert!(
            !err.contains(&format!("rule `{other}`")),
            "covered rule `{other}` must not be blamed, got: {err}"
        );
    }
}

#[test]
fn self_check_fails_when_fixtures_are_missing_entirely() {
    let root = synthetic_root("empty", &[]);
    let err = self_check(&root).expect_err("zero fixtures must fail the check");
    // With an empty inventory every rule is named with a zero count.
    for &rule in ALL_RULES {
        assert!(
            err.contains(&format!("rule `{rule}` has 0 fixture reference(s)")),
            "failure must name `{rule}`, got: {err}"
        );
    }
}
