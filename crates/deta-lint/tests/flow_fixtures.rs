//! Fixtures for the three flow passes (rules 7–9): at least two
//! positive and two negative cases each, plus the planted
//! rename-evasion case that motivates the taint layer — caught by
//! `secret-taint-flow`, provably missed by the token-level rule 1.

use deta_lint::parse::FileAnalysis;
use deta_lint::rules::{channel_liveness, exhaustive_handling, lock_order, no_secret_debug};
use deta_lint::taint::check_taint;
use deta_lint::Violation;

fn taint(path: &str, src: &str) -> Vec<Violation> {
    check_taint(&[FileAnalysis::new(path, src)])
}

const CORE: &str = "crates/deta-core/src/party.rs";
const RUNTIME: &str = "crates/deta-runtime/src/actor.rs";

// -------------------------------------------------------------------
// Rule 7: secret-taint-flow
// -------------------------------------------------------------------

/// The planted evasion: one rename defeats the word-heuristic rules,
/// but taint follows the binding.
#[test]
fn taint_positive_rename_evasion_caught_and_rule1_blind() {
    let src = r#"
fn report(signing_key: &[u8]) {
    let leaked = signing_key;
    let msg = format!("{leaked:?}");
    log(msg);
}
"#;
    let v = taint(CORE, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "leaked"
            && v.message.contains("signing_key")),
        "taint must catch the renamed secret: {v:?}"
    );
    // The same source is invisible to the token layer: rule 1 keys on
    // struct declarations and never sees a value flow.
    let fa = FileAnalysis::new(CORE, src);
    assert!(no_secret_debug(CORE, &fa.toks).is_empty());
}

#[test]
fn taint_positive_chained_alias_into_telemetry() {
    let src = r#"
fn emit(sealed_fragment: &[u8]) {
    let hop1 = sealed_fragment;
    let hop2 = hop1;
    deta_telemetry::event("upload", &[("payload", hop2)]);
}
"#;
    let v = taint(CORE, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "hop2"
            && v.message.contains("sealed_fragment")),
        "{v:?}"
    );
}

#[test]
fn taint_positive_interprocedural_leak() {
    let src = r#"
fn dump(buf: &[u8]) {
    println!("{buf:?}");
}
fn upload(secret_share: &[u8]) {
    let staged = secret_share;
    dump(staged);
}
"#;
    let v = taint(CORE, src);
    assert!(
        v.iter()
            .any(|v| v.rule == "secret-taint-flow" && v.ident == "dump"),
        "the call passing the tainted value must be flagged: {v:?}"
    );
}

#[test]
fn taint_negative_sanitized_length_and_public_values() {
    let src = r#"
fn report(signing_key: &[u8], verifying_key: &[u8]) {
    let n = signing_key.len();
    println!("key bytes: {n}");
    println!("{verifying_key:?}");
}
"#;
    assert!(taint(CORE, src).is_empty(), "{:?}", taint(CORE, src));
}

#[test]
fn taint_negative_sealed_bytes_on_the_wire() {
    let src = r#"
fn seal(plain: &[u8]) -> Vec<u8> { plain.to_vec() }
fn send(secret_update: &[u8]) {
    let sealed_frame = seal(secret_update);
    sealed_frame.encode();
}
"#;
    assert!(taint(CORE, src).is_empty(), "{:?}", taint(CORE, src));
}

#[test]
fn taint_negative_operator_tooling_out_of_scope() {
    let src = r#"
fn banner(secret: &[u8]) { println!("{secret:?}"); }
"#;
    assert!(taint("crates/deta-cli/src/main.rs", src).is_empty());
}

// -------------------------------------------------------------------
// Rule 7 on the socket bridge: handshake and link keys must never
// reach frame logs, telemetry, or the unsealed wire.
// -------------------------------------------------------------------

const SOCKET: &str = "crates/deta-socket/src/link.rs";

#[test]
fn taint_positive_socket_link_key_in_connection_log() {
    // A hub logging the link signing key on a failed auth would hand the
    // party identity to anyone reading the coordinator's output.
    let src = r#"
fn authenticate(link_signing_key: &[u8]) {
    let staged = link_signing_key;
    eprintln!("auth failed, key was {staged:?}");
}
"#;
    let v = taint(SOCKET, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "staged"
            && v.message.contains("link_signing_key")),
        "a link key reaching a connection log must be flagged: {v:?}"
    );
}

#[test]
fn taint_positive_socket_handshake_secret_framed_unsealed() {
    // Encoding a handshake secret outside a sealing function puts raw
    // key material on the wire — the exact leak the record layer exists
    // to prevent.
    let src = r#"
fn frame(handshake_secret: &[u8]) {
    let out = handshake_secret;
    out.encode();
}
"#;
    let v = taint(SOCKET, src);
    assert!(
        v.iter()
            .any(|v| v.rule == "secret-taint-flow" && v.message.contains("handshake_secret")),
        "an unsealed secret hitting the frame encoder must be flagged: {v:?}"
    );
}

#[test]
fn taint_positive_socket_secret_into_link_telemetry() {
    let src = r#"
fn serve(channel_secret: &[u8]) {
    let hop = channel_secret;
    deta_telemetry::event("link-up", &[("material", hop)]);
}
"#;
    let v = taint(SOCKET, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "hop"
            && v.message.contains("channel_secret")),
        "{v:?}"
    );
}

#[test]
fn taint_negative_socket_sealed_records_may_be_framed() {
    // The bridge's real data path: seal first (inside a sealing-named
    // function), then frame the sealed record. No taint may fire.
    let src = r#"
fn seal_frame(record_secret: &[u8]) -> Vec<u8> {
    let sealed_record = protect(record_secret);
    sealed_record.encode()
}
"#;
    assert!(taint(SOCKET, src).is_empty(), "{:?}", taint(SOCKET, src));
}

#[test]
fn taint_negative_socket_key_lengths_and_public_keys_loggable() {
    let src = r#"
fn authenticate(link_signing_key: &[u8], peer_verifying_key: &[u8]) {
    let n = link_signing_key.len();
    eprintln!("auth with {n}-byte key for peer {peer_verifying_key:?}");
}
"#;
    assert!(taint(SOCKET, src).is_empty(), "{:?}", taint(SOCKET, src));
}

#[test]
fn taint_positive_resume_reauth_key_in_reconnect_log() {
    // The reconnect loop re-authenticates with the seat's original key;
    // logging it on a failed resume would publish the one credential
    // the park/resume machinery exists to keep binding the seat.
    let src = r#"
fn reconnect(seat_signing_key: &[u8], attempt: u32) {
    let creds = seat_signing_key;
    eprintln!("resume attempt {attempt} with {creds:?}");
}
"#;
    let v = taint(SOCKET, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "creds"
            && v.message.contains("seat_signing_key")),
        "a re-auth key reaching the reconnect log must be flagged: {v:?}"
    );
}

#[test]
fn taint_positive_resume_secret_in_resync_telemetry() {
    // Resync telemetry may count replayed frames; it must never carry
    // the channel secret the replayed records were sealed under.
    let src = r#"
fn resync(channel_secret: &[u8], replayed: u64) {
    let material = channel_secret;
    deta_telemetry::event(
        "resync",
        &[("replayed", replayed), ("under", material)],
    );
}
"#;
    let v = taint(SOCKET, src);
    assert!(
        v.iter().any(|v| v.rule == "secret-taint-flow"
            && v.ident == "material"
            && v.message.contains("channel_secret")),
        "{v:?}"
    );
}

#[test]
fn taint_negative_resume_window_claims_are_public() {
    // The resume exchange itself — link names and next-expected seqs —
    // is plain protocol state, freely loggable and countable.
    let src = r#"
fn resume(windows: &[(String, String, u64)], reconnects: u64) {
    for (src, dst, next) in windows {
        eprintln!("resume {src}->{dst} from {next}");
    }
    deta_telemetry::event("link-resumed", &[("reconnects", reconnects)]);
}
"#;
    assert!(taint(SOCKET, src).is_empty(), "{:?}", taint(SOCKET, src));
}

// -------------------------------------------------------------------
// Rule 8: channel-liveness
// -------------------------------------------------------------------

#[test]
fn liveness_positive_unbounded_condvar_wait() {
    let src = r#"
fn serve(cv: &Condvar, m: &Mutex<u32>) {
    let mut guard = m.lock().unwrap();
    guard = cv.wait(guard).unwrap();
}
"#;
    let fa = FileAnalysis::new(RUNTIME, src);
    let v = channel_liveness(&fa);
    assert!(
        v.iter()
            .any(|v| v.rule == "channel-liveness" && v.ident == "wait"),
        "{v:?}"
    );
}

#[test]
fn liveness_positive_bare_recv_in_runtime() {
    let src = r#"
fn pump(endpoint: &Endpoint) {
    let msg = endpoint.recv();
    handle(msg);
}
"#;
    let fa = FileAnalysis::new(RUNTIME, src);
    let v = channel_liveness(&fa);
    assert!(
        v.iter()
            .any(|v| v.rule == "channel-liveness" && v.ident == "recv"),
        "{v:?}"
    );
}

#[test]
fn liveness_positive_inconsistent_lock_order() {
    let src = r#"
fn a(&self) {
    let s = lock(&self.state);
    let p = lock(&self.peers);
}
fn b(&self) {
    let p = lock(&self.peers);
    let s = lock(&self.state);
}
"#;
    let fa = FileAnalysis::new("crates/deta-transport/src/lib.rs", src);
    let v = lock_order(&[&fa]);
    assert!(
        v.iter()
            .any(|v| v.rule == "channel-liveness" && v.message.contains("opposite order")),
        "{v:?}"
    );
}

#[test]
fn liveness_negative_timeouts_and_supervised_wait() {
    let src = r#"
fn serve(cv: &Condvar, m: &Mutex<u32>, sup: &Supervisor) {
    let guard = m.lock().unwrap();
    let (g, timed_out) = cv.wait_timeout(guard, TICK).unwrap();
    let msg = endpoint.recv_timeout(TICK);
    sup.wait(a, b, c, d, e);
}
"#;
    let fa = FileAnalysis::new(RUNTIME, src);
    assert!(
        channel_liveness(&fa).is_empty(),
        "{:?}",
        channel_liveness(&fa)
    );
}

#[test]
fn liveness_negative_consistent_lock_order_and_other_crates() {
    let src = r#"
fn a(&self) {
    let s = lock(&self.state);
    let p = lock(&self.peers);
}
fn b(&self) {
    let s = lock(&self.state);
    let p = lock(&self.peers);
}
"#;
    let fa = FileAnalysis::new("crates/deta-transport/src/lib.rs", src);
    assert!(lock_order(&[&fa]).is_empty());
    // The transport's non-blocking `recv` is out of the recv check's
    // scope by design.
    let recv_src = "fn drain(&self) { while let Some(m) = self.recv() { go(m); } }";
    let fa2 = FileAnalysis::new("crates/deta-transport/src/lib.rs", recv_src);
    assert!(channel_liveness(&fa2).is_empty());
}

// -------------------------------------------------------------------
// Rule 9: exhaustive-handling
// -------------------------------------------------------------------

#[test]
fn exhaustive_positive_silent_wire_wildcard() {
    let src = r#"
fn handle(&mut self, msg: Msg) {
    match msg {
        Msg::Hello { handshake } => self.hello(handshake),
        Msg::Record { sealed } => self.record(sealed),
        _ => {}
    }
}
"#;
    let fa = FileAnalysis::new(CORE, src);
    let v = exhaustive_handling(&fa);
    assert!(
        v.iter()
            .any(|v| v.rule == "exhaustive-handling" && v.ident == "Msg"),
        "{v:?}"
    );
}

#[test]
fn exhaustive_positive_unit_body_ctl_wildcard() {
    let src = r#"
fn on_ctl(msg: Result<CtlMsg, E>) {
    match msg {
        Ok(CtlMsg::Shutdown) => stop(),
        _ => (),
    }
}
"#;
    let fa = FileAnalysis::new(RUNTIME, src);
    let v = exhaustive_handling(&fa);
    assert!(
        v.iter()
            .any(|v| v.rule == "exhaustive-handling" && v.ident == "CtlMsg"),
        "{v:?}"
    );
}

#[test]
fn exhaustive_negative_counted_drop_and_enumeration() {
    let src = r#"
fn handle(&mut self, msg: Msg) {
    match msg {
        Msg::Hello { handshake } => self.hello(handshake),
        other => {
            deta_telemetry::metrics::counter_add("ignored", other.name(), 1);
        }
    }
}
fn on_ctl(msg: Result<CtlMsg, E>) {
    match msg {
        Ok(CtlMsg::Shutdown) => stop(),
        Ok(CtlMsg::Ready | CtlMsg::Heartbeat { .. }) => count(),
        Err(_) => {}
    }
}
"#;
    let fa = FileAnalysis::new(CORE, src);
    assert!(
        exhaustive_handling(&fa).is_empty(),
        "{:?}",
        exhaustive_handling(&fa)
    );
}

#[test]
fn exhaustive_negative_non_protocol_enum_wildcard() {
    let src = r#"
fn verdict(v: Verdict) {
    match v {
        Verdict::Pass => ok(),
        _ => {}
    }
}
"#;
    let fa = FileAnalysis::new("crates/deta-simnet/src/fleet.rs", src);
    assert!(exhaustive_handling(&fa).is_empty());
}
