//! A fixed Schnorr group: the prime-order subgroup of `Z_p*`.
//!
//! The parameters are a 256-bit safe prime `p = 2q + 1` (so `q` is a
//! 255-bit prime) with generator `g = 4`, which generates the order-`q`
//! subgroup of quadratic residues. They were produced deterministically by
//! `deta-bignum`'s `gen_safe_prime` example and verified with 32 rounds of
//! Miller-Rabin plus the subgroup check `g^q = 1 (mod p)`.
//!
//! This group backs the Schnorr signatures in [`crate::sign`] and the
//! Diffie-Hellman exchange in [`crate::dh`]. It plays the role that the
//! NIST P-256 curve (`prime256v1`) plays in the paper's prototype.

use crate::rng::DetRng;
use deta_bignum::{prime::random_below, BigUint};
use std::sync::OnceLock;

/// Hex encoding of the safe prime `p`.
pub const P_HEX: &str = "d949e7cd15a3a9d0196f7f64282d4a0f10b1847a253f2a9a2ca7d163419237bb";
/// Hex encoding of the subgroup order `q = (p - 1) / 2`.
pub const Q_HEX: &str = "6ca4f3e68ad1d4e80cb7bfb21416a5078858c23d129f954d1653e8b1a0c91bdd";

fn from_hex(s: &str) -> BigUint {
    let bytes: Vec<u8> = (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect();
    BigUint::from_bytes_be(&bytes)
}

/// The shared group parameters.
pub struct Group {
    /// The field prime.
    pub p: BigUint,
    /// The subgroup order.
    pub q: BigUint,
    /// The subgroup generator.
    pub g: BigUint,
}

/// Returns the process-wide group parameters.
pub fn group() -> &'static Group {
    static GROUP: OnceLock<Group> = OnceLock::new();
    GROUP.get_or_init(|| Group {
        p: from_hex(P_HEX),
        q: from_hex(Q_HEX),
        g: BigUint::from_u64(4),
    })
}

impl Group {
    /// Computes `g^e mod p`.
    pub fn pow_g(&self, e: &BigUint) -> BigUint {
        self.g.modpow(e, &self.p)
    }

    /// Computes `b^e mod p`.
    pub fn pow(&self, b: &BigUint, e: &BigUint) -> BigUint {
        b.modpow(e, &self.p)
    }

    /// Multiplies two group elements.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.p)
    }

    /// Reduces a hash output (or any integer) into a scalar mod `q`.
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> BigUint {
        &BigUint::from_bytes_be(bytes) % &self.q
    }

    /// Samples a uniformly random non-zero scalar in `[1, q)`.
    pub fn random_scalar(&self, rng: &mut DetRng) -> BigUint {
        loop {
            let s = random_below(rng, &self.q);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// Returns `true` if `x` is a valid element of the order-`q` subgroup
    /// (excluding the identity).
    pub fn is_valid_element(&self, x: &BigUint) -> bool {
        !x.is_zero() && !x.is_one() && x < &self.p && x.modpow(&self.q, &self.p).is_one()
    }

    /// Byte length of a serialized group element.
    pub fn element_len(&self) -> usize {
        self.p.bit_len().div_ceil(8)
    }

    /// Serializes a group element to fixed-width big-endian bytes.
    pub fn element_to_bytes(&self, x: &BigUint) -> Vec<u8> {
        x.to_bytes_be_padded(self.element_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_consistent() {
        let g = group();
        // p = 2q + 1.
        assert_eq!(g.p, &g.q.shl_bits(1) + &BigUint::one());
        // Generator has order q.
        assert!(g.g.modpow(&g.q, &g.p).is_one());
        assert!(!g.g.modpow(&BigUint::one(), &g.p).is_one());
        assert_eq!(g.p.bit_len(), 256);
        assert_eq!(g.q.bit_len(), 255);
    }

    #[test]
    fn primality() {
        let g = group();
        let mut rng = DetRng::from_u64(0);
        assert!(deta_bignum::is_probable_prime(&g.p, 16, &mut rng));
        assert!(deta_bignum::is_probable_prime(&g.q, 16, &mut rng));
    }

    #[test]
    fn element_validation() {
        let g = group();
        let mut rng = DetRng::from_u64(1);
        let x = g.random_scalar(&mut rng);
        let elem = g.pow_g(&x);
        assert!(g.is_valid_element(&elem));
        // The identity and values outside the subgroup are rejected.
        assert!(!g.is_valid_element(&BigUint::one()));
        assert!(!g.is_valid_element(&BigUint::zero()));
        assert!(!g.is_valid_element(&g.p));
        // A non-residue: g generates QRs, so a generator of the full group
        // (e.g. a non-square) must fail. 2 is a non-residue iff p % 8 in
        // {3, 5}; just test p - 1 which has order 2.
        let p_minus_1 = &g.p - &BigUint::one();
        assert!(!g.is_valid_element(&p_minus_1));
    }

    #[test]
    fn exponent_homomorphism() {
        let g = group();
        let mut rng = DetRng::from_u64(2);
        let a = g.random_scalar(&mut rng);
        let b = g.random_scalar(&mut rng);
        let lhs = g.mul(&g.pow_g(&a), &g.pow_g(&b));
        let sum = (&a + &b).rem_ref(&g.q);
        let rhs = g.pow_g(&sum);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn element_serialization_roundtrip() {
        let g = group();
        let mut rng = DetRng::from_u64(3);
        let elem = g.pow_g(&g.random_scalar(&mut rng));
        let bytes = g.element_to_bytes(&elem);
        assert_eq!(bytes.len(), 32);
        assert_eq!(BigUint::from_bytes_be(&bytes), elem);
    }

    #[test]
    fn scalar_from_bytes_reduces() {
        let g = group();
        let s = g.scalar_from_bytes(&[0xff; 64]);
        assert!(s < g.q);
    }
}
