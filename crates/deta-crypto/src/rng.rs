//! A deterministic ChaCha20-based CSPRNG with labeled forking.
//!
//! Every stochastic component in this repository (data synthesis, weight
//! initialization, the model mapper, per-round permutations, attack
//! restarts) draws from a [`DetRng`] so that experiments are exactly
//! reproducible from a single seed.

use crate::chacha;
use crate::sha256::{hkdf, hmac_sha256, sha256};

/// A deterministic random number generator.
///
/// The keystream is ChaCha20 under a 256-bit seed key with an all-zero
/// nonce and an incrementing block counter. [`DetRng::fork`] derives an
/// independent generator for a labeled sub-task, which keeps parallel
/// components decoupled: adding draws to one component does not shift the
/// stream seen by another.
#[derive(Clone)]
pub struct DetRng {
    key: [u8; 32],
    counter: u64,
    buf: [u8; chacha::BLOCK_LEN],
    buf_pos: usize,
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The key is intentionally not printed.
        f.debug_struct("DetRng")
            .field("counter", &self.counter)
            .finish()
    }
}

impl DetRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        DetRng {
            key: seed,
            counter: 0,
            buf: [0u8; chacha::BLOCK_LEN],
            buf_pos: chacha::BLOCK_LEN,
        }
    }

    /// Creates a generator by hashing an arbitrary byte string.
    pub fn from_entropy(entropy: &[u8]) -> Self {
        Self::from_seed(sha256(entropy))
    }

    /// Creates a generator from a `u64` convenience seed.
    pub fn from_u64(seed: u64) -> Self {
        Self::from_entropy(&seed.to_le_bytes())
    }

    /// Derives an independent generator for the given label.
    ///
    /// Forks with distinct labels produce decoupled streams; forking twice
    /// with the same label from the same state produces identical streams.
    pub fn fork(&self, label: &[u8]) -> DetRng {
        let derived = hmac_sha256(&self.key, label);
        DetRng::from_seed(derived)
    }

    /// Derives an independent generator keyed by a label and an index.
    pub fn fork_indexed(&self, label: &[u8], index: u64) -> DetRng {
        let mut l = label.to_vec();
        l.extend_from_slice(&index.to_le_bytes());
        self.fork(&l)
    }

    fn refill(&mut self) {
        let nonce = [0u8; chacha::NONCE_LEN];
        // Use the low 32 bits as the ChaCha counter and fold the high bits
        // into the key stream position by allowing wrap-around; a single
        // generator never draws anywhere near 2^32 blocks in this codebase.
        self.buf = chacha::block(&self.key, self.counter as u32, &nonce);
        self.counter = self.counter.wrapping_add(1);
        self.buf_pos = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut pos = 0;
        while pos < dest.len() {
            if self.buf_pos == chacha::BLOCK_LEN {
                self.refill();
            }
            let take = (chacha::BLOCK_LEN - self.buf_pos).min(dest.len() - pos);
            dest[pos..pos + take].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            pos += take;
        }
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns the next random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Returns a uniformly random value in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range with zero bound");
        // Lemire-style rejection on the widening multiply.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Returns a standard normal sample (Box-Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u32> {
        let mut p: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut p);
        p
    }

    /// Expands this generator's key into `out_len` bytes bound to `info`
    /// without consuming generator state.
    pub fn derive_bytes(&self, info: &[u8], out_len: usize) -> Vec<u8> {
        hkdf(b"deta-rng-derive", &self.key, info, out_len)
    }
}

impl deta_bignum::prime::RandomSource for DetRng {
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::from_u64(7);
        let mut b = DetRng::from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::from_u64(7);
        let mut b = DetRng::from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_decoupled() {
        let root = DetRng::from_u64(1);
        let mut f1 = root.fork(b"a");
        let mut f2 = root.fork(b"b");
        assert_ne!(f1.next_u64(), f2.next_u64());
        // Forking again with the same label reproduces the stream.
        let mut f1b = root.fork(b"a");
        let mut f1c = root.fork(b"a");
        assert_eq!(f1b.next_u64(), f1c.next_u64());
    }

    #[test]
    fn fork_indexed_distinct() {
        let root = DetRng::from_u64(1);
        let a = root.fork_indexed(b"party", 0).next_u64();
        let b = root.fork_indexed(b"party", 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = DetRng::from_u64(3);
        for bound in [1u64, 2, 7, 100, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = DetRng::from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::from_u64(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = DetRng::from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn permutation_is_valid() {
        let mut rng = DetRng::from_u64(5);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = DetRng::from_u64(5);
        let mut v: Vec<u32> = (0..50).map(|i| i % 7).collect();
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        let mut got = v.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn fill_bytes_chunking_consistent() {
        let mut a = DetRng::from_u64(9);
        let mut b = DetRng::from_u64(9);
        let mut buf_a = vec![0u8; 200];
        a.fill_bytes(&mut buf_a);
        let mut buf_b = vec![0u8; 200];
        for chunk in buf_b.chunks_mut(13) {
            b.fill_bytes(chunk);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn derive_bytes_stateless() {
        let rng = DetRng::from_u64(2);
        let a = rng.derive_bytes(b"x", 16);
        let b = rng.derive_bytes(b"x", 16);
        let c = rng.derive_bytes(b"y", 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn works_as_bignum_random_source() {
        let mut rng = DetRng::from_u64(4);
        let p = deta_bignum::gen_prime(64, &mut rng);
        assert_eq!(p.bit_len(), 64);
    }
}
