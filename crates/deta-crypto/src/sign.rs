//! Schnorr signatures over the fixed group in [`crate::group`].
//!
//! These play the role of the ECDSA `prime256v1` authentication tokens in
//! the paper's two-phase protocol: the attestation proxy provisions a
//! [`SigningKey`] into each verified aggregator CVM, and parties verify
//! challenge responses against the corresponding [`VerifyingKey`].
//!
//! Nonces are derived deterministically from the secret key and message
//! (RFC 6979 style), so signing never needs an external randomness source
//! and can run inside the simulated CVM without an entropy device.

use crate::group::{group, Group};
use crate::rng::DetRng;
use crate::sha256::{hmac_sha256, sha256_concat};
use deta_bignum::BigUint;

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Challenge scalar.
    pub e: BigUint,
    /// Response scalar.
    pub s: BigUint,
}

impl Signature {
    /// Serializes as two fixed-width 32-byte scalars.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.e.to_bytes_be_padded(32);
        out.extend_from_slice(&self.s.to_bytes_be_padded(32));
        out
    }

    /// Parses a 64-byte serialized signature.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != 64 {
            return None;
        }
        Some(Signature {
            e: BigUint::from_bytes_be(&bytes[..32]),
            s: BigUint::from_bytes_be(&bytes[32..]),
        })
    }
}

/// A signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    x: BigUint,
    /// Cached public key `g^x`.
    y: BigUint,
}

/// A verifying (public) key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    /// The group element `y = g^x`.
    pub y: BigUint,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The secret scalar is intentionally not printed.
        f.debug_struct("SigningKey").finish_non_exhaustive()
    }
}

impl Drop for SigningKey {
    fn drop(&mut self) {
        // Best-effort: wipe the secret scalar when the key leaves scope
        // (e.g. a CVM shutting down).
        self.x.zeroize();
    }
}

impl SigningKey {
    /// Generates a key pair from the given RNG.
    pub fn generate(rng: &mut DetRng) -> SigningKey {
        let g = group();
        let x = g.random_scalar(rng);
        let y = g.pow_g(&x);
        SigningKey { x, y }
    }

    /// Returns the corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { y: self.y.clone() }
    }

    /// Serializes the secret scalar (for provisioning into a CVM).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.x.to_bytes_be_padded(32)
    }

    /// Reconstructs a signing key from a serialized secret scalar.
    ///
    /// Returns `None` if the scalar is zero or not reduced mod `q`.
    pub fn from_bytes(bytes: &[u8]) -> Option<SigningKey> {
        if bytes.len() != 32 {
            return None;
        }
        let g = group();
        let x = BigUint::from_bytes_be(bytes);
        if x.is_zero() || x >= g.q {
            return None;
        }
        let y = g.pow_g(&x);
        Some(SigningKey { x, y })
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let g = group();
        let k = self.derive_nonce(g, msg);
        let r = g.pow_g(&k);
        let e = challenge(g, &r, &self.y, msg);
        // s = k + e * x (mod q).
        let s = (&k + &e.mul_mod(&self.x, &g.q)).rem_ref(&g.q);
        Signature { e, s }
    }

    /// Derives a deterministic per-message nonce in `[1, q)`.
    fn derive_nonce(&self, g: &Group, msg: &[u8]) -> BigUint {
        let key = self.x.to_bytes_be_padded(32);
        let mut ctr = 0u8;
        loop {
            let mut m = msg.to_vec();
            m.push(ctr);
            let h = hmac_sha256(&key, &m);
            let k = &BigUint::from_bytes_be(&h) % &g.q;
            if !k.is_zero() {
                return k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

impl VerifyingKey {
    /// Serializes the public group element.
    pub fn to_bytes(&self) -> Vec<u8> {
        group().element_to_bytes(&self.y)
    }

    /// Parses a serialized public key, validating subgroup membership.
    pub fn from_bytes(bytes: &[u8]) -> Option<VerifyingKey> {
        let g = group();
        if bytes.len() != g.element_len() {
            return None;
        }
        let y = BigUint::from_bytes_be(bytes);
        if !g.is_valid_element(&y) {
            return None;
        }
        Some(VerifyingKey { y })
    }

    /// Verifies a signature over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let g = group();
        if sig.s >= g.q || sig.e >= g.q {
            return false;
        }
        // r' = g^s * y^{-e}; y^{-e} = y^{q - e} since y has order q.
        let neg_e = if sig.e.is_zero() {
            BigUint::zero()
        } else {
            &g.q - &sig.e
        };
        let r = g.mul(&g.pow_g(&sig.s), &g.pow(&self.y, &neg_e));
        let e = challenge(g, &r, &self.y, msg);
        // Constant-time over fixed-width encodings: the comparison must
        // not leak how many leading scalar bytes of a forgery matched.
        crate::ct_eq(&e.to_bytes_be_padded(32), &sig.e.to_bytes_be_padded(32))
    }
}

/// Computes the Fiat-Shamir challenge `H(r || y || msg) mod q`.
fn challenge(g: &Group, r: &BigUint, y: &BigUint, msg: &[u8]) -> BigUint {
    let h = sha256_concat(&[
        b"deta-schnorr-v1",
        &g.element_to_bytes(r),
        &g.element_to_bytes(y),
        msg,
    ]);
    g.scalar_from_bytes(&h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(seed: u64) -> (SigningKey, VerifyingKey) {
        let mut rng = DetRng::from_u64(seed);
        let sk = SigningKey::generate(&mut rng);
        let vk = sk.verifying_key();
        (sk, vk)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (sk, vk) = keypair(1);
        let sig = sk.sign(b"the quick brown fox");
        assert!(vk.verify(b"the quick brown fox", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, vk) = keypair(1);
        let sig = sk.sign(b"message A");
        assert!(!vk.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = keypair(1);
        let (_, vk2) = keypair(2);
        let sig = sk.sign(b"message");
        assert!(!vk2.verify(b"message", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, vk) = keypair(1);
        let sig = sk.sign(b"message");
        let bad_e = Signature {
            e: (&sig.e + &BigUint::one()).rem_ref(&group().q),
            s: sig.s.clone(),
        };
        let bad_s = Signature {
            e: sig.e.clone(),
            s: (&sig.s + &BigUint::one()).rem_ref(&group().q),
        };
        assert!(!vk.verify(b"message", &bad_e));
        assert!(!vk.verify(b"message", &bad_s));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let (sk, vk) = keypair(1);
        let sig = sk.sign(b"m");
        let huge = Signature {
            e: &sig.e + &group().q,
            s: sig.s.clone(),
        };
        assert!(!vk.verify(b"m", &huge));
    }

    #[test]
    fn deterministic_signatures() {
        let (sk, _) = keypair(1);
        assert_eq!(sk.sign(b"msg"), sk.sign(b"msg"));
        assert_ne!(sk.sign(b"msg"), sk.sign(b"msg2"));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let (sk, vk) = keypair(3);
        let sig = sk.sign(b"serialize me");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), 64);
        let back = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(vk.verify(b"serialize me", &back));
        assert!(Signature::from_bytes(&bytes[..63]).is_none());
    }

    #[test]
    fn signing_key_serialization_roundtrip() {
        let (sk, vk) = keypair(4);
        let restored = SigningKey::from_bytes(&sk.to_bytes()).unwrap();
        let sig = restored.sign(b"token challenge");
        assert!(vk.verify(b"token challenge", &sig));
    }

    #[test]
    fn signing_key_rejects_invalid_scalars() {
        assert!(SigningKey::from_bytes(&[0u8; 32]).is_none());
        assert!(SigningKey::from_bytes(&[0xffu8; 32]).is_none());
        assert!(SigningKey::from_bytes(&[1u8; 31]).is_none());
    }

    #[test]
    fn verifying_key_serialization_roundtrip() {
        let (_, vk) = keypair(5);
        let bytes = vk.to_bytes();
        assert_eq!(VerifyingKey::from_bytes(&bytes), Some(vk));
        // Invalid element (identity) rejected.
        let one = BigUint::one().to_bytes_be_padded(32);
        assert!(VerifyingKey::from_bytes(&one).is_none());
    }

    #[test]
    fn empty_message_signable() {
        let (sk, vk) = keypair(6);
        let sig = sk.sign(b"");
        assert!(vk.verify(b"", &sig));
        assert!(!vk.verify(b"x", &sig));
    }
}
