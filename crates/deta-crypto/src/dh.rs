//! Diffie-Hellman key agreement over the fixed Schnorr group.
//!
//! Used by `deta-transport` to establish per-session AEAD keys between
//! parties and aggregators after two-phase authentication, standing in for
//! the TLS handshake in the paper's prototype.

use crate::group::group;
use crate::rng::DetRng;
use crate::sha256::hkdf;
use deta_bignum::BigUint;

/// An ephemeral DH secret.
pub struct EphemeralSecret {
    a: BigUint,
    public: BigUint,
}

/// A DH public value (a group element).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey(pub BigUint);

/// Errors from key agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhError {
    /// The peer's public value is not a valid subgroup element.
    InvalidPeerKey,
}

impl std::fmt::Display for DhError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid peer public key")
    }
}

impl std::error::Error for DhError {}

impl EphemeralSecret {
    /// Generates a fresh ephemeral secret.
    pub fn generate(rng: &mut DetRng) -> EphemeralSecret {
        let g = group();
        let a = g.random_scalar(rng);
        let public = g.pow_g(&a);
        EphemeralSecret { a, public }
    }

    /// Returns the public value to send to the peer.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(self.public.clone())
    }

    /// Completes the exchange, deriving a 32-byte shared secret bound to
    /// `context` (e.g. a channel transcript hash).
    ///
    /// The shared group element is symmetric in the two parties, so both
    /// sides derive identical keys for identical `context`.
    pub fn agree(self, peer: &PublicKey, context: &[u8]) -> Result<[u8; 32], DhError> {
        let g = group();
        if !g.is_valid_element(&peer.0) {
            return Err(DhError::InvalidPeerKey);
        }
        let shared = g.pow(&peer.0, &self.a);
        let ikm = g.element_to_bytes(&shared);
        let okm = hkdf(b"deta-dh-v1", &ikm, context, 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        Ok(key)
    }
}

impl PublicKey {
    /// Serializes to fixed-width bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        group().element_to_bytes(&self.0)
    }

    /// Parses and validates a serialized public value.
    pub fn from_bytes(bytes: &[u8]) -> Option<PublicKey> {
        let g = group();
        if bytes.len() != g.element_len() {
            return None;
        }
        let y = BigUint::from_bytes_be(bytes);
        if !g.is_valid_element(&y) {
            return None;
        }
        Some(PublicKey(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        let mut rng = DetRng::from_u64(1);
        let alice = EphemeralSecret::generate(&mut rng);
        let bob = EphemeralSecret::generate(&mut rng);
        let alice_pub = alice.public_key();
        let bob_pub = bob.public_key();
        let ka = alice.agree(&bob_pub, b"ctx").unwrap();
        let kb = bob.agree(&alice_pub, b"ctx").unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn context_separates_keys() {
        let mut rng = DetRng::from_u64(2);
        let alice = EphemeralSecret::generate(&mut rng);
        let bob = EphemeralSecret::generate(&mut rng);
        let bob_pub = bob.public_key();
        let alice2 = EphemeralSecret {
            a: alice.a.clone(),
            public: alice.public.clone(),
        };
        let k1 = alice.agree(&bob_pub, b"ctx1").unwrap();
        let k2 = alice2.agree(&bob_pub, b"ctx2").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn different_peers_different_keys() {
        let mut rng = DetRng::from_u64(3);
        let alice = EphemeralSecret::generate(&mut rng);
        let alice2 = EphemeralSecret {
            a: alice.a.clone(),
            public: alice.public.clone(),
        };
        let bob = EphemeralSecret::generate(&mut rng);
        let carol = EphemeralSecret::generate(&mut rng);
        let k1 = alice.agree(&bob.public_key(), b"c").unwrap();
        let k2 = alice2.agree(&carol.public_key(), b"c").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn invalid_peer_rejected() {
        let mut rng = DetRng::from_u64(4);
        let alice = EphemeralSecret::generate(&mut rng);
        // The identity element would force a trivial shared secret.
        let bad = PublicKey(BigUint::one());
        assert_eq!(alice.agree(&bad, b"c"), Err(DhError::InvalidPeerKey));
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let mut rng = DetRng::from_u64(5);
        let e = EphemeralSecret::generate(&mut rng);
        let pk = e.public_key();
        assert_eq!(PublicKey::from_bytes(&pk.to_bytes()), Some(pk));
        assert!(PublicKey::from_bytes(&[0u8; 32]).is_none());
        assert!(PublicKey::from_bytes(&[1u8; 5]).is_none());
    }
}
