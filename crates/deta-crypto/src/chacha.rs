//! The ChaCha20 stream cipher (RFC 8439).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// Applies the ChaCha quarter round to four state words.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    // "expand 32-byte k" constants.
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream starting at
/// block `counter`).
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2 block function test vector.
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0x09, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2 cipher test vector (first 16 bytes).
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut msg = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                        only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_stream(&key, 1, &nonce, &mut msg);
        assert_eq!(hex(&msg[..16]), "6e2e359a2568f98041ba0728dd0d6981");
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; KEY_LEN];
        let nonce = [3u8; NONCE_LEN];
        let original: Vec<u8> = (0..200u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_counters_differ() {
        let key = [1u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; KEY_LEN];
        assert_ne!(
            block(&key, 0, &[0u8; NONCE_LEN]),
            block(&key, 0, &[1u8; NONCE_LEN])
        );
    }

    #[test]
    fn partial_block_xor() {
        // Streams crossing block boundaries must be consistent with a single
        // full-buffer XOR.
        let key = [9u8; KEY_LEN];
        let nonce = [4u8; NONCE_LEN];
        let mut whole = vec![0u8; 150];
        xor_stream(&key, 5, &nonce, &mut whole);
        let mut first = vec![0u8; 64];
        let mut second = vec![0u8; 86];
        xor_stream(&key, 5, &nonce, &mut first);
        xor_stream(&key, 6, &nonce, &mut second);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }
}
