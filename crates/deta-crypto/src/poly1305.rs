//! The Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with five 26-bit limbs and 64-bit intermediate products,
//! the classic portable formulation.

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// Incremental Poly1305 MAC state.
pub struct Poly1305 {
    /// Clamped `r` in 26-bit limbs.
    r: [u32; 5],
    /// Accumulator `h` in 26-bit limbs.
    h: [u32; 5],
    /// Encrypted nonce `s` (added at finalization).
    s: [u32; 4],
    /// Buffered partial block.
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a MAC state from a 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per the specification.
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());
        let r = [
            t0 & 0x3ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f03fff,
            (t3 >> 8) & 0x00fffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];
        Poly1305 {
            r,
            h: [0; 5],
            s,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Processes one 16-byte block with the given high bit (1 for full
    /// blocks, set inside the padded byte for the final partial block).
    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap());

        self.h[0] += t0 & 0x3ffffff;
        self.h[1] += ((t0 >> 26) | (t1 << 6)) & 0x3ffffff;
        self.h[2] += ((t1 >> 20) | (t2 << 12)) & 0x3ffffff;
        self.h[3] += ((t2 >> 14) | (t3 << 18)) & 0x3ffffff;
        self.h[4] += (t3 >> 8) | (hibit << 24);

        // h *= r (mod 2^130 - 5).
        let [r0, r1, r2, r3, r4] = self.r.map(|v| v as u64);
        let [h0, h1, h2, h3, h4] = self.h.map(|v| v as u64);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= 0x3ffffff;
        d1 += c;
        c = d1 >> 26;
        d1 &= 0x3ffffff;
        d2 += c;
        c = d2 >> 26;
        d2 &= 0x3ffffff;
        d3 += c;
        c = d3 >> 26;
        d3 &= 0x3ffffff;
        d4 += c;
        c = d4 >> 26;
        d4 &= 0x3ffffff;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= 0x3ffffff;
        d1 += c;

        self.h = [d0 as u32, d1 as u32, d2 as u32, d3 as u32, d4 as u32];
    }

    /// Finalizes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block: append 0x01 then zeros, hibit 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }
        // Fully reduce h.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= 0x3ffffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x3ffffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x3ffffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x3ffffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ffffff;
        h[1] += c;

        // Compute h + -p = h - (2^130 - 5); select if non-negative. The top
        // limb is left unmasked so the borrow shows up in its sign bit.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..4 {
            let t = h[i].wrapping_add(carry);
            carry = t >> 26;
            g[i] = t & 0x3ffffff;
        }
        g[4] = h[4].wrapping_add(carry).wrapping_sub(1 << 26);
        // If the subtraction did not underflow (top bit of g[4] clear in
        // two's complement), use g; otherwise keep h.
        let use_g = (g[4] >> 31) == 0;
        let mut sel = if use_g { g } else { h };
        sel[4] &= 0x3ffffff;

        // Serialize to 128 bits and add s modulo 2^128.
        let w0 = sel[0] as u64 | ((sel[1] as u64) << 26) | (((sel[2] as u64) & 0xfff) << 52);
        let w1 = ((sel[2] as u64) >> 12) | ((sel[3] as u64) << 14) | ((sel[4] as u64) << 40);
        let s_lo = self.s[0] as u64 | ((self.s[1] as u64) << 32);
        let s_hi = self.s[2] as u64 | ((self.s[3] as u64) << 32);
        let (lo, carry) = w0.overflowing_add(s_lo);
        let hi = w1.wrapping_add(s_hi).wrapping_add(carry as u64);
        let mut tag = [0u8; TAG_LEN];
        tag[..8].copy_from_slice(&lo.to_le_bytes());
        tag[8..].copy_from_slice(&hi.to_le_bytes());
        tag
    }
}

/// One-shot Poly1305 tag of `msg` under `key`.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 section 2.5.2.
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    #[test]
    fn empty_message() {
        // With r = 0 the accumulator stays 0 and the tag equals s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xabu8; 16]);
        assert_eq!(poly1305(&key, b""), [0xabu8; 16]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let msg: Vec<u8> = (0..123u8).collect();
        let oneshot = poly1305(&key, &msg);
        for chunk in [1usize, 5, 15, 16, 17, 40] {
            let mut p = Poly1305::new(&key);
            for c in msg.chunks(chunk) {
                p.update(c);
            }
            assert_eq!(p.finalize(), oneshot, "chunk={chunk}");
        }
    }

    #[test]
    fn tag_depends_on_message() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 + 1);
        assert_ne!(poly1305(&key, b"hello"), poly1305(&key, b"hellp"));
        assert_ne!(poly1305(&key, b"hello"), poly1305(&key, b"hello\0"));
    }

    #[test]
    fn tag_depends_on_key() {
        let k1: [u8; 32] = core::array::from_fn(|i| i as u8 + 1);
        let k2: [u8; 32] = core::array::from_fn(|i| i as u8 + 2);
        assert_ne!(poly1305(&k1, b"hello"), poly1305(&k2, b"hello"));
    }
}
