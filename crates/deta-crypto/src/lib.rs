//! Self-contained cryptographic primitives for the DeTA reproduction.
//!
//! Everything here is implemented from scratch on top of [`deta_bignum`]:
//!
//! * [`sha256`] — SHA-256, HMAC-SHA256, and HKDF.
//! * [`chacha`] — the ChaCha20 stream cipher.
//! * [`poly1305`] — the Poly1305 one-time authenticator.
//! * [`aead`] — ChaCha20-Poly1305 authenticated encryption.
//! * [`rng`] — a deterministic ChaCha20-based CSPRNG with labeled forking.
//! * [`group`] — a Schnorr group (prime-order subgroup of `Z_p*`).
//! * [`sign`] — Schnorr signatures (stand-in for the paper's ECDSA tokens).
//! * [`dh`] — Diffie-Hellman key agreement over the Schnorr group.
//!
//! # Security disclaimer
//!
//! These implementations are **simulation-grade**: they are functionally
//! correct and tested against published vectors where available, but they
//! are not hardened against side channels and use a 256-bit mod-p group
//! rather than a production elliptic curve. The DeTA protocol logic only
//! requires *a* EUF-CMA signature scheme, *an* AEAD, and *a* KDF; the exact
//! primitive choice is orthogonal to the system design being reproduced.

pub mod aead;
pub mod chacha;
pub mod dh;
pub mod group;
pub mod poly1305;
pub mod rng;
pub mod sha256;
pub mod sign;

pub use aead::{open, seal, AeadError, Key as AeadKey, Nonce};
pub use rng::DetRng;
pub use sign::{Signature, SigningKey, VerifyingKey};

/// Compares two byte slices in constant time (with respect to contents).
///
/// Returns `false` immediately when lengths differ; length is assumed to be
/// public in every protocol in this repository.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"hello", b"hello"));
        assert!(!ct_eq(b"hello", b"hellO"));
        assert!(!ct_eq(b"hello", b"hell"));
        assert!(ct_eq(b"", b""));
    }
}
