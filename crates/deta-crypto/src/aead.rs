//! ChaCha20-Poly1305 authenticated encryption with associated data
//! (RFC 8439 construction).

use crate::chacha;
use crate::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};

/// AEAD key. Zeroized on drop (best effort).
#[derive(Clone)]
pub struct Key(pub [u8; 32]);

impl Drop for Key {
    fn drop(&mut self) {
        for b in &mut self.0 {
            // SAFETY: `b` is a valid, aligned, exclusive reference.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

/// AEAD nonce (96 bits). Must be unique per key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonce(pub [u8; 12]);

impl Nonce {
    /// Builds a nonce from a 64-bit sequence number and a 32-bit channel id.
    ///
    /// This is the standard "counter nonce" layout used by the secure
    /// channels in `deta-transport`.
    pub fn from_parts(channel: u32, seq: u64) -> Self {
        let mut n = [0u8; 12];
        n[..4].copy_from_slice(&channel.to_le_bytes());
        n[4..].copy_from_slice(&seq.to_le_bytes());
        Nonce(n)
    }
}

/// Errors returned by [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is shorter than an authentication tag.
    Truncated,
    /// Authentication failed: the ciphertext or associated data was
    /// modified, or the key/nonce is wrong.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::Truncated => write!(f, "ciphertext shorter than tag"),
            AeadError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// Derives the one-time Poly1305 key from the cipher key and nonce.
fn poly_key(key: &Key, nonce: &Nonce) -> [u8; 32] {
    let block = chacha::block(&key.0, 0, &nonce.0);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

/// Computes the RFC 8439 MAC over `aad` and ciphertext with length trailer.
fn compute_tag(pk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(pk);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Encrypts `plaintext`, authenticating it together with `aad`.
///
/// Returns `ciphertext || tag`.
pub fn seal(key: &Key, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha::xor_stream(&key.0, 1, &nonce.0, &mut out);
    let pk = poly_key(key, nonce);
    let tag = compute_tag(&pk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts and verifies `ciphertext || tag`, returning the plaintext.
///
/// Verification happens before decryption output is released; on failure no
/// plaintext is exposed.
pub fn open(key: &Key, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let pk = poly_key(key, nonce);
    let expected = compute_tag(&pk, aad, ciphertext);
    if !ct_eq(&expected, tag) {
        return Err(AeadError::BadTag);
    }
    let mut out = ciphertext.to_vec();
    chacha::xor_stream(&key.0, 1, &nonce.0, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key(core::array::from_fn(|i| i as u8))
    }

    #[test]
    fn roundtrip() {
        let n = Nonce::from_parts(1, 42);
        let sealed = seal(&key(), &n, b"header", b"secret payload");
        let opened = open(&key(), &n, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret payload");
    }

    #[test]
    fn roundtrip_empty() {
        let n = Nonce::from_parts(0, 0);
        let sealed = seal(&key(), &n, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key(), &n, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let n = Nonce::from_parts(1, 1);
        let mut sealed = seal(&key(), &n, b"", b"attack at dawn");
        sealed[3] ^= 1;
        assert_eq!(open(&key(), &n, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn tampered_tag_rejected() {
        let n = Nonce::from_parts(1, 1);
        let mut sealed = seal(&key(), &n, b"", b"attack at dawn");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(open(&key(), &n, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let n = Nonce::from_parts(1, 1);
        let sealed = seal(&key(), &n, b"v1", b"payload");
        assert_eq!(open(&key(), &n, b"v2", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let sealed = seal(&key(), &Nonce::from_parts(1, 1), b"", b"payload");
        assert_eq!(
            open(&key(), &Nonce::from_parts(1, 2), b"", &sealed),
            Err(AeadError::BadTag)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let n = Nonce::from_parts(1, 1);
        let sealed = seal(&key(), &n, b"", b"payload");
        let other = Key([0xffu8; 32]);
        assert_eq!(open(&other, &n, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            open(&key(), &Nonce::from_parts(0, 0), b"", &[0u8; 5]),
            Err(AeadError::Truncated)
        );
    }

    #[test]
    fn nonce_from_parts_layout() {
        let n = Nonce::from_parts(0x01020304, 0x1122334455667788);
        assert_eq!(&n.0[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(&n.0[4..], &[0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn ciphertext_hides_plaintext_prefix() {
        let n = Nonce::from_parts(9, 9);
        let a = seal(&key(), &n, b"", b"aaaaaaaaaaaaaaaa");
        let b = seal(&key(), &n, b"", b"aaaaaaaaaaaaaaab");
        // Same-length plaintexts differing in one byte differ only at that
        // position in the ciphertext body (stream cipher), but tags differ.
        assert_eq!(&a[..15], &b[..15]);
        assert_ne!(&a[a.len() - TAG_LEN..], &b[b.len() - TAG_LEN..]);
    }
}
