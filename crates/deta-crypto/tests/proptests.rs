//! Property-based tests for the cryptographic primitives.

use deta_crypto::dh::EphemeralSecret;
use deta_crypto::sha256::{hkdf, hmac_sha256, sha256};
use deta_crypto::{open, seal, AeadKey, DetRng, Nonce, Signature, SigningKey};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let a = sha256(&data);
        let b = sha256(&data);
        prop_assert_eq!(a, b);
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(sha256(&flipped), a);
        }
    }

    #[test]
    fn hmac_keys_separate(msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let a = hmac_sha256(b"key-a", &msg);
        let b = hmac_sha256(b"key-b", &msg);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn hkdf_prefix_property(
        salt in proptest::collection::vec(any::<u8>(), 0..32),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        short in 1usize..32,
        extra in 1usize..32,
    ) {
        let long = hkdf(&salt, &ikm, b"ctx", short + extra);
        let shorter = hkdf(&salt, &ikm, b"ctx", short);
        prop_assert_eq!(&long[..short], &shorter[..]);
    }

    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        chan in any::<u32>(),
        seq in any::<u64>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let k = AeadKey(key);
        let n = Nonce::from_parts(chan, seq);
        let sealed = seal(&k, &n, &aad, &msg);
        prop_assert_eq!(open(&k, &n, &aad, &sealed).unwrap(), msg);
    }

    #[test]
    fn aead_tamper_detected(
        key in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(),
    ) {
        let k = AeadKey(key);
        let n = Nonce::from_parts(0, 0);
        let mut sealed = seal(&k, &n, b"", &msg);
        let idx = flip % sealed.len();
        sealed[idx] ^= 0x5a;
        prop_assert!(open(&k, &n, b"", &sealed).is_err());
    }

    #[test]
    fn signatures_verify_and_bind_message(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let sk = SigningKey::generate(&mut DetRng::from_u64(seed));
        let vk = sk.verifying_key();
        let sig = sk.sign(&msg);
        prop_assert!(vk.verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!vk.verify(&other, &sig));
    }

    #[test]
    fn signature_serialization_total(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let sk = SigningKey::generate(&mut DetRng::from_u64(seed));
        let sig = sk.sign(&msg);
        let back = Signature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn dh_agreement_symmetric(a_seed in any::<u64>(), b_seed in any::<u64>(), ctx in proptest::collection::vec(any::<u8>(), 0..32)) {
        let alice = EphemeralSecret::generate(&mut DetRng::from_u64(a_seed));
        let bob = EphemeralSecret::generate(&mut DetRng::from_u64(b_seed.wrapping_add(1) | 1));
        let pa = alice.public_key();
        let pb = bob.public_key();
        let ka = alice.agree(&pb, &ctx).unwrap();
        let kb = bob.agree(&pa, &ctx).unwrap();
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn rng_gen_range_uniformish(seed in any::<u64>(), bound in 1u64..50) {
        // Every residue must be reachable and none wildly overrepresented.
        let mut rng = DetRng::from_u64(seed);
        let n = 2000usize;
        let mut counts = vec![0usize; bound as usize];
        for _ in 0..n {
            counts[rng.gen_range(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) < expected * 2.0 + 30.0,
                "residue {i} overrepresented: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn rng_forks_are_independent(seed in any::<u64>(), l1 in any::<u8>(), l2 in any::<u8>()) {
        prop_assume!(l1 != l2);
        let root = DetRng::from_u64(seed);
        let a = root.fork(&[l1]).next_u64();
        let b = root.fork(&[l2]).next_u64();
        prop_assert_ne!(a, b);
    }
}
