//! Property-based tests for the cryptographic primitives.

use deta_crypto::dh::EphemeralSecret;
use deta_crypto::sha256::{hkdf, hmac_sha256, sha256};
use deta_crypto::{open, seal, AeadKey, DetRng, Nonce, Signature, SigningKey};
use deta_proptest::{cases, Gen};

#[test]
fn sha256_is_deterministic_and_sensitive() {
    cases("sha256_is_deterministic_and_sensitive", 128, |g| {
        let data = g.bytes(0, 512);
        let a = sha256(&data);
        let b = sha256(&data);
        assert_eq!(a, b);
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            assert_ne!(sha256(&flipped), a);
        }
    });
}

#[test]
fn hmac_keys_separate() {
    cases("hmac_keys_separate", 128, |g| {
        let msg = g.bytes(0, 128);
        let a = hmac_sha256(b"key-a", &msg);
        let b = hmac_sha256(b"key-b", &msg);
        assert_ne!(a, b);
    });
}

#[test]
fn hkdf_prefix_property() {
    cases("hkdf_prefix_property", 128, |g| {
        let salt = g.bytes(0, 32);
        let ikm = g.bytes(1, 64);
        let short = g.usize_in(1, 32);
        let extra = g.usize_in(1, 32);
        let long = hkdf(&salt, &ikm, b"ctx", short + extra);
        let shorter = hkdf(&salt, &ikm, b"ctx", short);
        assert_eq!(&long[..short], &shorter[..]);
    });
}

#[test]
fn aead_roundtrip() {
    cases("aead_roundtrip", 128, |g| {
        let k = AeadKey(g.array::<32>());
        let n = Nonce::from_parts(g.u32(), g.u64());
        let aad = g.bytes(0, 64);
        let msg = g.bytes(0, 512);
        let sealed = seal(&k, &n, &aad, &msg);
        assert_eq!(open(&k, &n, &aad, &sealed).unwrap(), msg);
    });
}

#[test]
fn aead_tamper_detected() {
    cases("aead_tamper_detected", 128, |g| {
        let k = AeadKey(g.array::<32>());
        let msg = g.bytes(1, 128);
        let n = Nonce::from_parts(0, 0);
        let mut sealed = seal(&k, &n, b"", &msg);
        let idx = g.usize_in(0, sealed.len());
        sealed[idx] ^= 0x5a;
        assert!(open(&k, &n, b"", &sealed).is_err());
    });
}

#[test]
fn signatures_verify_and_bind_message() {
    cases("signatures_verify_and_bind_message", 48, |g| {
        let sk = SigningKey::generate(&mut DetRng::from_u64(g.u64()));
        let vk = sk.verifying_key();
        let msg = g.bytes(0, 256);
        let sig = sk.sign(&msg);
        assert!(vk.verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(0);
        assert!(!vk.verify(&other, &sig));
    });
}

#[test]
fn signature_serialization_total() {
    cases("signature_serialization_total", 48, |g| {
        let sk = SigningKey::generate(&mut DetRng::from_u64(g.u64()));
        let sig = sk.sign(&g.bytes(0, 64));
        let back = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(back, sig);
    });
}

#[test]
fn dh_agreement_symmetric() {
    cases("dh_agreement_symmetric", 48, |g| {
        let a_seed = g.u64();
        let b_seed = g.u64();
        let ctx = g.bytes(0, 32);
        let alice = EphemeralSecret::generate(&mut DetRng::from_u64(a_seed));
        let bob = EphemeralSecret::generate(&mut DetRng::from_u64(b_seed.wrapping_add(1) | 1));
        let pa = alice.public_key();
        let pb = bob.public_key();
        let ka = alice.agree(&pb, &ctx).unwrap();
        let kb = bob.agree(&pa, &ctx).unwrap();
        assert_eq!(ka, kb);
    });
}

#[test]
fn rng_gen_range_uniformish() {
    cases("rng_gen_range_uniformish", 24, |g| {
        // Every residue must be reachable and none wildly overrepresented.
        let mut rng = DetRng::from_u64(g.u64());
        let bound = g.u64_in(1, 50);
        let n = 2000usize;
        let mut counts = vec![0usize; bound as usize];
        for _ in 0..n {
            counts[rng.gen_range(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) < expected * 2.0 + 30.0,
                "residue {i} overrepresented: {c} vs {expected}"
            );
        }
    });
}

#[test]
fn rng_forks_are_independent() {
    cases("rng_forks_are_independent", 128, |g| {
        let seed = g.u64();
        let l1 = g.u8();
        let mut l2 = g.u8();
        if l1 == l2 {
            l2 = l2.wrapping_add(1);
        }
        let root = DetRng::from_u64(seed);
        let a = root.fork(&[l1]).next_u64();
        let b = root.fork(&[l2]).next_u64();
        assert_ne!(a, b);
    });
}
