//! Deterministic synthetic datasets for the DeTA reproduction.
//!
//! The paper trains on MNIST, CIFAR-10, CIFAR-100, RVL-CDIP, and ImageNet.
//! Those corpora are not redistributable inside this repository, so this
//! crate synthesizes datasets with the same *shape*: image dimensions,
//! channel counts, and class counts match, and each class has a smooth
//! deterministic template pattern so that (a) models genuinely learn and
//! converge, and (b) gradient-inversion attacks produce recognizably
//! class-shaped reconstructions whose fidelity can be scored with MSE, just
//! like the paper's Tables 1-3.
//!
//! Everything is a pure function of the seed: the same
//! [`DatasetSpec`] + seed always yields bit-identical data.

pub mod splits;

pub use splits::{iid_partition, noniid_skew_partition, train_test_split};

use deta_crypto::DetRng;
use deta_nn::train::LabeledData;
use deta_tensor::Tensor;

/// The shape of a synthetic dataset.
///
/// # Examples
///
/// ```
/// use deta_datasets::{iid_partition, DatasetSpec};
///
/// let spec = DatasetSpec::mnist_like().at_resolution(8);
/// let train = spec.generate(100, 1);
/// let shards = iid_partition(&train, 4, 2);
/// assert_eq!(shards.len(), 4);
/// assert_eq!(shards[0].len(), 25);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Human-readable name (used in reports).
    pub name: &'static str,
    /// Color channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Seed namespace for the class templates (the dataset "identity").
    ///
    /// Two specs with the same `template_seed` share class patterns, so a
    /// train set and a test set drawn with different *sample* seeds remain
    /// the same classification problem.
    pub template_seed: u64,
}

impl DatasetSpec {
    /// Flat feature dimension (`C * H * W`).
    pub fn dim(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// MNIST-shaped: 1x28x28, 10 classes.
    pub fn mnist_like() -> DatasetSpec {
        DatasetSpec {
            name: "mnist-like",
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
            template_seed: 0,
        }
    }

    /// CIFAR-10-shaped: 3x32x32, 10 classes.
    pub fn cifar10_like() -> DatasetSpec {
        DatasetSpec {
            name: "cifar10-like",
            channels: 3,
            height: 32,
            width: 32,
            classes: 10,
            template_seed: 0,
        }
    }

    /// CIFAR-100-shaped: 3x32x32, 100 classes.
    pub fn cifar100_like() -> DatasetSpec {
        DatasetSpec {
            name: "cifar100-like",
            channels: 3,
            height: 32,
            width: 32,
            classes: 100,
            template_seed: 0,
        }
    }

    /// RVL-CDIP-shaped: grayscale documents, 16 classes.
    ///
    /// Real RVL-CDIP images are 1000px scans; this uses 32x32 thumbnails.
    pub fn rvlcdip_like() -> DatasetSpec {
        DatasetSpec {
            name: "rvlcdip-like",
            channels: 1,
            height: 32,
            width: 32,
            classes: 16,
            template_seed: 0,
        }
    }

    /// ImageNet-shaped color images (downscaled), 100 classes.
    pub fn imagenet_like() -> DatasetSpec {
        DatasetSpec {
            name: "imagenet-like",
            channels: 3,
            height: 32,
            width: 32,
            classes: 100,
            template_seed: 0,
        }
    }

    /// Returns a copy with a different square resolution.
    ///
    /// Benchmarks use this to trade fidelity for runtime; the class
    /// structure is unchanged.
    pub fn at_resolution(mut self, hw: usize) -> DatasetSpec {
        self.height = hw;
        self.width = hw;
        self
    }

    /// Returns the deterministic template image for a class, flattened to
    /// `[C * H * W]` with values in `[0, 1]`.
    ///
    /// Templates are smooth superpositions of class-seeded sinusoids — far
    /// apart in pixel space, so classes are learnable and reconstructions
    /// are visually attributable to a class.
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.classes`.
    pub fn class_template(&self, class: usize) -> Vec<f32> {
        assert!(class < self.classes, "class out of range");
        let mut rng = DetRng::from_u64(self.template_seed)
            .fork(b"dataset-template")
            .fork_indexed(self.name.as_bytes(), class as u64);
        let mut img = vec![0.0f32; self.dim()];
        // Per channel: 3 random 2-D sinusoids plus a random offset blob.
        for c in 0..self.channels {
            let base = c * self.height * self.width;
            let mut waves = Vec::new();
            for _ in 0..3 {
                let fx = rng.next_f64() * 3.0 + 0.5;
                let fy = rng.next_f64() * 3.0 + 0.5;
                let phase = rng.next_f64() * std::f64::consts::TAU;
                let amp = rng.next_f64() * 0.5 + 0.25;
                waves.push((fx, fy, phase, amp));
            }
            let (cx, cy) = (rng.next_f64(), rng.next_f64());
            let blob_w = rng.next_f64() * 0.2 + 0.1;
            for y in 0..self.height {
                for x in 0..self.width {
                    let u = x as f64 / self.width as f64;
                    let v = y as f64 / self.height as f64;
                    let mut val = 0.0f64;
                    for &(fx, fy, phase, amp) in &waves {
                        val += amp * (std::f64::consts::TAU * (fx * u + fy * v) + phase).sin();
                    }
                    let d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
                    val += (-d2 / blob_w).exp();
                    // Map roughly [-1.75, 2.75] to [0, 1].
                    img[base + y * self.width + x] = (((val + 1.75) / 4.5).clamp(0.0, 1.0)) as f32;
                }
            }
        }
        img
    }

    /// Generates `n` labeled examples.
    ///
    /// Labels cycle through classes in a seeded random order; each sample
    /// is its class template plus Gaussian pixel noise and a small random
    /// brightness shift, clamped to `[0, 1]`.
    pub fn generate(&self, n: usize, seed: u64) -> LabeledData {
        let templates: Vec<Vec<f32>> = (0..self.classes).map(|c| self.class_template(c)).collect();
        let mut rng = DetRng::from_u64(seed).fork(b"dataset-samples");
        let dim = self.dim();
        let mut feats = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(self.classes as u64) as usize;
            let brightness = (rng.next_f32() - 0.5) * 0.2;
            let template = &templates[class];
            for &t in template.iter() {
                let noise = rng.next_gaussian() as f32 * 0.1;
                feats.push((t + noise + brightness).clamp(0.0, 1.0));
            }
            labels.push(class);
        }
        LabeledData::new(Tensor::from_vec(feats, &[n, dim]), labels)
    }

    /// Generates `n` examples all of one class (used by attack harnesses
    /// that need known ground-truth images).
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.classes`.
    pub fn generate_class(&self, class: usize, n: usize, seed: u64) -> LabeledData {
        assert!(class < self.classes);
        let template = self.class_template(class);
        let mut rng = DetRng::from_u64(seed).fork_indexed(b"dataset-class", class as u64);
        let dim = self.dim();
        let mut feats = Vec::with_capacity(n * dim);
        for _ in 0..n {
            for &t in template.iter() {
                let noise = rng.next_gaussian() as f32 * 0.05;
                feats.push((t + noise).clamp(0.0, 1.0));
            }
        }
        LabeledData::new(Tensor::from_vec(feats, &[n, dim]), vec![class; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_paper_shapes() {
        let m = DatasetSpec::mnist_like();
        assert_eq!((m.channels, m.height, m.width, m.classes), (1, 28, 28, 10));
        let c = DatasetSpec::cifar10_like();
        assert_eq!((c.channels, c.classes), (3, 10));
        assert_eq!(DatasetSpec::cifar100_like().classes, 100);
        assert_eq!(DatasetSpec::rvlcdip_like().classes, 16);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::mnist_like().at_resolution(8);
        let a = spec.generate(20, 7);
        let b = spec.generate(20, 7);
        assert_eq!(a.features.data(), b.features.data());
        assert_eq!(a.labels, b.labels);
        let c = spec.generate(20, 8);
        assert_ne!(a.features.data(), c.features.data());
    }

    #[test]
    fn values_in_unit_range() {
        let spec = DatasetSpec::cifar10_like().at_resolution(8);
        let d = spec.generate(50, 1);
        assert!(d.features.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn labels_cover_classes() {
        let spec = DatasetSpec::mnist_like().at_resolution(8);
        let d = spec.generate(500, 2);
        let mut seen = vec![false; spec.classes];
        for &l in &d.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all classes sampled");
    }

    #[test]
    fn templates_are_distinct() {
        let spec = DatasetSpec::mnist_like().at_resolution(16);
        let t0 = spec.class_template(0);
        let t1 = spec.class_template(1);
        let mse: f32 = t0
            .iter()
            .zip(t1.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / t0.len() as f32;
        assert!(mse > 0.01, "templates too similar: mse={mse}");
    }

    #[test]
    fn samples_cluster_near_their_template() {
        let spec = DatasetSpec::mnist_like().at_resolution(16);
        let d = spec.generate_class(3, 5, 9);
        let t = spec.class_template(3);
        for i in 0..5 {
            let row = &d.features.data()[i * spec.dim()..(i + 1) * spec.dim()];
            let mse: f32 = row
                .iter()
                .zip(t.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / t.len() as f32;
            assert!(mse < 0.01, "sample too far from template: {mse}");
        }
    }

    #[test]
    fn resolution_override() {
        let spec = DatasetSpec::cifar10_like().at_resolution(16);
        assert_eq!(spec.dim(), 3 * 16 * 16);
        let d = spec.generate(3, 1);
        assert_eq!(d.features.shape(), &[3, 3 * 16 * 16]);
    }

    #[test]
    fn a_model_can_learn_the_synthetic_data() {
        use deta_nn::models::mlp;
        use deta_nn::train::{evaluate, train_local};
        let spec = DatasetSpec::mnist_like().at_resolution(8);
        let train = spec.generate(300, 5);
        let test = spec.generate(100, 6);
        let mut rng = deta_crypto::DetRng::from_u64(0);
        let mut model = mlp(&[spec.dim(), 32, spec.classes], &mut rng);
        train_local(&mut model, &train, 5, 32, 0.5);
        let (_, acc) = evaluate(&mut model, &test, 50);
        assert!(acc > 0.8, "synthetic data should be learnable, acc={acc}");
    }
}
