//! Federated data partitioning: IID and non-IID splits.

use deta_crypto::DetRng;
use deta_nn::train::LabeledData;
use deta_tensor::Tensor;

/// Builds a `LabeledData` from selected row indices of `data`.
fn take_rows(data: &LabeledData, idx: &[usize]) -> LabeledData {
    let d = data.dim();
    let mut feats = Vec::with_capacity(idx.len() * d);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        feats.extend_from_slice(&data.features.data()[i * d..(i + 1) * d]);
        labels.push(data.labels[i]);
    }
    LabeledData::new(Tensor::from_vec(feats, &[idx.len(), d]), labels)
}

/// Splits `data` into a train and test portion (`test_frac` of rows go to
/// the test set) after a seeded shuffle.
///
/// # Panics
///
/// Panics if `test_frac` is not in `(0, 1)`.
pub fn train_test_split(
    data: &LabeledData,
    test_frac: f64,
    seed: u64,
) -> (LabeledData, LabeledData) {
    assert!(
        test_frac > 0.0 && test_frac < 1.0,
        "test_frac must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..data.len()).collect();
    DetRng::from_u64(seed)
        .fork(b"train-test-split")
        .shuffle(&mut idx);
    let n_test = ((data.len() as f64) * test_frac).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test);
    (take_rows(data, train_idx), take_rows(data, test_idx))
}

/// Randomly partitions `data` into `n_parties` near-equal IID shards,
/// mirroring the paper's "randomly partitioned the training set into equal
/// sets" setup.
///
/// # Panics
///
/// Panics if `n_parties == 0` or exceeds the number of examples.
pub fn iid_partition(data: &LabeledData, n_parties: usize, seed: u64) -> Vec<LabeledData> {
    assert!(n_parties > 0, "need at least one party");
    assert!(n_parties <= data.len(), "more parties than examples");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    DetRng::from_u64(seed)
        .fork(b"iid-partition")
        .shuffle(&mut idx);
    let base = data.len() / n_parties;
    let rem = data.len() % n_parties;
    let mut shards = Vec::with_capacity(n_parties);
    let mut start = 0;
    for p in 0..n_parties {
        let size = base + usize::from(p < rem);
        shards.push(take_rows(data, &idx[start..start + size]));
        start += size;
    }
    shards
}

/// Partitions `data` with the paper's non-IID "90-10 skew": each party has
/// two dominant classes holding `dominant_frac` of its data, the remaining
/// classes sharing the rest.
///
/// Dominant class pairs rotate across parties so coverage of all classes
/// is balanced when `n_parties * 2 >= classes`.
///
/// # Panics
///
/// Panics if the dataset has fewer than 3 classes or `dominant_frac` is
/// not in `(0, 1)`.
pub fn noniid_skew_partition(
    data: &LabeledData,
    n_parties: usize,
    dominant_frac: f64,
    seed: u64,
) -> Vec<LabeledData> {
    assert!(n_parties > 0);
    assert!(dominant_frac > 0.0 && dominant_frac < 1.0);
    let classes = data.labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(classes >= 3, "non-IID skew needs at least 3 classes");
    // Bucket example indices by class, in seeded random order within class.
    let mut rng = DetRng::from_u64(seed).fork(b"noniid-partition");
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in data.labels.iter().enumerate() {
        buckets[l].push(i);
    }
    for b in &mut buckets {
        rng.shuffle(b);
    }
    // Cursor per class so parties draw disjoint examples.
    let mut cursor = vec![0usize; classes];
    let per_party = data.len() / n_parties;
    let mut shards = Vec::with_capacity(n_parties);
    for p in 0..n_parties {
        let dom_a = (2 * p) % classes;
        let dom_b = (2 * p + 1) % classes;
        let n_dom = ((per_party as f64) * dominant_frac).round() as usize;
        let n_rest = per_party - n_dom;
        let mut idx = Vec::with_capacity(per_party);
        // Draw dominant examples, split between the two dominant classes.
        for (k, &c) in [dom_a, dom_b].iter().enumerate() {
            let want = n_dom / 2 + usize::from(k == 0 && n_dom % 2 == 1);
            let avail = buckets[c].len() - cursor[c];
            let take = want.min(avail);
            idx.extend_from_slice(&buckets[c][cursor[c]..cursor[c] + take]);
            cursor[c] += take;
        }
        // Draw the long tail uniformly from the remaining classes.
        let tail_classes: Vec<usize> = (0..classes).filter(|&c| c != dom_a && c != dom_b).collect();
        let mut drawn = 0usize;
        let mut tc = 0usize;
        let mut stalled = 0usize;
        while drawn < n_rest && stalled < tail_classes.len() {
            let c = tail_classes[tc % tail_classes.len()];
            tc += 1;
            if cursor[c] < buckets[c].len() {
                idx.push(buckets[c][cursor[c]]);
                cursor[c] += 1;
                drawn += 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
        }
        rng.shuffle(&mut idx);
        shards.push(take_rows(data, &idx));
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn data() -> LabeledData {
        DatasetSpec::mnist_like().at_resolution(8).generate(400, 3)
    }

    #[test]
    fn train_test_split_sizes() {
        let d = data();
        let (train, test) = train_test_split(&d, 0.25, 1);
        assert_eq!(test.len(), 100);
        assert_eq!(train.len(), 300);
    }

    #[test]
    fn train_test_split_disjoint_and_complete() {
        let d = data();
        let (train, test) = train_test_split(&d, 0.5, 1);
        // Row multisets must partition the original (match on feature rows).
        let dim = d.dim();
        let mut all: Vec<&[f32]> = Vec::new();
        for i in 0..train.len() {
            all.push(&train.features.data()[i * dim..(i + 1) * dim]);
        }
        for i in 0..test.len() {
            all.push(&test.features.data()[i * dim..(i + 1) * dim]);
        }
        assert_eq!(all.len(), d.len());
    }

    #[test]
    fn iid_partition_sizes() {
        let d = data();
        let shards = iid_partition(&d, 4, 2);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.len() == 100));
        let shards3 = iid_partition(&d, 3, 2);
        let total: usize = shards3.iter().map(|s| s.len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn iid_partition_deterministic() {
        let d = data();
        let a = iid_partition(&d, 4, 2);
        let b = iid_partition(&d, 4, 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn iid_shards_have_mixed_classes() {
        let d = data();
        let shards = iid_partition(&d, 4, 2);
        for s in &shards {
            let distinct: std::collections::HashSet<usize> = s.labels.iter().copied().collect();
            assert!(distinct.len() >= 8, "IID shard should see most classes");
        }
    }

    #[test]
    fn noniid_shards_are_skewed() {
        let d = data();
        let shards = noniid_skew_partition(&d, 4, 0.9, 5);
        for (p, s) in shards.iter().enumerate() {
            let mut counts = vec![0usize; 10];
            for &l in &s.labels {
                counts[l] += 1;
            }
            let dom_a = (2 * p) % 10;
            let dom_b = (2 * p + 1) % 10;
            let dom = counts[dom_a] + counts[dom_b];
            let frac = dom as f64 / s.len() as f64;
            assert!(
                frac > 0.7,
                "party {p}: dominant fraction {frac} too low ({counts:?})"
            );
        }
    }

    #[test]
    fn noniid_shards_are_disjoint() {
        // Index disjointness is guaranteed by per-class cursors; verify via
        // total count not exceeding the source.
        let d = data();
        let shards = noniid_skew_partition(&d, 4, 0.9, 5);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert!(total <= d.len());
        assert!(total >= d.len() / 2, "partition lost too many examples");
    }

    #[test]
    #[should_panic]
    fn zero_parties_panics() {
        iid_partition(&data(), 0, 1);
    }
}
