//! Trace-context propagation: a round-scoped trace id plus parent
//! message id that rides every transport payload as a small outer
//! envelope, so spans emitted by any party/aggregator/supervisor —
//! across threads *and* across `deta-socket` processes — stitch into
//! one causal trace per round.
//!
//! Design (DESIGN.md §15):
//!
//! * **Byte-level envelope, not a codec change.** The envelope wraps
//!   the already-encoded payload: one marker byte ([`ENVELOPE_MARK`],
//!   chosen to collide with no `Msg`/`CtlMsg` tag), then
//!   `trace_id`/`msg_id`/`parent` as little-endian `u64`s, then the
//!   payload verbatim. Both wire codecs, every actor dispatch loop,
//!   and the socket bridge (which relays payloads verbatim) are
//!   untouched.
//! * **Secret-free by construction.** Only ids cross the boundary —
//!   the sealed payload is carried opaquely and never inspected, so
//!   lint rule 6's no-secret-telemetry invariant holds at this layer
//!   by shape alone.
//! * **Bit-exact when disabled.** The transport wraps only while the
//!   global sink is enabled; with telemetry off the bytes on the wire
//!   are identical to a build without this module.
//!
//! The thread-local [`TraceCtx`] is *adopted* on receive: unwrapping a
//! message installs `{trace_id, parent: msg_id}` on the receiving
//! thread before the actor handles it, so existing spans deep inside
//! `deta-core` parent correctly with no call-site changes.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The causal context carried by the current thread: which round-scoped
/// trace the work belongs to and which message (by id) caused it.
/// A zero `trace_id` means "untraced".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Round-scoped trace id (the round number, stamped by the
    /// supervisor at round start); 0 = untraced.
    pub trace_id: u64,
    /// Id of the message whose delivery caused the current work;
    /// 0 = locally originated (e.g. the supervisor starting a round).
    pub parent: u64,
}

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx { trace_id: 0, parent: 0 }) };
}

/// The current thread's trace context.
pub fn current() -> TraceCtx {
    CTX.with(Cell::get)
}

/// Replaces the current thread's trace context, returning the previous
/// one (callers that scope a context can restore it).
pub fn set_current(ctx: TraceCtx) -> TraceCtx {
    CTX.with(|c| c.replace(ctx))
}

/// Starts a fresh round-scoped trace on this thread: subsequent sends
/// carry `trace_id` with no parent. The supervisor calls this at the
/// top of every round.
pub fn begin(trace_id: u64) {
    set_current(TraceCtx {
        trace_id,
        parent: 0,
    });
}

/// A process-unique message id: the low bits are a per-process counter,
/// the high bits the process id, so ids minted by different OS
/// processes of one deployment never collide. 0 is never returned.
pub fn next_msg_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed) & ((1 << 40) - 1);
    (u64::from(std::process::id()) << 40) | n.max(1)
}

/// First byte of a trace envelope. Chosen high so it can never collide
/// with a `Msg`/`CtlMsg` tag byte (both codecs use small consecutive
/// tags); any payload not starting with this byte passes through
/// [`unwrap_envelope`] untouched.
pub const ENVELOPE_MARK: u8 = 0xF7;

/// Envelope size: marker + trace_id + msg_id + parent.
pub const ENVELOPE_LEN: usize = 1 + 8 + 8 + 8;

/// Wraps an encoded payload in a trace envelope.
pub fn wrap_envelope(trace_id: u64, msg_id: u64, parent: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_LEN + payload.len());
    out.push(ENVELOPE_MARK);
    out.extend_from_slice(&trace_id.to_le_bytes());
    out.extend_from_slice(&msg_id.to_le_bytes());
    out.extend_from_slice(&parent.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a trace envelope into `(trace_id, msg_id, parent, payload)`.
/// Total: returns `None` for anything that is not an envelope (wrong
/// marker or too short), in which case the caller must treat the buffer
/// as a bare payload.
pub fn unwrap_envelope(buf: &[u8]) -> Option<(u64, u64, u64, &[u8])> {
    if buf.len() < ENVELOPE_LEN || buf[0] != ENVELOPE_MARK {
        return None;
    }
    let u = |at: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[at..at + 8]);
        u64::from_le_bytes(b)
    };
    Some((u(1), u(9), u(17), &buf[ENVELOPE_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips() {
        let wrapped = wrap_envelope(3, 42, 7, b"payload");
        let (trace_id, msg_id, parent, inner) =
            unwrap_envelope(&wrapped).expect("wrapped buffer unwraps");
        assert_eq!((trace_id, msg_id, parent), (3, 42, 7));
        assert_eq!(inner, b"payload");
    }

    #[test]
    fn bare_payloads_pass_through() {
        // Every Msg/CtlMsg encoding starts with a small tag byte.
        assert!(unwrap_envelope(&[1, 2, 3]).is_none());
        // Marker byte but too short: not an envelope.
        assert!(unwrap_envelope(&[ENVELOPE_MARK; 24]).is_none());
        // Empty.
        assert!(unwrap_envelope(&[]).is_none());
    }

    #[test]
    fn msg_ids_are_unique_and_nonzero() {
        let a = next_msg_id();
        let b = next_msg_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Both carry this process's pid in the high bits.
        assert_eq!(a >> 40, u64::from(std::process::id()));
    }

    #[test]
    fn thread_context_is_scoped_per_thread() {
        begin(5);
        assert_eq!(current().trace_id, 5);
        let prev = set_current(TraceCtx {
            trace_id: 6,
            parent: 9,
        });
        assert_eq!(prev.trace_id, 5);
        assert_eq!(current().parent, 9);
        // A fresh thread starts untraced.
        std::thread::spawn(|| assert_eq!(current(), TraceCtx::default()))
            .join()
            .expect("spawned thread runs");
        set_current(TraceCtx::default());
    }
}
