//! deta-telemetry: zero-dependency tracing, metrics, and per-node
//! flight recorders for the DeTA deployment.
//!
//! Design constraints (see DESIGN.md §9):
//!
//! * **Cheap enough to leave compiled in.** One process-global sink
//!   switch ([`enable`]/[`enabled`]). While disabled, every emit path —
//!   [`event`], [`span`], [`metrics::counter_add`],
//!   [`metrics::histogram_observe`] — is a branch plus one relaxed
//!   atomic load, with no allocation. The switch is sticky-on for the
//!   life of the process, which keeps enablement race-free across
//!   threads.
//! * **Secret-free by construction.** Payloads are built from the
//!   closed [`TelemetryValue`] set (bool/int/float/short string);
//!   sealed records, keys, and signatures have no conversion into it,
//!   and deta-lint rule 6 (`no-secret-telemetry`) flags call sites
//!   whose arguments name secret-like identifiers.
//! * **Per-node attribution without plumbing.** Each node thread
//!   attaches its [`FlightRecorder`] thread-locally ([`attach`]);
//!   instrumentation deep inside `deta-core`/`deta-transport` lands in
//!   the right ring with no extra parameters. The supervisor drains
//!   every ring into a JSONL dump ([`trace_dump`]) whenever it
//!   constructs a fault verdict.
//!
//! Timestamps are monotonic nanoseconds since a process-wide epoch
//! ([`now_ns`]) — wall-clock-free, so traces from deterministic runs
//! stay comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod record;
pub mod trace;
pub mod value;

pub use export::{last_dump_path, trace_dump, unique_stem, TraceDump};
pub use record::{FlightRecorder, RecordKind, TelemetryRecord};
pub use trace::TraceCtx;
pub use value::TelemetryValue;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EMITS: AtomicU64 = AtomicU64::new(0);

/// Turns the global telemetry sink on. Sticky: there is deliberately no
/// way to turn it back off, so concurrently running sessions never
/// observe a half-enabled process (tests that need a disabled sink run
/// in their own test binary).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether the global sink is on. This is the entire disabled-path
/// cost: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total records/observations emitted while enabled. The overhead
/// benchmark uses this to bound the disabled-sink cost from a measured
/// per-call price.
pub fn emits() -> u64 {
    EMITS.load(Ordering::Relaxed)
}

pub(crate) fn note_emit() {
    EMITS.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process telemetry epoch.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<FlightRecorder>>> = const { RefCell::new(None) };
}

/// Attaches `rec` as this thread's flight recorder; subsequent
/// [`event`]s and [`span`]s on this thread land in its ring. Returns a
/// guard restoring the previous recorder (usually none) on drop —
/// actor loops hold it for their whole lifetime so a thread never
/// outlives its attribution.
pub fn attach(rec: Arc<FlightRecorder>) -> AttachGuard {
    let prev = CURRENT.with(|c| c.replace(Some(rec)));
    AttachGuard { prev }
}

/// Restores the previously attached recorder when dropped.
pub struct AttachGuard {
    prev: Option<Arc<FlightRecorder>>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn with_current<F: FnOnce(&FlightRecorder)>(f: F) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow().as_ref() {
            f(rec);
        }
    });
}

/// Records a point-in-time event on the current thread's flight
/// recorder. No-op (branch + atomic load, no allocation) while the sink
/// is disabled — call sites whose *arguments* allocate (string fields)
/// should themselves branch on [`enabled`].
pub fn event(name: &'static str, fields: &[(&'static str, TelemetryValue)]) {
    if !enabled() {
        return;
    }
    note_emit();
    let ctx = trace::current();
    with_current(|rec| {
        rec.push(TelemetryRecord {
            t_ns: now_ns(),
            kind: RecordKind::Event,
            name,
            dur_ns: None,
            trace_id: ctx.trace_id,
            parent: ctx.parent,
            fields: fields.to_vec(),
        });
    });
}

/// Starts a timed span; the record (with duration) is emitted to the
/// current thread's flight recorder when the returned [`Span`] drops.
/// While the sink is disabled the span is dead weight: no clock read,
/// no allocation, nothing emitted.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            start_ns: 0,
            live: false,
            fields: Vec::new(),
        };
    }
    Span {
        name,
        start_ns: now_ns(),
        live: true,
        fields: Vec::new(),
    }
}

/// An in-flight timed operation (see [`span`]).
pub struct Span {
    name: &'static str,
    start_ns: u64,
    live: bool,
    fields: Vec<(&'static str, TelemetryValue)>,
}

impl Span {
    /// Attaches a field to the span record (no-op while disabled).
    #[must_use]
    pub fn with_field(mut self, name: &'static str, value: TelemetryValue) -> Span {
        if self.live {
            self.fields.push((name, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        note_emit();
        let dur = now_ns().saturating_sub(self.start_ns);
        let fields = std::mem::take(&mut self.fields);
        let (name, start_ns) = (self.name, self.start_ns);
        let ctx = trace::current();
        with_current(|rec| {
            rec.push(TelemetryRecord {
                t_ns: start_ns,
                kind: RecordKind::Span,
                name,
                dur_ns: Some(dur),
                trace_id: ctx.trace_id,
                parent: ctx.parent,
                fields,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_land_in_the_attached_ring() {
        enable();
        let fr = FlightRecorder::new("party-0", 16);
        {
            let _guard = attach(fr.clone());
            event("upload", &[("round", TelemetryValue::U64(1))]);
            {
                let _span = span("local_train").with_field("round", TelemetryValue::U64(1));
            }
        }
        // Detached: nothing further lands in this ring.
        event("after_detach", &[]);
        let (records, dropped) = fr.drain();
        assert_eq!(dropped, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "upload");
        assert_eq!(records[0].kind, RecordKind::Event);
        assert_eq!(records[1].name, "local_train");
        assert_eq!(records[1].kind, RecordKind::Span);
        assert!(records[1].dur_ns.is_some());
        assert!(records[1].t_ns >= records[0].t_ns);
    }

    #[test]
    fn attach_nests_and_restores() {
        enable();
        let outer = FlightRecorder::new("outer", 4);
        let inner = FlightRecorder::new("inner", 4);
        let _g1 = attach(outer.clone());
        {
            let _g2 = attach(inner.clone());
            event("in", &[]);
        }
        event("out", &[]);
        assert_eq!(inner.drain().0.len(), 1);
        let (records, _) = outer.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "out");
    }

    #[test]
    fn emits_counter_advances_when_enabled() {
        enable();
        let fr = FlightRecorder::new("n", 4);
        let _g = attach(fr);
        let before = emits();
        event("tick", &[]);
        assert!(emits() > before);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
