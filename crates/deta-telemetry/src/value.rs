//! The closed set of values a span, event, or metric label may carry.
//!
//! Telemetry is secret-free *by construction*: [`TelemetryValue`] has
//! conversions from booleans, integers, floats, and text — and nothing
//! else. There is deliberately no `From<&[u8]>`, no `From<Vec<u8>>`, and
//! no conversion from any crypto type, so sealed records, keys, and
//! signatures cannot reach a trace without an explicit (and lintable —
//! see deta-lint rule 6 `no-secret-telemetry`) re-encoding at the call
//! site.

/// One telemetry field value.
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryValue {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned count, size, or sequence number.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A duration, rate, or loss value.
    F64(f64),
    /// A short human-readable label (node names, phases, fault kinds).
    Str(String),
}

impl TelemetryValue {
    /// Renders the value as a JSON fragment (non-finite floats become
    /// `null`, which keeps every emitted line valid JSON).
    pub fn to_json(&self) -> String {
        match self {
            TelemetryValue::Bool(b) => b.to_string(),
            TelemetryValue::U64(v) => v.to_string(),
            TelemetryValue::I64(v) => v.to_string(),
            TelemetryValue::F64(v) if v.is_finite() => format!("{v}"),
            TelemetryValue::F64(_) => "null".to_string(),
            TelemetryValue::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }
}

impl From<bool> for TelemetryValue {
    fn from(v: bool) -> TelemetryValue {
        TelemetryValue::Bool(v)
    }
}

impl From<u64> for TelemetryValue {
    fn from(v: u64) -> TelemetryValue {
        TelemetryValue::U64(v)
    }
}

impl From<u32> for TelemetryValue {
    fn from(v: u32) -> TelemetryValue {
        TelemetryValue::U64(u64::from(v))
    }
}

impl From<usize> for TelemetryValue {
    fn from(v: usize) -> TelemetryValue {
        TelemetryValue::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<i64> for TelemetryValue {
    fn from(v: i64) -> TelemetryValue {
        TelemetryValue::I64(v)
    }
}

impl From<f64> for TelemetryValue {
    fn from(v: f64) -> TelemetryValue {
        TelemetryValue::F64(v)
    }
}

impl From<f32> for TelemetryValue {
    fn from(v: f32) -> TelemetryValue {
        TelemetryValue::F64(f64::from(v))
    }
}

impl From<&str> for TelemetryValue {
    fn from(v: &str) -> TelemetryValue {
        TelemetryValue::Str(v.to_string())
    }
}

impl From<String> for TelemetryValue {
    fn from(v: String) -> TelemetryValue {
        TelemetryValue::Str(v)
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_json() {
        assert_eq!(TelemetryValue::from(true).to_json(), "true");
        assert_eq!(TelemetryValue::from(42u64).to_json(), "42");
        assert_eq!(TelemetryValue::from(-3i64).to_json(), "-3");
        assert_eq!(TelemetryValue::from(0.5f64).to_json(), "0.5");
        assert_eq!(TelemetryValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(
            TelemetryValue::from("agg-0").to_json(),
            "\"agg-0\"".to_string()
        );
    }

    #[test]
    fn strings_escape_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
