//! Trace records and the per-node flight recorder.
//!
//! A [`FlightRecorder`] is a bounded ring buffer of recent
//! [`TelemetryRecord`]s owned by one node (party, aggregator, or the
//! supervisor itself). Node threads attach their recorder thread-locally
//! (see [`crate::attach`]); when the supervisor constructs a
//! `RuntimeError` it drains every ring and dumps the merged timeline, so
//! a fault verdict always ships with the last-N-events history of the
//! implicated node *and* its peers.

use crate::value::{json_escape, TelemetryValue};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether a record is a completed timed span or a point-in-time event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A timed operation; `dur_ns` holds its duration.
    Span,
    /// An instantaneous occurrence.
    Event,
}

impl RecordKind {
    /// Stable lowercase name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        }
    }
}

/// One span or event, as stored in a flight-recorder ring.
#[derive(Clone, Debug)]
pub struct TelemetryRecord {
    /// Monotonic nanoseconds since the process telemetry epoch (span
    /// start time for spans).
    pub t_ns: u64,
    /// Span or event.
    pub kind: RecordKind,
    /// Static record name (e.g. `local_train`, `fault_injected`).
    pub name: &'static str,
    /// Span duration in nanoseconds; `None` for events.
    pub dur_ns: Option<u64>,
    /// Round-scoped trace id (schema v2); 0 = untraced, omitted from
    /// the rendered JSON.
    pub trace_id: u64,
    /// Id of the message whose delivery caused this record (schema v2);
    /// 0 = locally originated.
    pub parent: u64,
    /// Structured payload, restricted to [`TelemetryValue`]s.
    pub fields: Vec<(&'static str, TelemetryValue)>,
}

impl TelemetryRecord {
    /// Renders one JSONL line, attributing the record to `node`.
    pub fn to_json(&self, node: &str) -> String {
        let mut out = format!(
            "{{\"t_ns\":{},\"node\":\"{}\",\"kind\":\"{}\",\"name\":\"{}\"",
            self.t_ns,
            json_escape(node),
            self.kind.as_str(),
            json_escape(self.name)
        );
        if let Some(d) = self.dur_ns {
            out.push_str(&format!(",\"dur_ns\":{d}"));
        }
        if self.trace_id != 0 {
            out.push_str(&format!(",\"trace_id\":{}", self.trace_id));
            if self.parent != 0 {
                out.push_str(&format!(",\"parent\":{}", self.parent));
            }
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

struct Ring {
    buf: VecDeque<TelemetryRecord>,
    cap: usize,
    dropped: u64,
}

/// A bounded ring buffer of recent telemetry records for one node.
pub struct FlightRecorder {
    node: String,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// Creates a shareable recorder for `node` holding at most
    /// `capacity` records (a capacity of 0 is clamped to 1).
    pub fn new(node: &str, capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            node: node.to_string(),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: capacity.max(1),
                dropped: 0,
            }),
        })
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Appends a record, evicting the oldest when the ring is full.
    pub fn push(&self, rec: TelemetryRecord) {
        let mut ring = lock(&self.ring);
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }

    /// Records an event directly on this ring (used by owners such as
    /// the supervisor, which runs on the caller's thread rather than a
    /// node thread). No-op while the global sink is disabled.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, TelemetryValue)]) {
        if !crate::enabled() {
            return;
        }
        crate::note_emit();
        let ctx = crate::trace::current();
        self.push(TelemetryRecord {
            t_ns: crate::now_ns(),
            kind: RecordKind::Event,
            name,
            dur_ns: None,
            trace_id: ctx.trace_id,
            parent: ctx.parent,
            fields: fields.to_vec(),
        });
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.ring).buf.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every buffered record (oldest first) plus the count of
    /// records evicted by ring overflow since the last drain.
    pub fn drain(&self) -> (Vec<TelemetryRecord>, u64) {
        let mut ring = lock(&self.ring);
        let records = ring.buf.drain(..).collect();
        let dropped = ring.dropped;
        ring.dropped = 0;
        (records, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, name: &'static str) -> TelemetryRecord {
        TelemetryRecord {
            t_ns: t,
            kind: RecordKind::Event,
            name,
            dur_ns: None,
            trace_id: 0,
            parent: 0,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let fr = FlightRecorder::new("party-0", 2);
        fr.push(rec(1, "a"));
        fr.push(rec(2, "b"));
        fr.push(rec(3, "c"));
        let (records, dropped) = fr.drain();
        assert_eq!(dropped, 1);
        assert_eq!(
            records.iter().map(|r| r.name).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert!(fr.is_empty());
        let (_, dropped_again) = fr.drain();
        assert_eq!(dropped_again, 0);
    }

    #[test]
    fn records_render_the_jsonl_schema() {
        let mut r = rec(7, "upload");
        r.fields.push(("round", TelemetryValue::U64(3)));
        assert_eq!(
            r.to_json("party-1"),
            "{\"t_ns\":7,\"node\":\"party-1\",\"kind\":\"event\",\
             \"name\":\"upload\",\"fields\":{\"round\":3}}"
        );
        let span = TelemetryRecord {
            t_ns: 5,
            kind: RecordKind::Span,
            name: "aggregate",
            dur_ns: Some(11),
            trace_id: 0,
            parent: 0,
            fields: Vec::new(),
        };
        assert_eq!(
            span.to_json("agg-0"),
            "{\"t_ns\":5,\"node\":\"agg-0\",\"kind\":\"span\",\"name\":\"aggregate\",\"dur_ns\":11}"
        );
    }

    #[test]
    fn traced_records_render_the_v2_fields() {
        let mut r = rec(9, "net_send");
        r.trace_id = 4;
        r.parent = 1099511627777;
        assert_eq!(
            r.to_json("agg-0"),
            "{\"t_ns\":9,\"node\":\"agg-0\",\"kind\":\"event\",\"name\":\"net_send\",\
             \"trace_id\":4,\"parent\":1099511627777}"
        );
        // A root record (no causal parent) omits the parent field.
        let mut root = rec(2, "round_begin");
        root.trace_id = 4;
        assert_eq!(
            root.to_json("supervisor"),
            "{\"t_ns\":2,\"node\":\"supervisor\",\"kind\":\"event\",\
             \"name\":\"round_begin\",\"trace_id\":4}"
        );
    }
}
