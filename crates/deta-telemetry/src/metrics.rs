//! Process-wide metrics registry: labelled counters and fixed-bucket
//! histograms, rendered as a Prometheus text snapshot.
//!
//! The registry is a single mutex-guarded `BTreeMap` (deterministic
//! export order). It never takes any other lock, so observing a metric
//! while holding e.g. the transport network lock cannot deadlock. Every
//! observation is gated on [`crate::enabled`]; while the sink is
//! disabled an observation is a branch plus one atomic load.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Upper bounds of the shared histogram buckets (an implicit `+Inf`
/// bucket follows). One decade per bucket covers both second-scale
/// durations and byte-scale sizes without per-metric configuration.
pub const BUCKET_BOUNDS: [f64; 14] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
];

struct Histogram {
    buckets: [u64; BUCKET_BOUNDS.len() + 1],
    sum: f64,
    count: u64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<(String, String), u64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Adds `delta` to the counter `name{label}`. No-op while the global
/// sink is disabled.
pub fn counter_add(name: &'static str, label: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    crate::note_emit();
    let mut reg = lock(registry());
    *reg.counters
        .entry((name.to_string(), label.to_string()))
        .or_insert(0) += delta;
}

/// Records `value` into the histogram `name{label}`. No-op while the
/// global sink is disabled.
pub fn histogram_observe(name: &'static str, label: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    crate::note_emit();
    let mut reg = lock(registry());
    let h = reg
        .histograms
        .entry((name.to_string(), label.to_string()))
        .or_insert_with(|| Histogram {
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            sum: 0.0,
            count: 0,
        });
    let idx = BUCKET_BOUNDS
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(BUCKET_BOUNDS.len());
    h.buckets[idx] += 1;
    h.sum += value;
    h.count += 1;
}

/// Current value of the counter `name{label}` (0 when never touched).
pub fn counter_value(name: &str, label: &str) -> u64 {
    let reg = lock(registry());
    reg.counters
        .get(&(name.to_string(), label.to_string()))
        .copied()
        .unwrap_or(0)
}

/// Total observation count of the histogram `name{label}`.
pub fn histogram_count(name: &str, label: &str) -> u64 {
    let reg = lock(registry());
    reg.histograms
        .get(&(name.to_string(), label.to_string()))
        .map_or(0, |h| h.count)
}

/// Clears every counter and histogram (test isolation helper).
pub fn reset() {
    let mut reg = lock(registry());
    reg.counters.clear();
    reg.histograms.clear();
}

/// Renders the registry in the Prometheus text exposition format, in
/// deterministic (sorted) order.
pub fn prometheus_snapshot() -> String {
    use std::fmt::Write as _;
    let reg = lock(registry());
    let mut out = String::new();
    let mut last_type: Option<&str> = None;
    for ((name, label), value) in &reg.counters {
        // One TYPE comment per metric name (series are sorted, so equal
        // names are adjacent).
        if last_type != Some(name) {
            let _ = writeln!(out, "# TYPE {name} counter");
            last_type = Some(name);
        }
        let _ = writeln!(out, "{name}{} {value}", label_part(label, ""));
    }
    let mut last_type: Option<&str> = None;
    for ((name, label), h) in &reg.histograms {
        if last_type != Some(name) {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_type = Some(name);
        }
        let mut cumulative = 0u64;
        for (i, &bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if i < BUCKET_BOUNDS.len() {
                format!("{}", BUCKET_BOUNDS[i])
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                label_part(label, &format!("le=\"{le}\""))
            );
        }
        let _ = writeln!(out, "{name}_sum{} {}", label_part(label, ""), h.sum);
        let _ = writeln!(out, "{name}_count{} {}", label_part(label, ""), h.count);
        for (q, tag) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_part(label, &format!("quantile=\"{tag}\"")),
                quantile_estimate(&h.buckets, h.count, q)
            );
        }
    }
    out
}

/// Estimates quantile `q` from the fixed decade buckets by linear
/// interpolation within the containing bucket: the target rank
/// `q * count` is located in cumulative-count space, then mapped
/// linearly between the bucket's lower and upper bound. Observations in
/// the `+Inf` bucket clamp to the last finite bound; an empty histogram
/// reports 0.
pub fn quantile_estimate(buckets: &[u64; BUCKET_BOUNDS.len() + 1], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = q * count as f64;
    let mut cumulative = 0u64;
    for (i, &bucket) in buckets.iter().enumerate() {
        let before = cumulative as f64;
        cumulative += bucket;
        if (cumulative as f64) >= target && bucket > 0 {
            if i >= BUCKET_BOUNDS.len() {
                // The +Inf bucket has no upper bound to interpolate to.
                return BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1];
            }
            let lo = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
            let hi = BUCKET_BOUNDS[i];
            return lo + (hi - lo) * ((target - before) / bucket as f64);
        }
    }
    BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
}

/// Renders the `{label="...",extra}` suffix; empty labels and extras
/// collapse away.
fn label_part(label: &str, extra: &str) -> String {
    let mut parts = Vec::new();
    if !label.is_empty() {
        parts.push(format!("label=\"{}\"", crate::value::json_escape(label)));
    }
    if !extra.is_empty() {
        parts.push(extra.to_string());
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and `reset` wipes it, so tests
    /// touching it must not interleave.
    fn test_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock(&GUARD)
    }

    #[test]
    fn counters_and_histograms_snapshot() {
        let _serial = test_guard();
        crate::enable();
        reset();
        counter_add("deta_test_frames_total", "a->b", 2);
        counter_add("deta_test_frames_total", "a->b", 3);
        histogram_observe("deta_test_gap_seconds", "party-0", 0.02);
        histogram_observe("deta_test_gap_seconds", "party-0", 5.0);
        assert_eq!(counter_value("deta_test_frames_total", "a->b"), 5);
        assert_eq!(histogram_count("deta_test_gap_seconds", "party-0"), 2);
        let snap = prometheus_snapshot();
        assert!(snap.contains("deta_test_frames_total{label=\"a->b\"} 5"));
        assert!(snap.contains("deta_test_gap_seconds_count{label=\"party-0\"} 2"));
        assert!(snap.contains("le=\"+Inf\"} 2"));
        // Cumulative buckets: the 0.02 observation lands at le=0.1 and
        // stays counted in every later bucket.
        assert!(snap.contains("le=\"0.1\"} 1"));
        reset();
        assert_eq!(counter_value("deta_test_frames_total", "a->b"), 0);
    }

    #[test]
    fn quantile_interpolation_is_pinned() {
        // Ten observations, all in the (0.1, 1.0] decade bucket: the
        // estimate interpolates linearly between the bucket bounds.
        let mut buckets = [0u64; BUCKET_BOUNDS.len() + 1];
        buckets[6] = 10; // bounds[6] == 1.0, lower bound 0.1
        let q = |p: f64| quantile_estimate(&buckets, 10, p);
        assert!((q(0.50) - 0.55).abs() < 1e-12);
        assert!((q(0.95) - 0.955).abs() < 1e-12);
        assert!((q(0.99) - 0.991).abs() < 1e-12);

        // Split across the first and +Inf buckets: the low quantile
        // interpolates from 0, the high one clamps to the last finite
        // bound (the +Inf bucket has no upper edge).
        let mut split = [0u64; BUCKET_BOUNDS.len() + 1];
        split[0] = 2;
        split[BUCKET_BOUNDS.len()] = 2;
        assert!((quantile_estimate(&split, 4, 0.50) - 1e-6).abs() < 1e-18);
        assert_eq!(quantile_estimate(&split, 4, 0.99), 1e7);

        // Empty histograms report 0.
        assert_eq!(
            quantile_estimate(&[0; BUCKET_BOUNDS.len() + 1], 0, 0.5),
            0.0
        );
    }

    #[test]
    fn snapshot_carries_quantile_lines() {
        let _serial = test_guard();
        crate::enable();
        reset();
        for _ in 0..10 {
            histogram_observe("deta_test_latency_seconds", "agg-0", 0.5);
        }
        let snap = prometheus_snapshot();
        assert!(snap.contains("deta_test_latency_seconds{label=\"agg-0\",quantile=\"0.5\"} 0.55"));
        assert!(snap.contains("quantile=\"0.95\"}"));
        assert!(snap.contains("quantile=\"0.99\"}"));
        reset();
    }

    #[test]
    fn observations_land_in_decade_buckets() {
        let _serial = test_guard();
        crate::enable();
        reset();
        histogram_observe("deta_test_bytes", "", 1234.0);
        let snap = prometheus_snapshot();
        assert!(snap.contains("deta_test_bytes_bucket{le=\"1000\"} 0"));
        assert!(snap.contains("deta_test_bytes_bucket{le=\"10000\"} 1"));
        reset();
    }
}
