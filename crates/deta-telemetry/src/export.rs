//! Exporters: JSONL trace dumps and Prometheus-text snapshots.
//!
//! A trace dump merges the drained rings of every node into one
//! time-sorted JSONL file, appends a `meta` line naming the implicated
//! node(s) and per-node overflow counts, and writes the current metrics
//! registry next to it as Prometheus text. See
//! `results/traces/README.md` for the schema.

use crate::metrics;
use crate::record::TelemetryRecord;
use crate::value::json_escape;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static LAST_DUMP: Mutex<Option<PathBuf>> = Mutex::new(None);

/// JSONL path of the most recent successful [`trace_dump`] in this
/// process, if any. Lets a caller that never held the dumping session
/// recover the dump location — e.g. a harness whose setup returned
/// `Err` after the supervisor already wrote its fault dump. Callers
/// that may run after unrelated dumps should snapshot this before the
/// operation and treat an unchanged value as "no new dump".
pub fn last_dump_path() -> Option<PathBuf> {
    LAST_DUMP.lock().ok()?.clone()
}

/// Paths written by one [`trace_dump`] call.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// The merged JSONL timeline.
    pub jsonl: PathBuf,
    /// The Prometheus-text metrics snapshot taken at dump time.
    pub prom: PathBuf,
}

/// Returns a dump file stem unique within and across (live) processes:
/// `<prefix>-<pid>-<n>`.
pub fn unique_stem(prefix: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("{prefix}-{}-{n}", std::process::id())
}

/// Writes `<dir>/<stem>.jsonl` (the merged, time-sorted timeline of
/// every node's drained ring plus a trailing `meta` line) and
/// `<dir>/<stem>.prom` (the metrics snapshot).
///
/// `nodes` holds, per node, its drained records and its ring-overflow
/// count; `implicated` names the node(s) a fault verdict blames (empty
/// for a healthy dump).
///
/// # Errors
///
/// Fails when the directory cannot be created or a file cannot be
/// written.
pub fn trace_dump(
    dir: &Path,
    stem: &str,
    nodes: &[(String, Vec<TelemetryRecord>, u64)],
    implicated: &[String],
) -> std::io::Result<TraceDump> {
    std::fs::create_dir_all(dir)?;
    let mut lines: Vec<(u64, String)> = Vec::new();
    for (node, records, _) in nodes {
        for rec in records {
            lines.push((rec.t_ns, rec.to_json(node)));
        }
    }
    lines.sort_by_key(|(t, _)| *t);

    let mut out = String::new();
    for (_, line) in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&meta_line(nodes, implicated));
    out.push('\n');

    let jsonl = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&jsonl, out)?;
    let prom = dir.join(format!("{stem}.prom"));
    std::fs::write(&prom, metrics::prometheus_snapshot())?;
    if let Ok(mut last) = LAST_DUMP.lock() {
        *last = Some(jsonl.clone());
    }
    Ok(TraceDump { jsonl, prom })
}

/// The trailing dump line: implicated nodes and per-node overflow.
fn meta_line(nodes: &[(String, Vec<TelemetryRecord>, u64)], implicated: &[String]) -> String {
    let implicated_json = implicated
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    let overflow_json = nodes
        .iter()
        .map(|(n, _, dropped)| format!("\"{}\":{dropped}", json_escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"t_ns\":{},\"kind\":\"meta\",\"implicated\":[{implicated_json}],\
         \"ring_overflow\":{{{overflow_json}}}}}",
        crate::now_ns()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    #[test]
    fn dump_merges_sorts_and_appends_meta() {
        let dir = std::env::temp_dir().join(format!("deta-telemetry-test-{}", std::process::id()));
        let rec = |t: u64, name: &'static str| TelemetryRecord {
            t_ns: t,
            kind: RecordKind::Event,
            name,
            dur_ns: None,
            trace_id: 0,
            parent: 0,
            fields: Vec::new(),
        };
        let nodes = vec![
            ("agg-1".to_string(), vec![rec(20, "late")], 3u64),
            ("party-0".to_string(), vec![rec(10, "early")], 0u64),
        ];
        let stem = unique_stem("test");
        let dump =
            trace_dump(&dir, &stem, &nodes, &["agg-1".to_string()]).expect("trace dump writes");
        let text = std::fs::read_to_string(&dump.jsonl).expect("dump readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"early\""));
        assert!(lines[1].contains("\"late\""));
        assert!(lines[2].contains("\"implicated\":[\"agg-1\"]"));
        assert!(lines[2].contains("\"agg-1\":3"));
        assert!(dump.prom.exists());
        assert_eq!(last_dump_path().as_deref(), Some(dump.jsonl.as_path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stems_are_unique() {
        assert_ne!(unique_stem("a"), unique_stem("a"));
    }
}
