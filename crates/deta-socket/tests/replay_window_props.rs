//! Property tests for the receiver-side [`ReplayWindow`]: the bridge's
//! last line of defence against logical-frame replay and reorder above
//! TCP.
//!
//! The contract under test is strict in-order delivery per (src, dst)
//! link: under *arbitrary* interleavings of links and sequence numbers,
//! the window accepts exactly the frames forming the 0, 1, 2, …
//! sequence on their link, every rejection names the offending link
//! with the structured [`SocketError::Replay`], and a rejection never
//! advances the window — an attacker cannot burn sequence numbers by
//! sending garbage.

use deta_proptest::{cases, Gen};
use deta_socket::{ReplayWindow, SocketError};
use std::collections::BTreeMap;

/// A small universe of endpoint names, so interleavings collide on
/// links often enough to be interesting.
const NAMES: [&str; 4] = ["party-0", "party-1", "agg-0", "agg-1"];

fn arbitrary_link(g: &mut Gen) -> (&'static str, &'static str) {
    let src = NAMES[g.usize_in(0, NAMES.len())];
    let dst = NAMES[g.usize_in(0, NAMES.len())];
    (src, dst)
}

#[test]
fn window_matches_the_strict_in_order_model_under_interleavings() {
    cases("socket/replay-window-model", 400, |g: &mut Gen| {
        let mut window = ReplayWindow::new();
        // The reference model: one independent counter per link.
        let mut model: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        let events = g.usize_in(1, 120);
        for _ in 0..events {
            let (src, dst) = arbitrary_link(g);
            let expected = *model.entry((src, dst)).or_insert(0);
            // Bias toward the interesting neighbourhood of the counter:
            // the correct value, a replayed old one, a skipped-ahead
            // one, or arbitrary garbage.
            let seq = match g.usize_in(0, 4) {
                0 => expected,
                1 => expected.saturating_sub(g.u64_in(1, 4)),
                2 => expected + g.u64_in(1, 4),
                _ => g.u64(),
            };
            match window.accept_named(src, dst, seq) {
                Ok(()) => {
                    assert_eq!(seq, expected, "accepted out-of-order seq on {src}->{dst}");
                    model.insert((src, dst), expected + 1);
                }
                Err(SocketError::Replay {
                    link,
                    seq: got,
                    expected: want,
                }) => {
                    assert_ne!(seq, expected, "rejected the in-order seq");
                    assert_eq!(link, format!("{src}->{dst}"), "wrong link blamed");
                    assert_eq!(got, seq);
                    assert_eq!(want, expected, "reject must report the real expectation");
                    // And the model deliberately does not advance.
                }
                Err(other) => panic!("unexpected error variant: {other}"),
            }
        }
    });
}

#[test]
fn accepts_exactly_the_zero_based_in_order_subsequence() {
    cases("socket/replay-window-subsequence", 300, |g: &mut Gen| {
        let mut window = ReplayWindow::new();
        let stream = g.vec_of(1, 80, |g| g.u64_in(0, 10));
        let accepted: Vec<u64> = stream
            .iter()
            .filter(|&&seq| window.accept("party-0", "agg-0", seq).is_ok())
            .copied()
            .collect();
        let want: Vec<u64> = (0..accepted.len() as u64).collect();
        assert_eq!(
            accepted, want,
            "the accepted frames must be exactly 0, 1, 2, … in order (stream: {stream:?})"
        );
    });
}

#[test]
fn rejects_never_advance_the_window_and_never_leak_across_links() {
    cases("socket/replay-window-no-advance", 300, |g: &mut Gen| {
        let mut window = ReplayWindow::new();
        // Drive the victim link to an arbitrary position.
        let position = g.u64_in(0, 20);
        for seq in 0..position {
            window
                .accept("party-0", "agg-0", seq)
                .expect("in-order prefix");
        }
        // A burst of wrong sequence numbers: every one rejected with the
        // same unchanged expectation, whichever order they arrive in.
        let burst = g.vec_of(1, 20, |g| g.u64());
        for seq in burst.into_iter().filter(|&s| s != position) {
            let err = window
                .accept_named("party-0", "agg-0", seq)
                .expect_err("wrong seq must be rejected");
            match err {
                SocketError::Replay {
                    link,
                    seq: got,
                    expected,
                } => {
                    assert_eq!(link, "party-0->agg-0");
                    assert_eq!(got, seq);
                    assert_eq!(expected, position, "a reject advanced the window");
                }
                other => panic!("unexpected error variant: {other}"),
            }
        }
        // An untouched link is unaffected by the victim link's rejects…
        window
            .accept("party-1", "agg-0", 0)
            .expect("fresh link starts at 0");
        // …and the victim link still accepts exactly its next seq.
        window
            .accept("party-0", "agg-0", position)
            .expect("the window must still expect the pre-burst seq");
    });
}
