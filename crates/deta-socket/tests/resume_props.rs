//! Property tests for the resume/resync protocol's sequencing core:
//! a [`SeqTracker`]-numbered sender with a bounded retransmit buffer
//! against a [`ReplayWindow`] receiver, across randomly placed link
//! outages and adversarial retransmit interleavings.
//!
//! The properties mirror the wire contract `Resume`/`ResumeAck`
//! implement: after any number of crashes and resumes, the receiver
//! delivers every link's payloads **exactly once, in order** (the
//! sequence of accepted seqs is exactly `0..n`), and a rejected frame
//! never advances the window — a replay cannot burn a live sequence
//! number.

use deta_proptest::{cases, Gen};
use deta_socket::{ReplayWindow, SeqTracker};

const SRC: &str = "party-0";
const DST: &str = "agg-0";

/// The receiver's resume claim for the modelled link: the next seq it
/// will accept, exactly what a `Resume`/`ResumeAck` window entry says.
fn claimed_next(window: &ReplayWindow) -> u64 {
    window
        .snapshot_from(SRC)
        .into_iter()
        .find(|(_, d, _)| d == DST)
        .map(|(_, _, n)| n)
        .unwrap_or(0)
}

#[test]
fn resync_after_outages_delivers_exactly_once_in_order() {
    cases("socket/resume-exactly-once", 300, |g: &mut Gen| {
        let total = g.usize_in(1, 48);
        let mut tracker = SeqTracker::new();
        // The sender's unacknowledged-frame buffer: seqs it may have to
        // retransmit. Pruned on every resume, as `ResumeAck` prescribes.
        let mut buffer: Vec<u64> = Vec::new();
        let mut window = ReplayWindow::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut produced = 0usize;
        // Each epoch: produce and send some frames, then crash — the
        // link loses an arbitrary *suffix* of the in-flight frames
        // (TCP delivers a prefix) — then resume from the receiver's
        // claimed window.
        while produced < total || !buffer.is_empty() {
            // Produce a batch of fresh frames into the buffer (at least
            // one while any remain, so every epoch makes progress).
            if produced < total {
                let fresh = g.usize_in(1, total - produced + 1);
                for _ in 0..fresh {
                    buffer.push(tracker.next(SRC, DST));
                }
                produced += fresh;
            }
            // Resume first: prune the buffer to what the receiver never
            // delivered, then retransmit. An adversarial sender may also
            // replay from before the claim; the window must shrug it off.
            let next = claimed_next(&window);
            buffer.retain(|&seq| seq >= next);
            let mut in_flight: Vec<u64> = buffer.clone();
            if g.bool() && next > 0 {
                // Stale retransmit start: re-send already-delivered seqs.
                let back = g.u64_in(1, next + 1);
                let mut stale: Vec<u64> = (next - back..next).collect();
                stale.extend(in_flight);
                in_flight = stale;
            }
            // The crash truncates delivery to a prefix of the flight.
            let got = g.usize_in(0, in_flight.len() + 1);
            for &seq in &in_flight[..got] {
                if window.accept(SRC, DST, seq).is_ok() {
                    delivered.push(seq);
                }
            }
            // Everything the receiver acknowledged leaves the buffer.
            let next = claimed_next(&window);
            buffer.retain(|&seq| seq >= next);
        }
        let expect: Vec<u64> = (0..total as u64).collect();
        assert_eq!(
            delivered, expect,
            "resync must deliver every seq exactly once, in order"
        );
    });
}

#[test]
fn rejected_frames_never_advance_the_window() {
    cases("socket/resume-reject-frozen", 300, |g: &mut Gen| {
        let mut window = ReplayWindow::new();
        let steps = g.usize_in(1, 40);
        let mut next = 0u64;
        for _ in 0..steps {
            // Mostly honest traffic, salted with replays and futures.
            let seq = match g.usize_in(0, 4) {
                0 if next > 0 => g.u64_in(0, next), // replay
                1 => next + 1 + g.u64_in(0, 16),    // future (gap)
                _ => next,                          // in order
            };
            match window.accept(SRC, DST, seq) {
                Ok(()) => {
                    assert_eq!(seq, next, "only the expected seq may be accepted");
                    next += 1;
                }
                Err(v) => {
                    assert_eq!(v.seq, seq);
                    assert_eq!(v.expected, next, "the violation must name the live seq");
                    // A reject may materialize the link's implicit-zero
                    // entry, but its claimed next never moves.
                    assert_eq!(
                        claimed_next(&window),
                        next,
                        "a rejected frame must not advance the window"
                    );
                }
            }
        }
        assert_eq!(claimed_next(&window), next);
    });
}

#[test]
fn snapshot_claims_are_exactly_resumable() {
    cases("socket/resume-snapshot-claims", 200, |g: &mut Gen| {
        // Several links advance independently; the snapshot must claim
        // exactly the point each link resumes from: the claimed seq is
        // accepted, the one before it is a replay.
        let links = g.vec_of(1, 5, |g| {
            (
                format!("party-{}", g.usize_in(0, 4)),
                format!("agg-{}", g.usize_in(0, 2)),
            )
        });
        let mut window = ReplayWindow::new();
        for (src, dst) in &links {
            let n = g.u64_in(0, 12);
            let base = claimed_next_for(&window, src, dst);
            for seq in base..base + n {
                window.accept(src, dst, seq).expect("in-order accept");
            }
        }
        for (src, dst, next) in window.snapshot() {
            if next > 0 {
                let v = window
                    .accept(&src, &dst, next - 1)
                    .expect_err("the claim's predecessor is a replay");
                assert_eq!(v.expected, next);
            }
            window
                .accept(&src, &dst, next)
                .expect("the claimed seq must be exactly resumable");
        }
    });
}

fn claimed_next_for(window: &ReplayWindow, src: &str, dst: &str) -> u64 {
    window
        .snapshot_from(src)
        .into_iter()
        .find(|(_, d, _)| d == dst)
        .map(|(_, _, n)| n)
        .unwrap_or(0)
}
