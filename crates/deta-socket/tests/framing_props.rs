//! Property tests for the bridge's byte-stream layers: the outer
//! length-prefixed framing ([`FrameDecoder`]) and the inner tagged
//! frame codec ([`SocketFrame`]).
//!
//! The decoder sits directly on attacker-reachable bytes (a TCP peer
//! controls them before any authentication), so the properties here are
//! totality properties: no input, however mangled, may panic either
//! layer, and honest encodings must survive arbitrary re-chunking.

use deta_proptest::{cases, Gen};
use deta_socket::{encode_frame, FrameDecoder, SocketFrame, MAX_FRAME};

/// Drains every decodable frame, stopping at a framing error.
fn drain(decoder: &mut FrameDecoder) -> Result<Vec<Vec<u8>>, usize> {
    let mut out = Vec::new();
    loop {
        match decoder.try_next() {
            Ok(Some(frame)) => out.push(frame),
            Ok(None) => return Ok(out),
            Err(e) => return Err(e.len),
        }
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_decoder() {
    cases("socket/decoder-total", 400, |g: &mut Gen| {
        let mut decoder = FrameDecoder::new();
        // Feed a handful of arbitrary chunks, draining between pushes —
        // exactly the read-loop call pattern.
        let chunks = g.usize_in(1, 6);
        for _ in 0..chunks {
            let chunk = g.bytes(0, 512);
            decoder.push(&chunk);
            // Any outcome is acceptable; panicking is not.
            let _ = drain(&mut decoder);
        }
    });
}

#[test]
fn oversize_length_prefix_is_a_sticky_error_not_a_panic() {
    cases("socket/decoder-oversize", 100, |g: &mut Gen| {
        let mut decoder = FrameDecoder::new();
        let over = (MAX_FRAME as u64 + 1 + g.u64_in(0, 1 << 20)) as u32;
        decoder.push(&over.to_le_bytes());
        decoder.push(&g.bytes(0, 64));
        let first = drain(&mut decoder);
        assert!(first.is_err(), "an oversize prefix must be rejected");
        // The error is sticky: the stream is unrecoverable even if
        // well-formed frames follow.
        decoder.push(&encode_frame(b"ok"));
        assert!(drain(&mut decoder).is_err(), "framing errors must stick");
    });
}

#[test]
fn encode_then_rechunk_round_trips_exactly() {
    cases("socket/frame-rechunk", 300, |g: &mut Gen| {
        // A batch of frames (empty payloads included), concatenated...
        let frames = g.vec_of(1, 8, |g| g.bytes(0, 300));
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // ...then split at arbitrary boundaries before decoding.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut rest = wire.as_slice();
        while !rest.is_empty() {
            let cut = g.usize_in(1, rest.len() + 1);
            decoder.push(&rest[..cut]);
            rest = &rest[cut..];
            decoded.extend(drain(&mut decoder).expect("honest stream"));
        }
        assert_eq!(decoded, frames, "re-chunking must not alter frames");
        assert_eq!(decoder.buffered(), 0, "no bytes may be left behind");
    });
}

fn arbitrary_name(g: &mut Gen) -> String {
    g.string_of("abcdefghijklmnopqrstuvwxyz-0123456789", 0, 24)
}

fn arbitrary_windows(g: &mut Gen) -> Vec<(String, String, u64)> {
    g.vec_of(0, 6, |g| (arbitrary_name(g), arbitrary_name(g), g.u64()))
}

fn arbitrary_socket_frame(g: &mut Gen) -> SocketFrame {
    match g.usize_in(0, 11) {
        0 => SocketFrame::Data {
            src: arbitrary_name(g),
            dst: arbitrary_name(g),
            seq: g.u64(),
            payload: g.bytes(0, 400),
        },
        1 => SocketFrame::Close {
            name: arbitrary_name(g),
        },
        2 => SocketFrame::Challenge { nonce: g.array() },
        3 => SocketFrame::AuthProof {
            name: arbitrary_name(g),
            sig: g.bytes(0, 96),
        },
        4 => SocketFrame::Welcome,
        5 => SocketFrame::ClockProbe { t_hub_ns: g.u64() },
        6 => SocketFrame::ClockEcho {
            t_hub_ns: g.u64(),
            t_peer_ns: g.u64(),
        },
        7 => SocketFrame::TraceShip {
            name: arbitrary_name(g),
            dropped: g.u64(),
            jsonl: g.bytes(0, 400),
        },
        8 => SocketFrame::Resume {
            src: arbitrary_name(g),
            windows: arbitrary_windows(g),
        },
        9 => SocketFrame::ResumeAck {
            windows: arbitrary_windows(g),
        },
        _ => SocketFrame::Bye,
    }
}

#[test]
fn resume_window_count_cannot_force_allocation() {
    // A Resume whose length prefix promises far more entries than the
    // buffer holds must be rejected before any proportional allocation.
    let mut evil = vec![10u8]; // TAG_RESUME
    evil.extend_from_slice(&2u16.to_le_bytes());
    evil.extend_from_slice(b"p0");
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(SocketFrame::decode(&evil), None);
}

#[test]
fn socket_frame_codec_round_trips() {
    cases("socket/wire-roundtrip", 400, |g: &mut Gen| {
        let frame = arbitrary_socket_frame(g);
        let encoded = frame.encode();
        let decoded = SocketFrame::decode(&encoded).expect("own encoding must decode");
        assert_eq!(decoded, frame, "decode must invert encode");
    });
}

#[test]
fn socket_frame_decode_is_total() {
    cases("socket/wire-total", 400, |g: &mut Gen| {
        // Raw garbage: decode may reject, must not panic.
        let garbage = g.bytes(0, 256);
        let _ = SocketFrame::decode(&garbage);
        // Mutated honest encodings: still no panics, and any successful
        // decode of a truncation/extension must itself re-encode.
        let mut encoded = arbitrary_socket_frame(g).encode();
        if !encoded.is_empty() && g.bool() {
            let idx = g.usize_in(0, encoded.len());
            encoded[idx] ^= g.u8() | 1;
        }
        if g.bool() {
            encoded.truncate(g.usize_in(0, encoded.len() + 1));
        } else {
            let extra = g.bytes(1, 16);
            encoded.extend_from_slice(&extra);
        }
        if let Some(frame) = SocketFrame::decode(&encoded) {
            let again = SocketFrame::decode(&frame.encode()).expect("re-encode must decode");
            assert_eq!(again, frame);
        }
    });
}
