//! One secured TCP link: length-prefixed frames carrying sealed records
//! of the [`deta_transport::secure`] channel.
//!
//! A link is built in two steps. [`SecureLink::connect`] /
//! [`SecureLink::accept`] run the handshake over raw frames (hello and
//! response are self-authenticating; everything after is sealed). The
//! caller then performs the challenge/auth exchange at the
//! [`crate::wire::SocketFrame`] layer and finally [`SecureLink::split`]s
//! the link into an independently-owned sender and receiver so one
//! thread can write while another blocks reading.
//!
//! All reads poll with a short OS timeout so reader threads can observe
//! stop flags and deadlines instead of blocking forever in `read`.

use crate::frame::{encode_frame, FrameDecoder};
use crate::wire::SocketFrame;
use crate::SocketError;
use deta_crypto::{DetRng, SigningKey, VerifyingKey};
use deta_transport::secure::{self, HandshakeInitiator, SecureChannel};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// OS-level read poll granularity: how often a blocked reader rechecks
/// its stop flag or deadline.
const POLL: Duration = Duration::from_millis(20);

/// Handshake messages must arrive within this window.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(10);

/// Recovers a channel guard even if a peer thread panicked mid-seal;
/// channel state is a pair of counters and keys, always consistent.
fn lock_channel(m: &Mutex<SecureChannel>) -> MutexGuard<'_, SecureChannel> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Seals one frame for the wire (encode then record-protect).
fn seal_frame(channel: &Mutex<SecureChannel>, frame: &SocketFrame) -> Vec<u8> {
    lock_channel(channel).seal_msg(&frame.encode())
}

/// Opens one record and parses the frame inside it.
fn unseal_frame(
    channel: &Mutex<SecureChannel>,
    label: &str,
    record: &[u8],
) -> Result<SocketFrame, SocketError> {
    let plain = lock_channel(channel)
        .open_msg(record)
        .map_err(|_| SocketError::Record {
            link: label.to_string(),
        })?;
    SocketFrame::decode(&plain).ok_or_else(|| SocketError::Malformed {
        link: label.to_string(),
    })
}

/// Raw framed IO over one stream (pre- and post-handshake transport).
struct LinkIo {
    stream: TcpStream,
    decoder: FrameDecoder,
    label: String,
}

impl LinkIo {
    fn new(stream: TcpStream, label: String) -> Result<LinkIo, SocketError> {
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(POLL))?;
        Ok(LinkIo {
            stream,
            decoder: FrameDecoder::new(),
            label,
        })
    }

    fn write_frame(&mut self, payload: &[u8]) -> Result<(), SocketError> {
        self.stream.write_all(&encode_frame(payload))?;
        Ok(())
    }

    /// Blocks (polling) until a complete frame, EOF (`None`), the
    /// deadline, or the stop flag. Deadline expiry is an `Io` timeout
    /// error; a stop request reads as EOF.
    fn read_frame(
        &mut self,
        deadline: Option<Instant>,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<Vec<u8>>, SocketError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.decoder.try_next().map_err(|e| SocketError::Frame {
                link: self.label.clone(),
                source: e,
            })? {
                return Ok(Some(payload));
            }
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return Ok(None);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(SocketError::Io(std::io::Error::from(ErrorKind::TimedOut)));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                // A peer process exiting surfaces as a reset on some
                // platforms and EOF on others; treat both as closure.
                Err(e) if e.kind() == ErrorKind::ConnectionReset => return Ok(None),
                Err(e) => return Err(SocketError::Io(e)),
            }
        }
    }
}

/// An established secure link (handshake done, records flowing).
pub(crate) struct SecureLink {
    io: LinkIo,
    channel: Arc<Mutex<SecureChannel>>,
}

impl SecureLink {
    /// Client side: connect to `addr`, run the handshake as initiator,
    /// and verify the responder against `hub_key`.
    pub fn connect(
        addr: SocketAddr,
        label: &str,
        hub_key: &VerifyingKey,
        rng: &mut DetRng,
    ) -> Result<SecureLink, SocketError> {
        let stream = TcpStream::connect(addr)?;
        let mut io = LinkIo::new(stream, label.to_string())?;
        let init = HandshakeInitiator::new(rng);
        io.write_frame(init.hello())?;
        let deadline = Some(Instant::now() + HANDSHAKE_DEADLINE);
        let response = match io.read_frame(deadline, None)? {
            Some(r) => r,
            None => {
                return Err(SocketError::Handshake {
                    link: label.to_string(),
                    source: deta_transport::TransportError::Malformed,
                })
            }
        };
        let channel =
            init.complete(&response, hub_key)
                .map_err(|source| SocketError::Handshake {
                    link: label.to_string(),
                    source,
                })?;
        Ok(SecureLink {
            io,
            channel: Arc::new(Mutex::new(channel)),
        })
    }

    /// Server side: run the handshake as responder over an accepted
    /// stream, authenticating with `identity`.
    pub fn accept(
        stream: TcpStream,
        label: &str,
        identity: &SigningKey,
        rng: &mut DetRng,
    ) -> Result<SecureLink, SocketError> {
        let mut io = LinkIo::new(stream, label.to_string())?;
        let deadline = Some(Instant::now() + HANDSHAKE_DEADLINE);
        let hello = match io.read_frame(deadline, None)? {
            Some(h) => h,
            None => {
                return Err(SocketError::Handshake {
                    link: label.to_string(),
                    source: deta_transport::TransportError::Malformed,
                })
            }
        };
        let (response, channel) =
            secure::respond(&hello, identity, rng).map_err(|source| SocketError::Handshake {
                link: label.to_string(),
                source,
            })?;
        io.write_frame(&response)?;
        Ok(SecureLink {
            io,
            channel: Arc::new(Mutex::new(channel)),
        })
    }

    /// Seals and writes one frame.
    pub fn send(&mut self, frame: &SocketFrame) -> Result<(), SocketError> {
        let record = seal_frame(&self.channel, frame);
        self.io.write_frame(&record)
    }

    /// Blocks until the next frame, EOF/stop (`None`), or a deadline.
    pub fn recv(
        &mut self,
        deadline: Option<Instant>,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<SocketFrame>, SocketError> {
        match self.io.read_frame(deadline, stop)? {
            None => Ok(None),
            Some(record) => unseal_frame(&self.channel, &self.io.label, &record).map(Some),
        }
    }

    /// Splits into an independently-owned sender and receiver (the
    /// record counters stay shared, each direction strictly ordered by
    /// its single owning thread).
    pub fn split(self) -> Result<(LinkSender, LinkReceiver), SocketError> {
        let write_stream = self.io.stream.try_clone()?;
        let sender = LinkSender {
            stream: write_stream,
            channel: Arc::clone(&self.channel),
        };
        let receiver = LinkReceiver {
            io: self.io,
            channel: self.channel,
        };
        Ok((sender, receiver))
    }
}

/// Write half of a split link.
pub(crate) struct LinkSender {
    stream: TcpStream,
    channel: Arc<Mutex<SecureChannel>>,
}

impl LinkSender {
    /// Seals and writes one frame.
    pub fn send(&mut self, frame: &SocketFrame) -> Result<(), SocketError> {
        let record = seal_frame(&self.channel, frame);
        self.stream.write_all(&encode_frame(&record))?;
        Ok(())
    }
}

/// Read half of a split link.
pub(crate) struct LinkReceiver {
    io: LinkIo,
    channel: Arc<Mutex<SecureChannel>>,
}

impl LinkReceiver {
    /// Blocks until the next frame, EOF/stop (`None`), or a deadline.
    pub fn recv(
        &mut self,
        deadline: Option<Instant>,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<SocketFrame>, SocketError> {
        match self.io.read_frame(deadline, stop)? {
            None => Ok(None),
            Some(record) => unseal_frame(&self.channel, &self.io.label, &record).map(Some),
        }
    }

    /// The link label errors are reported under.
    pub fn label(&self) -> &str {
        &self.io.label
    }

    /// Abruptly severs the underlying stream — both directions, no
    /// `Bye`. The peer observes a bare EOF, exactly as if the transport
    /// died. Chaos-injection only.
    pub fn sever(&self) {
        let _ = self.io.stream.shutdown(std::net::Shutdown::Both);
    }
}
